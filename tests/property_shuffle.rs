//! Differential property test of the storage-materialized shuffle: for
//! random jobs (word-count, combining word-count, grep and sort shapes, 1–8
//! reducers, both storage backends), `JobTracker::run` — spills, segment
//! fetches, k-way merges, rename commits — must produce byte-identical
//! `part-*` output to `JobTracker::run_inmem`, the sequential in-memory
//! oracle. This mirrors the `lookup_range` vs `lookup_range_walk` pattern of
//! the metadata read path.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use mapreduce::Job;
use proptest::prelude::*;
use simcluster::ClusterTopology;
use workloads::{
    distributed_grep_job, distributed_sort_job, word_count_job, word_count_job_combining,
};

fn make_fs(use_hdfs: bool, topo: &ClusterTopology) -> Box<dyn DistFs> {
    let nodes: Vec<_> = topo.all_nodes().collect();
    if use_hdfs {
        Box::new(HdfsFs::new(Hdfs::with_topology(
            HdfsConfig {
                chunk_size: 512,
                datanodes: nodes.len(),
                replication: 1,
                seed: 1,
            },
            topo,
            &nodes,
        )))
    } else {
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(nodes.len())
                .with_page_size(512),
            topo,
            &nodes,
        );
        Box::new(BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::default().with_block_size(512),
        )))
    }
}

fn make_job(shape: usize, fs: &dyn DistFs, out: &str, reducers: usize, split_size: u64) -> Job {
    let input = vec!["/in/text.txt".to_string()];
    match shape {
        0 => word_count_job(input, out, reducers, split_size),
        1 => word_count_job_combining(input, out, reducers, split_size),
        2 => distributed_grep_job(input, out, "a", split_size),
        _ => distributed_sort_job(fs, input, out, reducers, split_size)
            .expect("sampling the sort input"),
    }
}

/// Arbitrary lowercase words of 1..8 chars.
fn word_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'f'), 1..8).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn storage_shuffle_is_byte_identical_to_the_inmem_oracle(
        words in prop::collection::vec(word_strategy(), 1..250),
        split_size in 64u64..1_500,
        reducers in 1usize..8,
        // shape (wordcount / combining wordcount / grep / sort) x backend,
        // folded into one variable (the strategy tuple is limited to 5).
        shape_and_backend in 0usize..8,
        words_per_line in 1usize..10,
    ) {
        let shape = shape_and_backend % 4;
        let use_hdfs = shape_and_backend >= 4;
        let mut text = String::new();
        for line in words.chunks(words_per_line) {
            text.push_str(&line.join(" "));
            text.push('\n');
        }

        let topo = ClusterTopology::flat(4);
        let fs = make_fs(use_hdfs, &topo);
        fs.write_file("/in/text.txt", text.as_bytes()).unwrap();

        let jt = JobTracker::new(&topo);
        let dist_job = make_job(shape, &*fs, "/out-dist", reducers, split_size);
        let dist = jt.run(&*fs, &dist_job).unwrap();
        let oracle_job = make_job(shape, &*fs, "/out-inmem", reducers, split_size);
        let oracle = jt.run_inmem(&*fs, &oracle_job).unwrap();

        // Same part files (names relative to the output dir), same bytes.
        prop_assert_eq!(dist.output_files.len(), oracle.output_files.len());
        for (d, o) in dist.output_files.iter().zip(&oracle.output_files) {
            prop_assert_eq!(d.strip_prefix("/out-dist"), o.strip_prefix("/out-inmem"));
            prop_assert!(
                fs.read_file(d).unwrap() == fs.read_file(o).unwrap(),
                "content of {} diverges from the oracle (shape={}, reducers={}, hdfs={})",
                d, shape, reducers, use_hdfs
            );
        }
        prop_assert_eq!(dist.output_records, oracle.output_records);
        prop_assert_eq!(dist.output_bytes, oracle.output_bytes);

        // Multi-reducer jobs must report the shuffle they actually did.
        if dist.reduce_tasks > 0 {
            prop_assert_eq!(
                dist.shuffle.segments_fetched,
                (dist.map_tasks * dist.reduce_tasks) as u64
            );
            prop_assert!(dist.shuffle.spill_bytes > 0);
            prop_assert!(
                dist.shuffle.shuffle_read_round_trips >= dist.shuffle.segments_fetched
            );
            if dist.shuffle.spill_records > 0 {
                prop_assert!(dist.shuffle.merge_runs > 0);
            }
        }

        // The job scratch space is gone; only part files remain.
        let mut listed = fs.list("/out-dist").unwrap();
        listed.sort();
        let mut expected = dist.output_files.clone();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same differential gate with the merge-spill compactor turned on: the
    /// background merges must never change a byte of output, only how many
    /// segments the reducers fetch. Note the *absence* of the
    /// `segments_fetched == maps * reduces` invariant of the plain test —
    /// compaction exists precisely to break it downward.
    #[test]
    fn compacted_shuffle_is_byte_identical_to_the_inmem_oracle(
        words in prop::collection::vec(word_strategy(), 1..250),
        split_size in 64u64..1_500,
        reducers in 1usize..8,
        // shape (wordcount / combining wordcount / grep / sort) x backend.
        shape_and_backend in 0usize..8,
        words_per_line in 1usize..10,
    ) {
        let shape = shape_and_backend % 4;
        let use_hdfs = shape_and_backend >= 4;
        let mut text = String::new();
        for line in words.chunks(words_per_line) {
            text.push_str(&line.join(" "));
            text.push('\n');
        }

        let topo = ClusterTopology::flat(4);
        let fs = make_fs(use_hdfs, &topo);
        fs.write_file("/in/text.txt", text.as_bytes()).unwrap();

        let jt = JobTracker::new(&topo);
        let mut dist_job = make_job(shape, &*fs, "/out-dist", reducers, split_size);
        dist_job.config.compaction_threshold = Some(0);
        let dist = jt.run(&*fs, &dist_job).unwrap();
        let oracle_job = make_job(shape, &*fs, "/out-inmem", reducers, split_size);
        let oracle = jt.run_inmem(&*fs, &oracle_job).unwrap();

        prop_assert_eq!(dist.output_files.len(), oracle.output_files.len());
        for (d, o) in dist.output_files.iter().zip(&oracle.output_files) {
            prop_assert_eq!(d.strip_prefix("/out-dist"), o.strip_prefix("/out-inmem"));
            prop_assert!(
                fs.read_file(d).unwrap() == fs.read_file(o).unwrap(),
                "content of {} diverges from the oracle under compaction \
                 (shape={}, reducers={}, hdfs={})",
                d, shape, reducers, use_hdfs
            );
        }
        prop_assert_eq!(dist.output_records, oracle.output_records);
        prop_assert_eq!(dist.output_bytes, oracle.output_bytes);

        if dist.reduce_tasks > 0 {
            // Compaction can only shrink the fetch plan, never grow it.
            let per_map = (dist.map_tasks * dist.reduce_tasks) as u64;
            prop_assert!(dist.shuffle.segments_fetched <= per_map);
            // Every committed merged run folded at least two spills, and a
            // reducer fetching merged runs skips the spills they replaced.
            if dist.shuffle.compaction_runs > 0 {
                prop_assert!(
                    dist.shuffle.compaction_merged_spills >= 2 * dist.shuffle.compaction_runs,
                    "merged runs must fold multiple spills"
                );
                prop_assert!(dist.shuffle.segments_fetched < per_map);
            }
        }

        // Scratch space (spills, merged runs, attempt dirs) is gone.
        let mut listed = fs.list("/out-dist").unwrap();
        listed.sort();
        let mut expected = dist.output_files.clone();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }
}
