//! # mapreduce — a Hadoop-style MapReduce framework over pluggable storage
//!
//! The paper evaluates its storage layer by running it *under an unchanged
//! Hadoop*: "we substituted the original data storage layer of Hadoop [...]
//! with our BlobSeer-based file system" (§IV). This crate is the Rust stand-in
//! for that framework, faithful to the architecture the paper describes
//! (§II-A):
//!
//! * a single master **jobtracker** ([`jobtracker::JobTracker`]) that splits
//!   the input, assigns tasks and re-executes failed ones;
//! * **tasktrackers**, one per node with a configurable number of slots
//!   ([`tasktracker::TaskTracker`]), executed as real threads;
//! * the **map / shuffle / reduce** execution model with text-line records,
//!   pluggable partitioning (hash by default, range for sort jobs), optional
//!   spill-time combiners and sorted reduce keys — with intermediate data
//!   **materialized through the storage layer** ([`shuffle`]): map tasks
//!   spill sorted partition-bucketed files, reduce tasks pull segments with
//!   positioned reads as the spills commit, and all task output is
//!   rename-committed (the in-memory shuffle survives as
//!   [`jobtracker::JobTracker::run_inmem`], the differential-testing oracle);
//! * **locality-aware scheduling** ([`scheduler`]) driven by the storage
//!   layer's data-layout queries;
//! * a pluggable storage abstraction ([`fs::DistFs`]) with adapters for both
//!   BSFS and the HDFS baseline, so experiments can swap the storage layer
//!   and nothing else — exactly the paper's methodology.
//!
//! ```
//! use std::sync::Arc;
//! use blobseer::{BlobSeer, BlobSeerConfig};
//! use bsfs::{Bsfs, BsfsConfig};
//! use mapreduce::fs::{BsfsFs, DistFs};
//! use mapreduce::job::{InputSpec, Job, JobConfig, Mapper, SumReducer};
//! use mapreduce::jobtracker::JobTracker;
//! use mapreduce::MrResult;
//!
//! struct WordCount;
//! impl Mapper for WordCount {
//!     fn map(&self, _o: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
//!         for w in line.split_whitespace() { emit(w.to_string(), "1".to_string()); }
//!         Ok(())
//!     }
//! }
//!
//! let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
//! let fs = BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()));
//! fs.write_file("/in/text", b"to be or not to be\n").unwrap();
//!
//! let job = Job::new(
//!     JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), "/out")
//!         .with_split_size(256),
//!     Arc::new(WordCount),
//!     Arc::new(SumReducer),
//! );
//! let tracker = JobTracker::new(fs.inner().storage().topology());
//! let result = tracker.run(&fs, &job).unwrap();
//! assert_eq!(result.map_tasks, 1);
//! assert!(fs.read_file(&result.output_files[0]).unwrap().starts_with(b"be\t2"));
//! ```

pub mod error;
pub mod fs;
pub mod job;
pub mod jobsched;
pub mod jobtracker;
pub mod scheduler;
pub mod shuffle;
pub mod split;
pub mod tasktracker;

pub use error::{MrError, MrResult};
pub use fs::{BlockHint, BsfsFs, DistFs, FileReader, FileWriter, HdfsFs};
pub use job::{
    HashPartitioner, IdentityReducer, InputSpec, Job, JobConfig, Mapper, Partitioner,
    RangePartitioner, Reducer,
};
pub use jobsched::{
    CapacityScheduler, FairScheduler, FifoScheduler, JobScheduler, SlotCaps, SlotKind, TenantQuota,
    TenantUsage,
};
pub use jobtracker::{JobHandle, JobResult, JobTracker, ShuffleCounters};
pub use scheduler::{
    AttemptView, LatePolicy, Locality, LocalityCounters, RuntimeHistory, SlowestFactorPolicy,
    SpeculationPolicy,
};
pub use split::{InputSplit, SplitSource};
pub use tasktracker::{
    AttemptRecord, AttemptState, FailureVerdict, SpeculationCounters, TaskAttemptId, TaskBook,
    TaskTracker,
};

#[cfg(test)]
mod tests {
    use super::fs::{BsfsFs, DistFs, HdfsFs};
    use super::job::{InputSpec, Job, JobConfig, Mapper, Reducer, SumReducer};
    use super::jobtracker::JobTracker;
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use hdfs_sim::{Hdfs, HdfsConfig};
    use simcluster::topology::ClusterTopology;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn bsfs_cluster(nodes: u32) -> (ClusterTopology, BsfsFs) {
        let topo = ClusterTopology::flat(nodes);
        let provider_nodes: Vec<_> = topo.all_nodes().collect();
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::for_tests()
                .with_providers(nodes as usize)
                .with_page_size(512),
            &topo,
            &provider_nodes,
        );
        let fs = BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::for_tests().with_block_size(512),
        ));
        (topo, fs)
    }

    fn hdfs_cluster(nodes: u32) -> (ClusterTopology, HdfsFs) {
        let topo = ClusterTopology::flat(nodes);
        let dn_nodes: Vec<_> = topo.all_nodes().collect();
        let fs = HdfsFs::new(Hdfs::with_topology(
            HdfsConfig::for_tests().with_chunk_size(512),
            &topo,
            &dn_nodes,
        ));
        (topo, fs)
    }

    struct WordCountMapper;
    impl Mapper for WordCountMapper {
        fn map(
            &self,
            _offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            for w in line.split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
            Ok(())
        }
    }

    struct GrepMapper {
        pattern: String,
    }
    impl Mapper for GrepMapper {
        fn map(
            &self,
            _offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            if line.contains(&self.pattern) {
                emit(self.pattern.clone(), "1".to_string());
            }
            Ok(())
        }
    }

    fn wordcount_input() -> &'static str {
        "the quick brown fox\njumps over the lazy dog\nthe dog barks\n"
    }

    fn run_wordcount(topo: &ClusterTopology, fs: &dyn DistFs) -> (JobResult, Vec<(String, u64)>) {
        fs.write_file("/in/words.txt", wordcount_input().as_bytes())
            .unwrap();
        let job = Job::new(
            JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), "/out")
                .with_split_size(20)
                .with_reducers(3),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(topo);
        let result = jt.run(fs, &job).unwrap();
        // Collect and parse all output records.
        let mut counts = Vec::new();
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            for line in String::from_utf8_lossy(&content).lines() {
                let mut it = line.split('\t');
                let word = it.next().unwrap().to_string();
                let count: u64 = it.next().unwrap().parse().unwrap();
                counts.push((word, count));
            }
        }
        counts.sort();
        (result, counts)
    }

    fn expected_wordcount() -> Vec<(String, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for w in wordcount_input().split_whitespace() {
            *map.entry(w.to_string()).or_insert(0u64) += 1;
        }
        map.into_iter().collect()
    }

    #[test]
    fn wordcount_on_bsfs_matches_reference() {
        let (topo, fs) = bsfs_cluster(4);
        let (result, counts) = run_wordcount(&topo, &fs);
        assert_eq!(counts, expected_wordcount());
        assert!(
            result.map_tasks >= 2,
            "a 56-byte file with 20-byte splits needs several maps"
        );
        assert_eq!(result.reduce_tasks, 3);
        assert_eq!(result.input_records, 3);
        assert!(result.output_records >= 8);
        assert_eq!(result.fs_name, "BSFS");
        assert!(result.completion_secs() > 0.0);
    }

    #[test]
    fn wordcount_on_hdfs_matches_reference() {
        let (topo, fs) = hdfs_cluster(4);
        let (result, counts) = run_wordcount(&topo, &fs);
        assert_eq!(counts, expected_wordcount());
        assert_eq!(result.fs_name, "HDFS");
    }

    #[test]
    fn control_wire_charges_claims_and_reports_over_simnet() {
        let (topo, fs) = bsfs_cluster(4);
        fs.write_file("/in/words.txt", wordcount_input().as_bytes())
            .unwrap();
        let job = Job::new(
            JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), "/out")
                .with_split_size(20)
                .with_reducers(3),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let net = Arc::new(wire::SimNet::new(
            topo.clone(),
            simcluster::netmodel::NetworkModel::grid5000_like(),
        ));
        let jt_node = topo.all_nodes().next().unwrap();
        let jt = JobTracker::new(&topo)
            .with_transport(Arc::clone(&net) as Arc<dyn wire::Transport>, jt_node);
        let result = jt.run(&fs, &job).unwrap();
        let control = jt.control_counters().expect("transport attached");
        // Every winning attempt is at least one claim (read) plus one
        // outcome report (write); retries and losers only add more.
        let tasks = (result.map_tasks + result.reduce_tasks) as u64;
        assert!(
            control.read_messages() >= tasks,
            "claims {} < tasks {tasks}",
            control.read_messages()
        );
        assert!(
            control.write_messages() >= tasks,
            "reports {} < tasks {tasks}",
            control.write_messages()
        );
        // The storage layer here runs in-process, so the SimNet carries
        // only the control plane: its exchange count must equal the
        // control counters, and the master's latency shows up as time.
        assert_eq!(net.exchanges(), control.messages());
        assert!(net.makespan() > simcluster::time::SimDuration::ZERO);
        // The shuffle counters project onto the same wire schema.
        let snap = result.shuffle.wire_snapshot();
        assert_eq!(snap.read_messages, result.shuffle.shuffle_read_round_trips);
        assert_eq!(snap.write_messages, 0);
        assert!(snap.bytes_received >= result.shuffle.shuffle_read_bytes);
        assert_eq!(snap.bytes_on_wire, snap.bytes_sent + snap.bytes_received);
    }

    #[test]
    fn both_backends_produce_identical_results() {
        let (topo_b, fs_b) = bsfs_cluster(4);
        let (topo_h, fs_h) = hdfs_cluster(4);
        let (_, counts_b) = run_wordcount(&topo_b, &fs_b);
        let (_, counts_h) = run_wordcount(&topo_h, &fs_h);
        assert_eq!(
            counts_b, counts_h,
            "the framework must behave identically over both backends"
        );
    }

    #[test]
    fn repeated_runs_produce_byte_identical_output() {
        // Slot dispatch is single-path (scoped tasks on the miniexec pool);
        // what remains worth holding is that concurrent slot scheduling
        // never leaks into job output: two runs of the same job must produce
        // byte-identical partition files.
        let run = || {
            let (topo, fs) = bsfs_cluster(4);
            fs.write_file("/in/words.txt", wordcount_input().as_bytes())
                .unwrap();
            let job = Job::new(
                JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), "/out")
                    .with_split_size(20)
                    .with_reducers(3),
                Arc::new(WordCountMapper),
                Arc::new(SumReducer),
            );
            let jt = JobTracker::new(&topo);
            let result = jt.run(&fs, &job).unwrap();
            let mut parts: Vec<(String, Vec<u8>)> = result
                .output_files
                .iter()
                .map(|p| (p.clone(), fs.read_file(p).unwrap().to_vec()))
                .collect();
            parts.sort();
            (result.output_records, parts)
        };
        let (records_a, parts_a) = run();
        let (records_b, parts_b) = run();
        assert_eq!(records_a, records_b);
        assert_eq!(
            parts_a, parts_b,
            "slot scheduling must not change job output"
        );
    }

    #[test]
    fn grep_counts_matching_lines() {
        let (topo, fs) = bsfs_cluster(4);
        let mut text = String::new();
        for i in 0..200 {
            if i % 7 == 0 {
                text.push_str(&format!("line {i} contains the needle pattern\n"));
            } else {
                text.push_str(&format!("line {i} is ordinary hay\n"));
            }
        }
        fs.write_file("/in/haystack.txt", text.as_bytes()).unwrap();
        let job = Job::new(
            JobConfig::new(
                "grep",
                InputSpec::Files(vec!["/in/haystack.txt".into()]),
                "/grep-out",
            )
            .with_split_size(512)
            .with_reducers(1),
            Arc::new(GrepMapper {
                pattern: "needle".into(),
            }),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        let out = fs.read_file(&result.output_files[0]).unwrap();
        let expected = (0..200).filter(|i| i % 7 == 0).count();
        assert_eq!(
            String::from_utf8_lossy(&out),
            format!("needle\t{expected}\n")
        );
        assert!(result.input_records >= 200);
    }

    #[test]
    fn map_only_job_writes_one_file_per_map() {
        let (topo, fs) = bsfs_cluster(3);
        struct Generator;
        impl Mapper for Generator {
            fn map(
                &self,
                offset: u64,
                _line: &str,
                emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                emit(format!("generated-record-{offset}"), String::new());
                Ok(())
            }
        }
        let job = Job::map_only(
            JobConfig::new(
                "generator",
                InputSpec::Synthetic {
                    splits: 5,
                    records_per_split: 10,
                },
                "/gen-out",
            ),
            Arc::new(Generator),
        );
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        assert_eq!(result.map_tasks, 5);
        assert_eq!(result.reduce_tasks, 0);
        assert_eq!(result.output_files.len(), 5);
        assert_eq!(result.output_records, 50);
        assert!(result.output_bytes > 0);
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            assert_eq!(String::from_utf8_lossy(&content).lines().count(), 10);
        }
    }

    #[test]
    fn output_directory_must_not_exist() {
        let (topo, fs) = bsfs_cluster(2);
        fs.mkdirs("/out").unwrap();
        fs.write_file("/in/x", b"data\n").unwrap();
        let job = Job::new(
            JobConfig::new("clobber", InputSpec::Files(vec!["/in".into()]), "/out"),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        assert!(matches!(jt.run(&fs, &job), Err(MrError::OutputExists(_))));
    }

    #[test]
    fn missing_input_fails_the_job() {
        let (topo, fs) = bsfs_cluster(2);
        let job = Job::new(
            JobConfig::new("ghost", InputSpec::Files(vec!["/nope".into()]), "/out"),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        assert!(matches!(jt.run(&fs, &job), Err(MrError::InputNotFound(_))));
    }

    #[test]
    fn flaky_map_tasks_are_retried_and_the_job_succeeds() {
        let (topo, fs) = bsfs_cluster(2);
        fs.write_file("/in/data", b"alpha\nbeta\ngamma\n").unwrap();

        /// Fails the first two executions, then succeeds.
        struct FlakyMapper {
            failures_left: AtomicUsize,
        }
        impl Mapper for FlakyMapper {
            fn map(
                &self,
                _offset: u64,
                line: &str,
                emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                if self
                    .failures_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    return Err(MrError::Storage("transient failure".into()));
                }
                emit(line.to_string(), "1".to_string());
                Ok(())
            }
        }

        let job = Job::new(
            JobConfig::new("flaky", InputSpec::Files(vec!["/in/data".into()]), "/out")
                .with_reducers(1)
                .with_max_attempts(5),
            Arc::new(FlakyMapper {
                failures_left: AtomicUsize::new(2),
            }),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        assert!(
            result.task_retries >= 1,
            "the flaky task must have been retried"
        );
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert_eq!(String::from_utf8_lossy(&out).lines().count(), 3);
        // Counters of the failed attempts must not leak into the report:
        // only the winning attempt's reads are merged.
        assert_eq!(result.input_records, 3);
        assert_eq!(result.speculation, SpeculationCounters::default());
    }

    #[test]
    fn permanently_failing_task_fails_the_job() {
        let (topo, fs) = bsfs_cluster(2);
        fs.write_file("/in/data", b"x\n").unwrap();
        struct AlwaysFails;
        impl Mapper for AlwaysFails {
            fn map(
                &self,
                _offset: u64,
                _line: &str,
                _emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                Err(MrError::Storage("permanent".into()))
            }
        }
        let job = Job::new(
            JobConfig::new("doomed", InputSpec::Files(vec!["/in/data".into()]), "/out")
                .with_max_attempts(3),
            Arc::new(AlwaysFails),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        match jt.run(&fs, &job) {
            Err(MrError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn failing_reducer_fails_the_job() {
        let (topo, fs) = bsfs_cluster(2);
        fs.write_file("/in/data", b"k\n").unwrap();
        struct BadReducer;
        impl Reducer for BadReducer {
            fn reduce(
                &self,
                _key: &str,
                _values: &[String],
                _emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                Err(MrError::Storage("reduce broke".into()))
            }
        }
        let job = Job::new(
            JobConfig::new(
                "bad-reduce",
                InputSpec::Files(vec!["/in/data".into()]),
                "/out",
            )
            .with_max_attempts(2),
            Arc::new(WordCountMapper),
            Arc::new(BadReducer),
        );
        let jt = JobTracker::new(&topo);
        assert!(matches!(jt.run(&fs, &job), Err(MrError::TaskFailed { .. })));
    }

    #[test]
    fn locality_counters_cover_all_map_tasks() {
        let (topo, fs) = bsfs_cluster(6);
        // Write a file large enough for several splits.
        let data = vec![b'a'; 4096];
        let mut text = Vec::new();
        for chunk in data.chunks(63) {
            text.extend_from_slice(chunk);
            text.push(b'\n');
        }
        fs.write_file("/in/big", &text).unwrap();
        let job = Job::new(
            JobConfig::new("locality", InputSpec::Files(vec!["/in/big".into()]), "/out")
                .with_split_size(512)
                .with_reducers(1),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        assert_eq!(result.locality.total(), result.map_tasks);
        // With one tasktracker per node and load-balanced placement, at least
        // some tasks should run data-local.
        assert!(
            result.locality.data_local > 0,
            "expected some data-local tasks, got {:?}",
            result.locality
        );
    }

    #[test]
    fn storage_shuffle_matches_inmem_oracle() {
        for use_hdfs in [false, true] {
            let topo = ClusterTopology::flat(4);
            let fs: Box<dyn DistFs> = if use_hdfs {
                let (_, fs) = hdfs_cluster(4);
                Box::new(fs)
            } else {
                let (_, fs) = bsfs_cluster(4);
                Box::new(fs)
            };
            fs.write_file("/in/words.txt", wordcount_input().as_bytes())
                .unwrap();
            let make_job = |out: &str| {
                Job::new(
                    JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), out)
                        .with_split_size(20)
                        .with_reducers(3),
                    Arc::new(WordCountMapper),
                    Arc::new(SumReducer),
                )
            };
            let jt = JobTracker::new(&topo);
            let dist = jt.run(&*fs, &make_job("/out-dist")).unwrap();
            let oracle = jt.run_inmem(&*fs, &make_job("/out-inmem")).unwrap();
            assert_eq!(dist.output_files.len(), oracle.output_files.len());
            for (d, o) in dist.output_files.iter().zip(&oracle.output_files) {
                assert_eq!(
                    d.strip_prefix("/out-dist"),
                    o.strip_prefix("/out-inmem"),
                    "part file names must match"
                );
                assert_eq!(
                    fs.read_file(d).unwrap(),
                    fs.read_file(o).unwrap(),
                    "{d} differs from the in-memory oracle (hdfs={use_hdfs})"
                );
            }
            assert_eq!(dist.output_records, oracle.output_records);
            assert_eq!(dist.output_bytes, oracle.output_bytes);
        }
    }

    #[test]
    fn shuffle_counters_are_nonzero_for_multi_reducer_jobs() {
        let (topo, fs) = bsfs_cluster(4);
        let (result, _) = run_wordcount(&topo, &fs);
        let s = result.shuffle;
        assert!(s.spill_records > 0, "map tasks must spill records: {s:?}");
        assert!(s.spill_bytes > 0);
        assert_eq!(
            s.segments_fetched,
            (result.map_tasks * result.reduce_tasks) as u64,
            "every reducer pulls one segment per map: {s:?}"
        );
        assert!(s.merge_runs > 0);
        assert!(
            s.shuffle_read_round_trips >= s.segments_fetched,
            "each segment costs at least the index read: {s:?}"
        );
        assert!(s.shuffle_read_bytes > 0);
        // No combiner configured.
        assert_eq!(s.combine_input_records, 0);
        assert_eq!(s.combine_output_records, 0);
    }

    #[test]
    fn compaction_matches_inmem_oracle_and_cuts_segment_fetches() {
        let (topo, fs) = bsfs_cluster(4);
        // Enough input for many splits so the compactor has spills to fold.
        let mut text = String::new();
        for i in 0..120 {
            text.push_str(&format!("alpha beta gamma delta-{} epsilon\n", i % 7));
        }
        fs.write_file("/in/words.txt", text.as_bytes()).unwrap();
        let make_job = |out: &str, compaction: bool| {
            let mut config =
                JobConfig::new("wc", InputSpec::Files(vec!["/in/words.txt".into()]), out)
                    .with_split_size(128)
                    .with_reducers(3);
            if compaction {
                config = config.with_compaction(0);
            }
            Job::new(config, Arc::new(WordCountMapper), Arc::new(SumReducer))
        };
        let jt = JobTracker::new(&topo);
        let compacted = jt.run(&fs, &make_job("/out-c", true)).unwrap();
        let plain = jt.run(&fs, &make_job("/out-p", false)).unwrap();
        let oracle = jt.run_inmem(&fs, &make_job("/out-o", false)).unwrap();

        assert!(compacted.map_tasks > 4, "want many spills to compact");
        assert_eq!(compacted.output_files.len(), oracle.output_files.len());
        for (c, o) in compacted.output_files.iter().zip(&oracle.output_files) {
            assert_eq!(
                fs.read_file(c).unwrap(),
                fs.read_file(o).unwrap(),
                "{c} differs from the in-memory oracle under compaction"
            );
        }
        assert_eq!(compacted.output_records, oracle.output_records);

        let s = compacted.shuffle;
        assert!(s.compaction_runs > 0, "compactor must commit runs: {s:?}");
        assert!(
            s.compaction_merged_spills >= 2 * s.compaction_runs,
            "every run folds at least two spills: {s:?}"
        );
        assert!(s.compaction_bytes > 0);
        assert!(
            s.segments_fetched < plain.shuffle.segments_fetched,
            "reducers fetch O(runs), not O(maps): {} vs {}",
            s.segments_fetched,
            plain.shuffle.segments_fetched
        );
        assert!(
            s.shuffle_read_round_trips < plain.shuffle.shuffle_read_round_trips,
            "compaction must cut positioned reads: {} vs {}",
            s.shuffle_read_round_trips,
            plain.shuffle.shuffle_read_round_trips
        );
        assert_eq!(plain.shuffle.compaction_runs, 0);
        assert_eq!(plain.shuffle.compaction_merged_spills, 0);
        // Merged runs live in _shuffle and are cleaned with it.
        assert!(!fs.exists("/out-c/_shuffle"));
        assert!(!fs.exists("/out-c/_temporary"));
    }

    #[test]
    fn scratch_dirs_are_cleaned_when_the_job_fails() {
        let (topo, fs) = bsfs_cluster(2);
        fs.write_file("/in/data", b"k\n").unwrap();
        struct BadReducer;
        impl Reducer for BadReducer {
            fn reduce(
                &self,
                _key: &str,
                _values: &[String],
                _emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                Err(MrError::Storage("reduce broke".into()))
            }
        }
        let job = Job::new(
            JobConfig::new("doomed", InputSpec::Files(vec!["/in/data".into()]), "/out")
                .with_max_attempts(2),
            Arc::new(WordCountMapper),
            Arc::new(BadReducer),
        );
        assert!(JobTracker::new(&topo).run(&fs, &job).is_err());
        assert!(
            !fs.exists("/out/_shuffle") && !fs.exists("/out/_temporary"),
            "failed jobs must not leak shuffle spills or attempt scratch"
        );
    }

    #[test]
    fn scratch_dirs_are_cleaned_after_success() {
        let (topo, fs) = bsfs_cluster(4);
        let (result, _) = run_wordcount(&topo, &fs);
        assert!(!fs.exists("/out/_shuffle"), "shuffle dir must be cleaned");
        assert!(!fs.exists("/out/_temporary"), "scratch dir must be cleaned");
        // The output dir holds exactly the part files.
        let mut listed = fs.list("/out").unwrap();
        listed.sort();
        assert_eq!(listed, result.output_files);
    }

    #[test]
    fn combiner_cuts_spilled_records_without_changing_output() {
        let (topo, fs) = bsfs_cluster(4);
        // Repetitive input so the combiner has something to collapse.
        let mut text = String::new();
        for _ in 0..50 {
            text.push_str("apple banana apple cherry apple banana\n");
        }
        fs.write_file("/in/fruit.txt", text.as_bytes()).unwrap();
        let make_job = |out: &str, combine: bool| {
            let mut config =
                JobConfig::new("wc", InputSpec::Files(vec!["/in/fruit.txt".into()]), out)
                    .with_split_size(256)
                    .with_reducers(2);
            if combine {
                config = config.with_combiner(Arc::new(SumReducer));
            }
            Job::new(config, Arc::new(WordCountMapper), Arc::new(SumReducer))
        };
        let jt = JobTracker::new(&topo);
        let plain = jt.run(&fs, &make_job("/out-plain", false)).unwrap();
        let combined = jt.run(&fs, &make_job("/out-combine", true)).unwrap();
        assert!(
            combined.shuffle.spill_records < plain.shuffle.spill_records,
            "combiner must cut spilled records: {} vs {}",
            combined.shuffle.spill_records,
            plain.shuffle.spill_records
        );
        assert!(combined.shuffle.spill_bytes < plain.shuffle.spill_bytes);
        assert!(combined.shuffle.combine_input_records > combined.shuffle.combine_output_records);
        for (a, b) in plain.output_files.iter().zip(&combined.output_files) {
            assert_eq!(fs.read_file(a).unwrap(), fs.read_file(b).unwrap());
        }
    }

    #[test]
    fn flaky_reduce_attempts_never_leave_partial_or_duplicate_output() {
        let (topo, fs) = bsfs_cluster(2);
        fs.write_file("/in/data", b"alpha\nbeta\ngamma\n").unwrap();
        /// Fails its first execution after emitting (the emitted pairs of the
        /// failed attempt must not leak into the committed part file).
        struct FlakyReducer {
            failures_left: AtomicUsize,
        }
        impl Reducer for FlakyReducer {
            fn reduce(
                &self,
                key: &str,
                _values: &[String],
                emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                emit(key.to_string(), "1".to_string());
                if self
                    .failures_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    return Err(MrError::Storage("transient reduce failure".into()));
                }
                Ok(())
            }
        }
        let job = Job::new(
            JobConfig::new("flaky-r", InputSpec::Files(vec!["/in/data".into()]), "/out")
                .with_reducers(1)
                .with_max_attempts(4),
            Arc::new(WordCountMapper),
            Arc::new(FlakyReducer {
                failures_left: AtomicUsize::new(1),
            }),
        );
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert!(result.task_retries >= 1);
        assert_eq!(result.output_files, vec!["/out/part-r-00000".to_string()]);
        let out = fs.read_file("/out/part-r-00000").unwrap();
        assert_eq!(
            String::from_utf8_lossy(&out).lines().count(),
            3,
            "retried attempt must produce exactly one complete part file"
        );
        let listed = fs.list("/out").unwrap();
        assert_eq!(listed, vec!["/out/part-r-00000".to_string()]);
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        // Mirror of the crate-level doctest.
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        let fs = BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()));
        fs.write_file("/in/text", b"to be or not to be\n").unwrap();
        let job = Job::new(
            JobConfig::new("wordcount", InputSpec::Files(vec!["/in".into()]), "/out")
                .with_split_size(256),
            Arc::new(WordCountMapper),
            Arc::new(SumReducer),
        );
        let tracker = JobTracker::new(fs.inner().storage().topology());
        let result = tracker.run(&fs, &job).unwrap();
        assert_eq!(result.map_tasks, 1);
        assert!(fs
            .read_file(&result.output_files[0])
            .unwrap()
            .starts_with(b"be\t2"));
    }
}
