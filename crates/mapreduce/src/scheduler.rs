//! Locality-aware task scheduling and the straggler-speculation policy.
//!
//! "One of the optimization techniques the MapReduce framework employs, is to
//! ship the computation to nodes that store the input data; the goal is to
//! minimize data transfers between nodes. For this reason, the storage layer
//! must be able to provide the information about the location of the data"
//! (paper §II-B). The jobtracker uses the functions below to hand each free
//! map slot the *closest* pending split: one whose data lives on the
//! tasktracker's own node if possible, else in its rack, else anywhere.
//!
//! The second half of this module is Hadoop's other latency defense:
//! **speculative execution**. A [`SpeculationPolicy`] decides, from a running
//! attempt's elapsed time and the runtimes of its completed peer tasks,
//! whether an idle slot should launch a duplicate attempt of that task. The
//! default [`SlowestFactorPolicy`] clones a task once it has run longer than
//! `slowest_factor ×` the median of its completed peers (with an absolute
//! floor, so short jobs don't speculate on noise). All times come from the
//! jobtracker's injected [`simcluster::clock::Clock`], so the policy is
//! deterministic under a [`simcluster::clock::SimClock`].

use crate::split::InputSplit;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::time::Duration;

/// How close a task's data is to the node that will execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    /// The data (one of its replicas) is on the executing node itself.
    DataLocal,
    /// The data is in the same rack as the executing node.
    RackLocal,
    /// The data is somewhere else in the cluster (or the split has no
    /// location information, e.g. synthetic splits).
    Remote,
}

/// Counters of how many map tasks ran at each locality level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityCounters {
    /// Tasks whose data was on the executing node.
    pub data_local: usize,
    /// Tasks whose data was in the executing node's rack.
    pub rack_local: usize,
    /// Tasks that had to read across racks (or had no location info).
    pub remote: usize,
}

impl LocalityCounters {
    /// Record one task execution at the given locality.
    pub fn record(&mut self, locality: Locality) {
        match locality {
            Locality::DataLocal => self.data_local += 1,
            Locality::RackLocal => self.rack_local += 1,
            Locality::Remote => self.remote += 1,
        }
    }

    /// Total tasks recorded.
    pub fn total(&self) -> usize {
        self.data_local + self.rack_local + self.remote
    }
}

/// Classify how close a split's data is to `node`.
pub fn classify(topology: &ClusterTopology, node: NodeId, split: &InputSplit) -> Locality {
    if split.preferred_nodes.is_empty() {
        return Locality::Remote;
    }
    if split.preferred_nodes.contains(&node) {
        return Locality::DataLocal;
    }
    let rack = topology.rack_of(node);
    if split
        .preferred_nodes
        .iter()
        .any(|n| topology.rack_of(*n) == rack)
    {
        Locality::RackLocal
    } else {
        Locality::Remote
    }
}

/// Pick the best pending split for a tasktracker on `node`: data-local first,
/// then rack-local, then anything. Returns the position *within `pending`* of
/// the chosen entry and its locality class, or `None` when `pending` is empty.
pub fn pick_map_task(
    topology: &ClusterTopology,
    node: NodeId,
    pending: &[usize],
    splits: &[InputSplit],
) -> Option<(usize, Locality)> {
    if pending.is_empty() {
        return None;
    }
    let mut best: Option<(usize, Locality)> = None;
    for (pos, &split_idx) in pending.iter().enumerate() {
        let locality = classify(topology, node, &splits[split_idx]);
        match best {
            None => best = Some((pos, locality)),
            Some((_, current)) if locality < current => best = Some((pos, locality)),
            _ => {}
        }
        if locality == Locality::DataLocal {
            break; // cannot do better
        }
    }
    best
}

/// Decides whether a running task deserves a speculative duplicate attempt.
///
/// The jobtracker consults the policy from *idle* worker slots (so "spare
/// slots exist" holds by construction): `runtime` is how long the task's sole
/// running attempt has been executing, `completed_runtimes` the runtimes of
/// the tasks of the same phase that already committed.
pub trait SpeculationPolicy: Send + Sync {
    /// Should an idle slot clone this task now?
    fn should_speculate(&self, runtime: Duration, completed_runtimes: &[Duration]) -> bool;
}

/// Median of a set of task runtimes ([`Duration::ZERO`] when empty); even
/// counts average the two middle values, matching Hadoop's estimator.
pub fn median_runtime(runtimes: &[Duration]) -> Duration {
    if runtimes.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = runtimes.to_vec();
    sorted.sort();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// The default speculation policy: clone a task once its runtime exceeds
/// `slowest_factor ×` the median runtime of its completed peers, with an
/// absolute `min_runtime` floor, and only after `min_completed` peers have
/// finished (no peers, no baseline — Hadoop's "wait for enough history").
#[derive(Debug, Clone, Copy)]
pub struct SlowestFactorPolicy {
    /// How many times slower than the median a task must be.
    pub slowest_factor: f64,
    /// Never speculate a task that has run for less than this.
    pub min_runtime: Duration,
    /// Completed peer tasks required before any speculation.
    pub min_completed: usize,
}

impl Default for SlowestFactorPolicy {
    fn default() -> Self {
        SlowestFactorPolicy {
            slowest_factor: 1.5,
            min_runtime: Duration::from_secs(1),
            min_completed: 1,
        }
    }
}

impl SpeculationPolicy for SlowestFactorPolicy {
    fn should_speculate(&self, runtime: Duration, completed_runtimes: &[Duration]) -> bool {
        if completed_runtimes.len() < self.min_completed {
            return false;
        }
        let median = median_runtime(completed_runtimes);
        let threshold = median.mul_f64(self.slowest_factor).max(self.min_runtime);
        runtime > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitSource;

    fn split(id: usize, nodes: Vec<NodeId>) -> InputSplit {
        InputSplit {
            id,
            source: SplitSource::File {
                path: "/f".into(),
                offset: 0,
                len: 1,
            },
            preferred_nodes: nodes,
        }
    }

    fn topo() -> ClusterTopology {
        // 2 racks of 3 nodes: rack 0 = nodes 0..3, rack 1 = nodes 3..6.
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(3)
            .build()
    }

    #[test]
    fn classification_levels() {
        let t = topo();
        let s_local = split(0, vec![NodeId(1)]);
        let s_rack = split(1, vec![NodeId(2)]);
        let s_remote = split(2, vec![NodeId(5)]);
        let s_unknown = split(3, vec![]);
        assert_eq!(classify(&t, NodeId(1), &s_local), Locality::DataLocal);
        assert_eq!(classify(&t, NodeId(1), &s_rack), Locality::RackLocal);
        assert_eq!(classify(&t, NodeId(1), &s_remote), Locality::Remote);
        assert_eq!(classify(&t, NodeId(1), &s_unknown), Locality::Remote);
        // Ordering backs the scheduler's preference.
        assert!(Locality::DataLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::Remote);
    }

    #[test]
    fn picker_prefers_data_local_then_rack_local() {
        let t = topo();
        let splits = vec![
            split(0, vec![NodeId(5)]), // remote for node 0
            split(1, vec![NodeId(2)]), // rack-local for node 0
            split(2, vec![NodeId(0)]), // data-local for node 0
        ];
        let pending = vec![0, 1, 2];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 2);
        assert_eq!(loc, Locality::DataLocal);

        // Without the data-local option, the rack-local one wins.
        let pending = vec![0, 1];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 1);
        assert_eq!(loc, Locality::RackLocal);

        // Only the remote split left.
        let pending = vec![0];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 0);
        assert_eq!(loc, Locality::Remote);

        assert!(pick_map_task(&t, NodeId(0), &[], &splits).is_none());
    }

    #[test]
    fn median_runtime_handles_odd_even_and_empty() {
        let s = Duration::from_secs;
        assert_eq!(median_runtime(&[]), Duration::ZERO);
        assert_eq!(median_runtime(&[s(4)]), s(4));
        assert_eq!(median_runtime(&[s(9), s(1), s(5)]), s(5));
        assert_eq!(median_runtime(&[s(8), s(2), s(4), s(6)]), s(5));
    }

    #[test]
    fn slowest_factor_policy_gates_on_history_floor_and_factor() {
        let s = Duration::from_secs;
        let policy = SlowestFactorPolicy {
            slowest_factor: 2.0,
            min_runtime: s(3),
            min_completed: 2,
        };
        // Not enough completed peers: never speculate, however slow.
        assert!(!policy.should_speculate(s(1000), &[s(1)]));
        // Enough history, but under the absolute floor.
        assert!(!policy.should_speculate(s(3), &[s(1), s(1)]));
        // Over the floor and over factor x median.
        assert!(policy.should_speculate(s(4), &[s(1), s(1)]));
        // Factor dominates once the median is large: 2 x 10s = 20s.
        assert!(!policy.should_speculate(s(20), &[s(10), s(10)]));
        assert!(policy.should_speculate(s(21), &[s(10), s(10)]));
    }

    #[test]
    fn default_policy_waits_for_one_peer_and_one_second() {
        let policy = SlowestFactorPolicy::default();
        assert!(!policy.should_speculate(Duration::from_secs(900), &[]));
        assert!(policy.should_speculate(Duration::from_secs(2), &[Duration::from_millis(10)]));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = LocalityCounters::default();
        c.record(Locality::DataLocal);
        c.record(Locality::DataLocal);
        c.record(Locality::RackLocal);
        c.record(Locality::Remote);
        assert_eq!(c.data_local, 2);
        assert_eq!(c.rack_local, 1);
        assert_eq!(c.remote, 1);
        assert_eq!(c.total(), 4);
    }
}
