//! # hdfs-sim — the HDFS-like baseline file system
//!
//! The paper measures BSFS against the Hadoop Distributed File System. This
//! crate reproduces the HDFS design points the comparison depends on
//! (§II-C and §IV-B of the paper):
//!
//! * a single **namenode** holding the namespace and chunk locations
//!   ([`namenode::Namenode`]);
//! * **datanodes** storing fixed-size chunks (64 MiB by default)
//!   ([`datanode::Datanode`]);
//! * **write-once semantics** — a file is created, written by one client,
//!   closed, and from then on can only be read;
//! * the **rack-aware replica placement policy** — first replica local to the
//!   writer, second in the same rack, third in another rack
//!   ([`placement::PlacementPolicy`]) — which is precisely the behaviour the
//!   paper credits for HDFS's inferior write throughput under concurrency;
//! * clients read from the **closest replica**.
//!
//! The public API mirrors the `bsfs` crate so that the MapReduce framework
//! can swap one for the other, exactly as the paper swaps HDFS for BSFS under
//! an unchanged Hadoop.
//!
//! ```
//! use hdfs_sim::{Hdfs, HdfsConfig};
//!
//! let fs = Hdfs::new(HdfsConfig::for_tests());
//! let mut w = fs.create("/logs/part-0").unwrap();
//! w.write(b"line one\n").unwrap();
//! w.close().unwrap();
//! assert_eq!(&fs.read_file("/logs/part-0").unwrap()[..], b"line one\n");
//! ```

pub mod datanode;
pub mod error;
pub mod namenode;
pub mod placement;

pub use datanode::{ChunkId, Datanode, DatanodeId, DatanodeStats};
pub use error::{HdfsError, HdfsResult};
pub use namenode::{ChunkInfo, ChunkLocation, FileMeta, FileState, Namenode};
pub use placement::PlacementPolicy;

use bytes::Bytes;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::sync::Arc;

/// Configuration of an HDFS deployment.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Chunk ("block") size in bytes; Hadoop's default is 64 MiB.
    pub chunk_size: u64,
    /// Number of datanodes when deploying on a flat topology.
    pub datanodes: usize,
    /// Replication factor for every chunk.
    pub replication: usize,
    /// Seed for the placement policy's deterministic randomness.
    pub seed: u64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            chunk_size: 64 * 1024 * 1024,
            datanodes: 8,
            replication: 3,
            seed: 1,
        }
    }
}

impl HdfsConfig {
    /// A configuration sized for unit tests.
    pub fn for_tests() -> Self {
        HdfsConfig {
            chunk_size: 256,
            datanodes: 4,
            replication: 2,
            seed: 42,
        }
    }

    /// Builder-style override of the chunk size.
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Builder-style override of the replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Builder-style override of the datanode count.
    pub fn with_datanodes(mut self, datanodes: usize) -> Self {
        self.datanodes = datanodes;
        self
    }
}

/// The HDFS client / deployment handle. Clones share the namenode and the
/// datanodes; [`Hdfs::on_node`] rebinds the client to another cluster node,
/// which changes where the local-first placement puts first replicas and
/// which replica reads prefer.
#[derive(Clone)]
pub struct Hdfs {
    namenode: Arc<Namenode>,
    topology: ClusterTopology,
    node: NodeId,
}

impl Hdfs {
    /// Deploy on a flat topology with one datanode per node.
    pub fn new(config: HdfsConfig) -> Self {
        let topology = ClusterTopology::flat(config.datanodes as u32);
        let nodes: Vec<NodeId> = topology.all_nodes().collect();
        Self::with_topology(config, &topology, &nodes)
    }

    /// Deploy datanodes on specific nodes of an existing topology.
    pub fn with_topology(
        config: HdfsConfig,
        topology: &ClusterTopology,
        datanode_nodes: &[NodeId],
    ) -> Self {
        assert!(
            !datanode_nodes.is_empty(),
            "at least one datanode node is required"
        );
        let datanodes: Vec<Arc<Datanode>> = datanode_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| Arc::new(Datanode::in_memory(DatanodeId(i as u32), *n)))
            .collect();
        let namenode = Arc::new(Namenode::new(
            topology,
            datanodes,
            config.chunk_size,
            config.replication,
            config.seed,
        ));
        Hdfs {
            namenode,
            topology: topology.clone(),
            node: topology.node(0),
        }
    }

    /// A handle whose operations originate from the given cluster node.
    pub fn on_node(&self, node: NodeId) -> Self {
        let mut clone = self.clone();
        clone.node = node;
        clone
    }

    /// The namenode (tests, failure injection).
    pub fn namenode(&self) -> &Arc<Namenode> {
        &self.namenode
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Create a file and return its writer (write-once: the file becomes
    /// readable only after the writer is closed).
    pub fn create(&self, path: &str) -> HdfsResult<HdfsWriter> {
        let normalized = self.namenode.create_file(path)?;
        Ok(HdfsWriter {
            namenode: Arc::clone(&self.namenode),
            path: normalized,
            node: self.node,
            buffer: Vec::with_capacity(self.namenode.chunk_size() as usize),
            closed: false,
        })
    }

    /// Open a closed file for reads.
    pub fn open(&self, path: &str) -> HdfsResult<HdfsReader> {
        let meta = self.namenode.get_file(path)?;
        Ok(HdfsReader {
            namenode: Arc::clone(&self.namenode),
            meta,
            path: namenode::normalize(path)?,
            node: self.node,
            position: 0,
        })
    }

    /// Length of a closed file.
    pub fn len(&self, path: &str) -> HdfsResult<u64> {
        self.namenode.file_size(path)
    }

    /// True when the namespace holds no files.
    pub fn is_empty(&self) -> bool {
        self.namenode.file_count() == 0
    }

    /// Does the path exist?
    pub fn exists(&self, path: &str) -> bool {
        self.namenode.exists(path)
    }

    /// Create a directory and its ancestors.
    pub fn mkdirs(&self, path: &str) -> HdfsResult<()> {
        self.namenode.mkdirs(path)
    }

    /// List the children of a directory.
    pub fn list(&self, path: &str) -> HdfsResult<Vec<String>> {
        self.namenode.list(path)
    }

    /// Delete a file or (recursively) a directory, releasing chunk replicas.
    pub fn delete(&self, path: &str, recursive: bool) -> HdfsResult<()> {
        let chunks = if self.namenode.exists(path) && self.namenode.list(path).is_ok() {
            self.namenode.remove_dir(path, recursive)?
        } else {
            self.namenode.remove_file(path)?
        };
        for chunk in chunks {
            for replica in chunk.replicas {
                if let Some(dn) = self.namenode.datanode(replica) {
                    dn.delete_chunk(chunk.id);
                }
            }
        }
        Ok(())
    }

    /// Rename a file or directory.
    pub fn rename(&self, from: &str, to: &str) -> HdfsResult<()> {
        self.namenode.rename(from, to)
    }

    /// Locality query (chunk piece -> nodes), for the MapReduce scheduler.
    pub fn locate(&self, path: &str, offset: u64, len: u64) -> HdfsResult<Vec<ChunkLocation>> {
        self.namenode.locate(path, offset, len)
    }

    /// Convenience: write an entire file in one call.
    pub fn write_file(&self, path: &str, data: &[u8]) -> HdfsResult<()> {
        let mut w = self.create(path)?;
        w.write(data)?;
        w.close()
    }

    /// Convenience: read an entire file in one call.
    pub fn read_file(&self, path: &str) -> HdfsResult<Bytes> {
        let size = self.len(path)?;
        if size == 0 {
            return Ok(Bytes::new());
        }
        let mut r = self.open(path)?;
        r.read_at(0, size)
    }
}

/// Sequential writer for one file. Data is buffered into whole chunks; each
/// full chunk is allocated by the namenode and pushed to every replica
/// datanode (the "pipeline"). `close` flushes the last partial chunk and
/// seals the file.
pub struct HdfsWriter {
    namenode: Arc<Namenode>,
    path: String,
    node: NodeId,
    buffer: Vec<u8>,
    closed: bool,
}

impl HdfsWriter {
    /// The path this writer writes to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Append data to the file.
    pub fn write(&mut self, data: &[u8]) -> HdfsResult<()> {
        if self.closed {
            return Err(HdfsError::WriterClosed);
        }
        self.buffer.extend_from_slice(data);
        let chunk_size = self.namenode.chunk_size() as usize;
        while self.buffer.len() >= chunk_size {
            let rest = self.buffer.split_off(chunk_size);
            let full = std::mem::replace(&mut self.buffer, rest);
            self.commit_chunk(Bytes::from(full))?;
        }
        Ok(())
    }

    fn commit_chunk(&mut self, data: Bytes) -> HdfsResult<()> {
        let info = self
            .namenode
            .allocate_chunk(&self.path, data.len() as u64, self.node)?;
        let mut stored = 0;
        for replica in &info.replicas {
            if let Some(dn) = self.namenode.datanode(*replica) {
                if dn.put_chunk(info.id, data.clone()) {
                    stored += 1;
                }
            }
        }
        if stored == 0 {
            return Err(HdfsError::NoDatanodes);
        }
        Ok(())
    }

    /// Flush the final partial chunk and seal the file.
    pub fn close(&mut self) -> HdfsResult<()> {
        if self.closed {
            return Ok(());
        }
        if !self.buffer.is_empty() {
            let tail = Bytes::from(std::mem::take(&mut self.buffer));
            self.commit_chunk(tail)?;
        }
        self.namenode.complete_file(&self.path)?;
        self.closed = true;
        Ok(())
    }
}

/// Reader for a closed file. Reads fetch whole chunks from the closest live
/// replica.
pub struct HdfsReader {
    namenode: Arc<Namenode>,
    meta: FileMeta,
    path: String,
    node: NodeId,
    position: u64,
}

impl HdfsReader {
    /// The path this reader reads from.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Size of the file.
    pub fn len(&self) -> u64 {
        self.meta.size()
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `len` bytes at `offset`.
    pub fn read_at(&mut self, offset: u64, len: u64) -> HdfsResult<Bytes> {
        let size = self.len();
        if offset + len > size {
            return Err(HdfsError::OutOfBounds {
                path: self.path.clone(),
                requested_end: offset + len,
                size,
            });
        }
        if len == 0 {
            return Ok(Bytes::new());
        }
        let mut out = Vec::with_capacity(len as usize);
        let end = offset + len;
        let mut chunk_start = 0u64;
        for (idx, chunk) in self.meta.chunks.clone().iter().enumerate() {
            let chunk_end = chunk_start + chunk.size;
            if chunk_end > offset && chunk_start < end {
                let data = self.fetch_chunk(idx, chunk)?;
                let from = (offset.max(chunk_start) - chunk_start) as usize;
                let to = (end.min(chunk_end) - chunk_start) as usize;
                out.extend_from_slice(&data[from..to]);
            }
            chunk_start = chunk_end;
        }
        Ok(Bytes::from(out))
    }

    fn fetch_chunk(&self, idx: usize, chunk: &ChunkInfo) -> HdfsResult<Bytes> {
        // Prefer the replica closest to this reader, as HDFS does.
        let holders: Vec<(DatanodeId, NodeId)> = chunk
            .replicas
            .iter()
            .filter_map(|d| self.namenode.datanode(*d).map(|dn| (*d, dn.node())))
            .collect();
        let ordered = self
            .namenode
            .placement()
            .order_by_proximity(self.node, holders);
        for replica in ordered {
            if let Some(dn) = self.namenode.datanode(replica) {
                if let Some(data) = dn.get_chunk(chunk.id) {
                    return Ok(data);
                }
            }
        }
        Err(HdfsError::ChunkUnavailable {
            path: self.path.clone(),
            chunk_index: idx,
        })
    }

    /// Sequential read from the current position.
    pub fn read(&mut self, len: u64) -> HdfsResult<Bytes> {
        let remaining = self.len().saturating_sub(self.position);
        let n = len.min(remaining);
        let data = self.read_at(self.position, n)?;
        self.position += data.len() as u64;
        Ok(data)
    }

    /// Move the sequential-read position.
    pub fn seek(&mut self, position: u64) {
        self.position = position;
    }

    /// Current sequential-read position.
    pub fn position(&self) -> u64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Hdfs {
        Hdfs::new(HdfsConfig::for_tests())
    }

    #[test]
    fn write_close_read_roundtrip() {
        let fs = fs();
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        fs.write_file("/d/file", &data).unwrap();
        assert_eq!(fs.len("/d/file").unwrap(), 1000);
        assert_eq!(fs.read_file("/d/file").unwrap().to_vec(), data);
        // 1000 bytes over 256-byte chunks = 4 chunks.
        assert_eq!(fs.namenode().get_file("/d/file").unwrap().chunks.len(), 4);
    }

    #[test]
    fn file_is_unreadable_until_closed_and_immutable_after() {
        let fs = fs();
        let mut w = fs.create("/wip").unwrap();
        w.write(b"partial").unwrap();
        assert!(matches!(
            fs.open("/wip"),
            Err(HdfsError::WrongFileState { .. })
        ));
        assert!(matches!(
            fs.len("/wip"),
            Err(HdfsError::WrongFileState { .. })
        ));
        w.close().unwrap();
        assert_eq!(&fs.read_file("/wip").unwrap()[..], b"partial");
        // Write-once: writing after close fails, re-creating fails.
        assert!(matches!(w.write(b"more"), Err(HdfsError::WriterClosed)));
        assert!(matches!(
            fs.create("/wip"),
            Err(HdfsError::AlreadyExists(_))
        ));
        // Closing twice is harmless.
        w.close().unwrap();
    }

    #[test]
    fn positioned_and_sequential_reads() {
        let fs = fs();
        let data: Vec<u8> = (0..700u32).map(|i| (i % 256) as u8).collect();
        fs.write_file("/seq", &data).unwrap();
        let mut r = fs.open("/seq").unwrap();
        assert_eq!(
            r.read_at(250, 20).unwrap().to_vec(),
            data[250..270].to_vec()
        );
        assert_eq!(r.read_at(0, 700).unwrap().to_vec(), data);
        assert!(matches!(
            r.read_at(695, 10),
            Err(HdfsError::OutOfBounds { .. })
        ));
        r.seek(690);
        assert_eq!(r.read(100).unwrap().len(), 10);
        assert!(r.read(10).unwrap().is_empty());
        assert_eq!(r.position(), 700);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_file() {
        let fs = fs();
        let mut w = fs.create("/empty").unwrap();
        w.close().unwrap();
        assert_eq!(fs.len("/empty").unwrap(), 0);
        assert!(fs.read_file("/empty").unwrap().is_empty());
        assert!(fs.open("/empty").unwrap().is_empty());
    }

    #[test]
    fn replicas_are_placed_local_first() {
        let topo = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build();
        let nodes: Vec<NodeId> = topo.all_nodes().collect();
        let fs = Hdfs::with_topology(HdfsConfig::for_tests().with_replication(3), &topo, &nodes);
        let writer_node = topo.node(1);
        let fs_on_1 = fs.on_node(writer_node);
        fs_on_1.write_file("/local", &[1u8; 600]).unwrap();
        let meta = fs.namenode().get_file("/local").unwrap();
        for chunk in &meta.chunks {
            let first = fs.namenode().datanode(chunk.replicas[0]).unwrap();
            assert_eq!(
                first.node(),
                writer_node,
                "first replica must be on the writer's node"
            );
        }
        // The writer's datanode therefore stores every chunk — the hot-spot
        // behaviour the paper describes.
        let dn1 = fs.namenode().datanode(DatanodeId(1)).unwrap();
        assert_eq!(dn1.stats().chunks, meta.chunks.len());
    }

    #[test]
    fn reads_survive_replica_failure() {
        let fs = Hdfs::new(HdfsConfig::for_tests().with_replication(2));
        let data = vec![5u8; 512];
        fs.write_file("/replicated", &data).unwrap();
        // Kill the first replica of every chunk.
        let meta = fs.namenode().get_file("/replicated").unwrap();
        for chunk in &meta.chunks {
            fs.namenode().datanode(chunk.replicas[0]).unwrap().kill();
        }
        assert_eq!(fs.read_file("/replicated").unwrap().to_vec(), data);
    }

    #[test]
    fn read_fails_when_all_replicas_are_dead() {
        let fs = Hdfs::new(HdfsConfig::for_tests().with_replication(2));
        fs.write_file("/doomed", &[1u8; 100]).unwrap();
        for dn in fs.namenode().datanodes() {
            dn.kill();
        }
        assert!(matches!(
            fs.read_file("/doomed"),
            Err(HdfsError::ChunkUnavailable { .. })
        ));
    }

    #[test]
    fn write_fails_without_datanodes() {
        let fs = fs();
        for dn in fs.namenode().datanodes() {
            dn.kill();
        }
        let mut w = fs.create("/nowhere").unwrap();
        assert!(matches!(w.write(&[0u8; 300]), Err(HdfsError::NoDatanodes)));
    }

    #[test]
    fn namespace_operations() {
        let fs = fs();
        fs.write_file("/in/a", b"1").unwrap();
        fs.write_file("/in/b", b"2").unwrap();
        fs.mkdirs("/out").unwrap();
        assert_eq!(fs.list("/in").unwrap().len(), 2);
        assert_eq!(fs.list("/").unwrap(), vec!["/in", "/out"]);
        fs.rename("/in/a", "/out/a").unwrap();
        assert!(fs.exists("/out/a"));
        fs.delete("/out/a", false).unwrap();
        assert!(!fs.exists("/out/a"));
        fs.delete("/in", true).unwrap();
        assert!(!fs.exists("/in/b"));
        assert!(fs.is_empty() != fs.exists("/in/b"));
    }

    #[test]
    fn delete_releases_datanode_space() {
        let fs = fs();
        fs.write_file("/payload", &[9u8; 1024]).unwrap();
        let before: u64 = fs
            .namenode()
            .datanodes()
            .iter()
            .map(|d| d.stats().stored_bytes)
            .sum();
        assert!(before >= 1024);
        fs.delete("/payload", false).unwrap();
        let after: u64 = fs
            .namenode()
            .datanodes()
            .iter()
            .map(|d| d.stats().stored_bytes)
            .sum();
        assert_eq!(after, 0);
    }

    #[test]
    fn locate_matches_chunk_layout() {
        let fs = fs();
        fs.write_file("/loc", &[3u8; 600]).unwrap();
        let locations = fs.locate("/loc", 0, 600).unwrap();
        assert_eq!(locations.len(), 3);
        assert_eq!(locations[0].len, 256);
        assert_eq!(locations[2].len, 88);
        assert!(locations.iter().all(|l| l.nodes.len() == 2));
    }

    #[test]
    fn concurrent_writers_to_different_files() {
        let fs = Hdfs::new(HdfsConfig::for_tests().with_datanodes(8));
        let handles: Vec<_> = (0..8u8)
            .map(|t| {
                let fs = fs.on_node(fs.topology().node(t as u32));
                std::thread::spawn(move || {
                    let path = format!("/out/part-{t}");
                    let mut w = fs.create(&path).unwrap();
                    for _ in 0..16 {
                        w.write(&[t; 64]).unwrap();
                    }
                    w.close().unwrap();
                    (path, fs)
                })
            })
            .collect();
        for h in handles {
            let (path, fs) = h.join().unwrap();
            assert_eq!(fs.read_file(&path).unwrap().len(), 16 * 64);
        }
        assert_eq!(fs.namenode().file_count(), 8);
    }
}
