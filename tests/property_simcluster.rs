//! Property-based tests of the cluster/network simulator's invariants.

use proptest::prelude::*;
use simcluster::flowsim::{ClientProcess, Flow, FlowSimulator, Step};
use simcluster::netmodel::NetworkModel;
use simcluster::time::SimDuration;
use simcluster::topology::ClusterTopology;

fn topo() -> ClusterTopology {
    ClusterTopology::builder()
        .sites(2)
        .racks_per_site(2)
        .nodes_per_rack(4)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every byte handed to the simulator is accounted for in the report, and
    /// no process finishes before its isolated (contention-free) lower bound.
    #[test]
    fn bytes_are_conserved_and_durations_respect_lower_bounds(
        transfers in prop::collection::vec((0u32..16, 0u32..16, 1u64..4_000_000), 1..12),
    ) {
        let topo = topo();
        let net = NetworkModel::grid5000_like();
        let mut expected_total = 0u64;
        let processes: Vec<ClientProcess> = transfers
            .iter()
            .enumerate()
            .map(|(i, (src, dst, bytes))| {
                expected_total += *bytes;
                ClientProcess::new(topo.node(*src))
                    .labelled(format!("p{i}"))
                    .then(Step::transfer(topo.node(*src), topo.node(*dst), *bytes))
            })
            .collect();
        let lower_bounds: Vec<f64> = transfers
            .iter()
            .map(|(src, dst, bytes)| {
                net.isolated_transfer_time(&topo, topo.node(*src), topo.node(*dst), *bytes)
                    .as_secs_f64()
            })
            .collect();

        let report = FlowSimulator::new(&topo, net).run(processes);
        prop_assert_eq!(report.total_bytes(), expected_total);
        for (outcome, lower) in report.processes.iter().zip(lower_bounds) {
            let measured = outcome.duration().as_secs_f64();
            prop_assert!(
                measured + 1e-6 >= lower,
                "process {} finished in {measured}s, below its contention-free bound {lower}s",
                outcome.label
            );
        }
    }

    /// Adding more competing flows never makes the makespan shorter.
    #[test]
    fn more_contention_never_shortens_the_makespan(
        base_clients in 1usize..6,
        extra_clients in 1usize..6,
        bytes in 100_000u64..2_000_000,
    ) {
        let topo = topo();
        let net = NetworkModel::uniform(50.0e6, SimDuration::ZERO);
        // All clients read from the same server node 0.
        let build = |count: usize| -> Vec<ClientProcess> {
            (0..count)
                .map(|i| {
                    let me = topo.node(1 + (i as u32 % 7));
                    ClientProcess::new(me).then(Step::parallel(vec![Flow::new(
                        topo.node(0),
                        me,
                        bytes,
                    )]))
                })
                .collect()
        };
        let few = FlowSimulator::new(&topo, net.clone()).run(build(base_clients));
        let many = FlowSimulator::new(&topo, net).run(build(base_clients + extra_clients));
        prop_assert!(many.makespan() >= few.makespan());
    }

    /// The failure schedule is consistent: a node is dead exactly from its
    /// earliest scheduled failure onwards.
    #[test]
    fn failure_schedule_is_monotone(
        failures in prop::collection::vec((0u32..32, 0u64..10_000), 0..16),
        probe_times in prop::collection::vec(0u64..12_000, 1..16),
    ) {
        use simcluster::failure::FailureSchedule;
        use simcluster::time::SimTime;
        use std::collections::HashMap;

        let mut schedule = FailureSchedule::none();
        let mut earliest: HashMap<u32, u64> = HashMap::new();
        for (node, at) in &failures {
            schedule = schedule.fail_at(simcluster::NodeId(*node), SimTime::from_micros(*at));
            earliest
                .entry(*node)
                .and_modify(|t| *t = (*t).min(*at))
                .or_insert(*at);
        }
        for probe in probe_times {
            for (node, first_failure) in &earliest {
                let alive = schedule.is_alive(simcluster::NodeId(*node), SimTime::from_micros(probe));
                prop_assert_eq!(alive, probe < *first_failure);
            }
        }
    }
}
