//! The three microbenchmark access patterns of the paper's §IV-B, executed
//! for real against a storage backend (threads moving actual bytes).
//!
//! "The microbenchmarks are tests that directly access the storage layer, by
//! using the file system interface it provides":
//!
//! * clients concurrently **reading from different files** (map phase over
//!   per-task inputs),
//! * clients concurrently **reading non-overlapping parts of the same huge
//!   file** (map phase over one shared input),
//! * clients concurrently **writing to different files** (reduce phase
//!   writing per-task outputs).
//!
//! These real-mode runs are used for correctness checks and laptop-scale
//! Criterion benchmarks; the paper-scale (270 nodes, 1 GiB per client)
//! numbers come from [`crate::simscale`], which replays the same placement
//! decisions through the flow-level network model.

use mapreduce::fs::DistFs;
use mapreduce::MrResult;
use std::sync::Arc;
use std::time::Instant;

/// Which access pattern a microbenchmark run exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Each client reads its own file (E1).
    ReadDistinctFiles,
    /// All clients read disjoint parts of one shared file (E2).
    ReadSharedFile,
    /// Each client writes its own file (E3).
    WriteDistinctFiles,
}

/// Parameters of a microbenchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchConfig {
    /// Number of concurrent clients (threads).
    pub clients: usize,
    /// Bytes processed per client.
    pub bytes_per_client: u64,
    /// Size of each individual read/write request issued by a client
    /// (MapReduce applications use small records; the paper cites 4 KB).
    pub record_size: u64,
}

impl MicrobenchConfig {
    /// A laptop-scale configuration: a handful of clients, a few hundred KiB
    /// each, 4 KiB records.
    pub fn small(clients: usize) -> Self {
        MicrobenchConfig {
            clients,
            bytes_per_client: 256 * 1024,
            record_size: 4096,
        }
    }
}

/// Result of a microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchReport {
    /// The pattern that was executed.
    pub pattern: AccessPattern,
    /// Number of clients.
    pub clients: usize,
    /// Total bytes moved by all clients.
    pub total_bytes: u64,
    /// Wall-clock seconds for the whole run (slowest client).
    pub elapsed_secs: f64,
    /// Per-client throughput in bytes/second.
    pub per_client_bps: Vec<f64>,
}

impl MicrobenchReport {
    /// Aggregate throughput in bytes per second.
    pub fn aggregate_bps(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / self.elapsed_secs
        }
    }

    /// Mean per-client throughput in bytes per second.
    pub fn mean_client_bps(&self) -> f64 {
        if self.per_client_bps.is_empty() {
            0.0
        } else {
            self.per_client_bps.iter().sum::<f64>() / self.per_client_bps.len() as f64
        }
    }
}

/// Path of the file used by client `i` in the distinct-file patterns.
pub fn client_file(i: usize) -> String {
    format!("/microbench/client-{i:04}")
}

/// Path of the shared file used by the shared-read pattern.
pub const SHARED_FILE: &str = "/microbench/shared-huge-file";

/// Pre-create the per-client input files for [`AccessPattern::ReadDistinctFiles`].
pub fn prepare_distinct_files(fs: &dyn DistFs, config: &MicrobenchConfig) -> MrResult<()> {
    for i in 0..config.clients {
        write_file_in_records(
            fs,
            &client_file(i),
            config.bytes_per_client,
            config.record_size,
        )?;
    }
    Ok(())
}

/// Pre-create the shared input file for [`AccessPattern::ReadSharedFile`].
pub fn prepare_shared_file(fs: &dyn DistFs, config: &MicrobenchConfig) -> MrResult<()> {
    let total = config.bytes_per_client * config.clients as u64;
    write_file_in_records(fs, SHARED_FILE, total, config.record_size.max(64 * 1024))
}

fn write_file_in_records(
    fs: &dyn DistFs,
    path: &str,
    total: u64,
    record_size: u64,
) -> MrResult<()> {
    let mut writer = fs.create(path)?;
    let record = vec![0x5Au8; record_size as usize];
    let mut written = 0u64;
    while written < total {
        let n = record_size.min(total - written) as usize;
        writer.write(&record[..n])?;
        written += n as u64;
    }
    writer.close()
}

/// Run the "concurrent reads from different files" pattern (E1). The input
/// files must have been created with [`prepare_distinct_files`].
pub fn read_distinct_files(
    fs: &dyn DistFs,
    config: &MicrobenchConfig,
) -> MrResult<MicrobenchReport> {
    run_clients(
        fs,
        config,
        AccessPattern::ReadDistinctFiles,
        |fs, client, cfg| {
            let path = client_file(client);
            let mut reader = fs.open(&path)?;
            let size = reader.len()?;
            let mut offset = 0u64;
            let mut bytes = 0u64;
            while offset < size {
                let n = cfg.record_size.min(size - offset);
                let data = reader.read_at(offset, n)?;
                bytes += data.len() as u64;
                offset += n;
            }
            Ok(bytes)
        },
    )
}

/// Run the "concurrent reads of non-overlapping parts of the same huge file"
/// pattern (E2). The shared file must have been created with
/// [`prepare_shared_file`].
pub fn read_shared_file(fs: &dyn DistFs, config: &MicrobenchConfig) -> MrResult<MicrobenchReport> {
    run_clients(
        fs,
        config,
        AccessPattern::ReadSharedFile,
        |fs, client, cfg| {
            let mut reader = fs.open(SHARED_FILE)?;
            let start = client as u64 * cfg.bytes_per_client;
            let end = start + cfg.bytes_per_client;
            let mut offset = start;
            let mut bytes = 0u64;
            while offset < end {
                let n = cfg.record_size.min(end - offset);
                let data = reader.read_at(offset, n)?;
                bytes += data.len() as u64;
                offset += n;
            }
            Ok(bytes)
        },
    )
}

/// Run the "concurrent writes to different files" pattern (E3).
pub fn write_distinct_files(
    fs: &dyn DistFs,
    config: &MicrobenchConfig,
) -> MrResult<MicrobenchReport> {
    run_clients(
        fs,
        config,
        AccessPattern::WriteDistinctFiles,
        |fs, client, cfg| {
            let path = format!("/microbench/output-{client:04}");
            if fs.exists(&path) {
                fs.delete(&path, false)?;
            }
            let mut writer = fs.create(&path)?;
            let record = vec![0xA5u8; cfg.record_size as usize];
            let mut written = 0u64;
            while written < cfg.bytes_per_client {
                let n = cfg.record_size.min(cfg.bytes_per_client - written) as usize;
                writer.write(&record[..n])?;
                written += n as u64;
            }
            writer.close()?;
            Ok(written)
        },
    )
}

/// Spawn one thread per client running `body`, measure wall-clock time, and
/// assemble the report. Each client's I/O originates from a distinct cluster
/// node (round-robin over the topology), mirroring the paper's deployment of
/// one client per machine.
fn run_clients<F>(
    fs: &dyn DistFs,
    config: &MicrobenchConfig,
    pattern: AccessPattern,
    body: F,
) -> MrResult<MicrobenchReport>
where
    F: Fn(&dyn DistFs, usize, &MicrobenchConfig) -> MrResult<u64> + Send + Sync,
{
    assert!(config.clients > 0, "at least one client is required");
    assert!(config.record_size > 0, "record size must be non-zero");
    let body = Arc::new(body);
    let start = Instant::now();
    let results: Vec<MrResult<(u64, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let body = Arc::clone(&body);
                let cfg = *config;
                // Each client runs "on" its own node so that placement
                // policies see distinct writers/readers.
                let local_fs = fs.on_node(pick_node(fs, client));
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let bytes = body(&*local_fs, client, &cfg)?;
                    Ok((bytes, t0.elapsed().as_secs_f64()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut total_bytes = 0u64;
    let mut per_client_bps = Vec::with_capacity(config.clients);
    for r in results {
        let (bytes, secs) = r?;
        total_bytes += bytes;
        per_client_bps.push(if secs > 0.0 { bytes as f64 / secs } else { 0.0 });
    }
    Ok(MicrobenchReport {
        pattern,
        clients: config.clients,
        total_bytes,
        elapsed_secs,
        per_client_bps,
    })
}

/// Round-robin a client index onto a node of the backend's topology. The
/// trait does not expose the topology, so clients are mapped onto a fixed
/// number of logical nodes; backends with fewer nodes wrap around (NodeId is
/// validated by `on_node` implementations through their own topology).
fn pick_node(fs: &dyn DistFs, client: usize) -> simcluster::NodeId {
    // The adapters' `on_node` panics on out-of-range ids, so probe downwards
    // from a generous guess. In practice deployments in this repo have at
    // least 4 nodes.
    let _ = fs;
    simcluster::NodeId((client % 4) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use hdfs_sim::{Hdfs, HdfsConfig};
    use mapreduce::fs::{BsfsFs, HdfsFs};

    fn bsfs_fs() -> BsfsFs {
        let storage = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(4)
                .with_page_size(8 * 1024),
        );
        BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::for_tests().with_block_size(8 * 1024),
        ))
    }

    fn hdfs_fs() -> HdfsFs {
        HdfsFs::new(Hdfs::new(
            HdfsConfig::for_tests()
                .with_chunk_size(8 * 1024)
                .with_datanodes(4),
        ))
    }

    fn tiny_config(clients: usize) -> MicrobenchConfig {
        MicrobenchConfig {
            clients,
            bytes_per_client: 64 * 1024,
            record_size: 4096,
        }
    }

    #[test]
    fn write_distinct_files_moves_all_bytes_on_both_backends() {
        for fs in [&bsfs_fs() as &dyn DistFs, &hdfs_fs() as &dyn DistFs] {
            let config = tiny_config(4);
            let report = write_distinct_files(fs, &config).unwrap();
            assert_eq!(report.pattern, AccessPattern::WriteDistinctFiles);
            assert_eq!(report.clients, 4);
            assert_eq!(report.total_bytes, 4 * 64 * 1024);
            assert!(report.aggregate_bps() > 0.0);
            assert_eq!(report.per_client_bps.len(), 4);
            assert!(report.mean_client_bps() > 0.0);
            // The output files really exist and have the right size.
            for i in 0..4 {
                assert_eq!(
                    fs.len(&format!("/microbench/output-{i:04}")).unwrap(),
                    64 * 1024
                );
            }
        }
    }

    #[test]
    fn read_distinct_files_reads_back_every_byte() {
        for fs in [&bsfs_fs() as &dyn DistFs, &hdfs_fs() as &dyn DistFs] {
            let config = tiny_config(3);
            prepare_distinct_files(fs, &config).unwrap();
            let report = read_distinct_files(fs, &config).unwrap();
            assert_eq!(report.total_bytes, 3 * 64 * 1024);
            assert_eq!(report.pattern, AccessPattern::ReadDistinctFiles);
        }
    }

    #[test]
    fn read_shared_file_covers_disjoint_ranges() {
        for fs in [&bsfs_fs() as &dyn DistFs, &hdfs_fs() as &dyn DistFs] {
            let config = tiny_config(4);
            prepare_shared_file(fs, &config).unwrap();
            assert_eq!(fs.len(SHARED_FILE).unwrap(), 4 * 64 * 1024);
            let report = read_shared_file(fs, &config).unwrap();
            assert_eq!(report.total_bytes, 4 * 64 * 1024);
        }
    }

    #[test]
    fn single_client_run_works() {
        let fs = bsfs_fs();
        let config = tiny_config(1);
        prepare_distinct_files(&fs, &config).unwrap();
        let report = read_distinct_files(&fs, &config).unwrap();
        assert_eq!(report.clients, 1);
        assert_eq!(report.per_client_bps.len(), 1);
    }

    #[test]
    fn rerunning_the_write_benchmark_overwrites_previous_outputs() {
        let fs = bsfs_fs();
        let config = tiny_config(2);
        write_distinct_files(&fs, &config).unwrap();
        // Second run must not fail on already-existing output files.
        let report = write_distinct_files(&fs, &config).unwrap();
        assert_eq!(report.total_bytes, 2 * 64 * 1024);
    }
}
