//! A slow-node [`DistFs`] wrapper for injecting per-task delays.
//!
//! Straggler experiments need a way to make *one specific task attempt* (or
//! every operation of one node) slow without touching the framework. This
//! wrapper intercepts `create`/`open` calls and, when a [`DelayRule`]
//! matches, sleeps on an injected [`Clock`] before delegating — under a
//! [`simcluster::clock::SimClock`] the delay is purely virtual, so a test
//! can inject a "60-second" straggler that costs no real time.
//!
//! Per-task targeting exploits the output-commit protocol: every attempt
//! writes under `_temporary/attempt-<task>-<attempt>`, so a rule matching
//! `"attempt-map-00003-0"` delays exactly the first attempt of map task 3,
//! wherever it is scheduled — retries and speculative clones get fresh
//! attempt numbers and stay fast. Rules can also be restricted to handles
//! bound to one node ([`DelayRule::on_node`]), modelling a slow machine.

use mapreduce::fs::{BlockHint, DistFs, FileReader, FileWriter};
use mapreduce::MrResult;
use simcluster::clock::Clock;
use simcluster::NodeId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which filesystem operation a [`DelayRule`] intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayOp {
    /// Delay `DistFs::create` (covers task output: spills, part files and
    /// attempt scratch).
    Create,
    /// Delay `DistFs::open` (covers input splits and shuffle segment
    /// fetches).
    Open,
}

/// One injection rule: sleep `delay` on the wrapper's clock whenever a
/// matching operation touches a path *ending with* the rule's suffix
/// (optionally only from handles bound to one node, and only a limited
/// number of times). Suffix matching keeps attempt targeting exact:
/// attempt numbers are unpadded, so a substring match for `...-1` would
/// also fire on attempts 10-19.
pub struct DelayRule {
    op: DelayOp,
    path_suffix: String,
    delay: Duration,
    node: Option<NodeId>,
    remaining: AtomicUsize,
}

impl DelayRule {
    /// Delay `create` calls on paths ending with `path_suffix`.
    pub fn create(path_suffix: impl Into<String>, delay: Duration) -> Self {
        DelayRule {
            op: DelayOp::Create,
            path_suffix: path_suffix.into(),
            delay,
            node: None,
            remaining: AtomicUsize::new(usize::MAX),
        }
    }

    /// Delay `open` calls on paths ending with `path_suffix`.
    pub fn open(path_suffix: impl Into<String>, delay: Duration) -> Self {
        DelayRule {
            op: DelayOp::Open,
            path_suffix: path_suffix.into(),
            delay,
            node: None,
            remaining: AtomicUsize::new(usize::MAX),
        }
    }

    /// Restrict the rule to handles bound (via `on_node`) to `node`.
    pub fn on_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Fire at most `times` times (default: unlimited).
    pub fn times(mut self, times: usize) -> Self {
        self.remaining = AtomicUsize::new(times);
        self
    }

    /// Does this rule fire for `op` on `path` from a handle bound to
    /// `node`? Consumes one application when it does.
    fn take(&self, op: DelayOp, path: &str, node: Option<NodeId>) -> bool {
        if self.op != op || !path.ends_with(&self.path_suffix) {
            return false;
        }
        if let Some(rule_node) = self.node {
            if node != Some(rule_node) {
                return false;
            }
        }
        self.remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// The delay-injecting [`DistFs`] wrapper. Everything passes through to the
/// wrapped backend unchanged except matching `create`/`open` calls, which
/// first sleep on the injected clock.
pub struct SlowFs {
    inner: Box<dyn DistFs>,
    clock: Arc<dyn Clock>,
    rules: Arc<Vec<DelayRule>>,
    node: Option<NodeId>,
}

impl SlowFs {
    /// Wrap `inner`, sleeping on `clock` whenever one of `rules` matches.
    pub fn new(inner: Box<dyn DistFs>, clock: Arc<dyn Clock>, rules: Vec<DelayRule>) -> Self {
        SlowFs {
            inner,
            clock,
            rules: Arc::new(rules),
            node: None,
        }
    }

    fn apply(&self, op: DelayOp, path: &str) {
        for rule in self.rules.iter() {
            if rule.take(op, path, self.node) {
                self.clock.sleep(rule.delay);
            }
        }
    }
}

impl DistFs for SlowFs {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn create(&self, path: &str) -> MrResult<Box<dyn FileWriter>> {
        self.apply(DelayOp::Create, path);
        self.inner.create(path)
    }
    fn open(&self, path: &str) -> MrResult<Box<dyn FileReader>> {
        self.apply(DelayOp::Open, path);
        self.inner.open(path)
    }
    fn len(&self, path: &str) -> MrResult<u64> {
        self.inner.len(path)
    }
    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }
    fn list(&self, path: &str) -> MrResult<Vec<String>> {
        self.inner.list(path)
    }
    fn mkdirs(&self, path: &str) -> MrResult<()> {
        self.inner.mkdirs(path)
    }
    fn delete(&self, path: &str, recursive: bool) -> MrResult<()> {
        self.inner.delete(path, recursive)
    }
    fn rename(&self, from: &str, to: &str) -> MrResult<()> {
        self.inner.rename(from, to)
    }
    fn locate(&self, path: &str, offset: u64, len: u64) -> MrResult<Vec<BlockHint>> {
        self.inner.locate(path, offset, len)
    }
    fn on_node(&self, node: NodeId) -> Box<dyn DistFs> {
        Box::new(SlowFs {
            inner: self.inner.on_node(node),
            clock: Arc::clone(&self.clock),
            rules: Arc::clone(&self.rules),
            node: Some(node),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use mapreduce::fs::BsfsFs;
    use simcluster::clock::SimClock;

    fn base_fs() -> Box<dyn DistFs> {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        Box::new(BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests())))
    }

    #[test]
    fn matching_create_sleeps_on_the_virtual_clock() {
        let clock = Arc::new(SimClock::new());
        let fs = SlowFs::new(
            base_fs(),
            clock.clone(),
            vec![DelayRule::create("attempt-map-00000-0", Duration::from_secs(30)).times(1)],
        );
        let elapsed = clock.drive(Duration::from_secs(10), || {
            let before = clock.now();
            fs.write_file("/out/_temporary/attempt-map-00000-0", b"spill")
                .unwrap();
            // Suffix matching: attempt 1 and "attempt 0 of task 00000-0x"
            // style near-misses are free...
            fs.write_file("/out/_temporary/attempt-map-00000-1", b"clone")
                .unwrap();
            fs.write_file("/out/_temporary/attempt-map-00000-0x", b"again")
                .unwrap();
            // ...and so is a second matching path once times(1) is spent.
            fs.write_file("/other/attempt-map-00000-0", b"spent")
                .unwrap();
            clock.now().saturating_sub(before)
        });
        assert!(
            elapsed >= Duration::from_secs(30),
            "the first create must cost 30 virtual seconds, took {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(60), "only one rule firing");
        assert_eq!(
            &fs.read_file("/out/_temporary/attempt-map-00000-0").unwrap()[..],
            b"spill"
        );
    }

    #[test]
    fn node_scoped_rules_only_fire_on_that_nodes_handles() {
        let clock = Arc::new(SimClock::new());
        let fs = SlowFs::new(
            base_fs(),
            clock.clone(),
            vec![DelayRule::open("/data", Duration::from_secs(5)).on_node(NodeId(2))],
        );
        fs.write_file("/data", b"payload").unwrap();
        // The root handle and other nodes are unaffected: no pump is
        // running, so a sleep would hang — completing at all proves no rule
        // fired.
        assert_eq!(&fs.read_file("/data").unwrap()[..], b"payload");
        let other = fs.on_node(NodeId(1));
        assert_eq!(&other.read_file("/data").unwrap()[..], b"payload");
        assert_eq!(clock.now_micros(), 0);

        let slow = fs.on_node(NodeId(2));
        let elapsed = clock.drive(Duration::from_secs(5), || {
            let before = clock.now();
            assert_eq!(&slow.read_file("/data").unwrap()[..], b"payload");
            clock.now().saturating_sub(before)
        });
        assert!(elapsed >= Duration::from_secs(5));
    }

    #[test]
    fn wrapper_delegates_the_full_contract() {
        let clock = Arc::new(SimClock::new());
        let fs = SlowFs::new(base_fs(), clock, Vec::new());
        assert_eq!(fs.name(), "BSFS");
        fs.mkdirs("/d").unwrap();
        fs.write_file("/d/f", b"abc").unwrap();
        assert!(fs.exists("/d/f"));
        assert_eq!(fs.len("/d/f").unwrap(), 3);
        assert_eq!(fs.list("/d").unwrap(), vec!["/d/f"]);
        assert!(!fs.locate("/d/f", 0, 3).unwrap().is_empty());
        fs.rename("/d/f", "/d/g").unwrap();
        assert_eq!(&fs.read_file("/d/g").unwrap()[..], b"abc");
        fs.delete("/d", true).unwrap();
        assert!(!fs.exists("/d/g"));
    }
}
