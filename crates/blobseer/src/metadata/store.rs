//! Typed wrapper around the metadata DHT.

use crate::error::{BlobResult, BlobSeerError};
use crate::metadata::cache::MetadataCache;
use crate::metadata::{NodeKey, TreeNode};
use bytes::Bytes;
use dht::{Dht, DhtConfig, DhtError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing metadata traffic (useful for the metadata-overhead
/// ablation and for sanity checks in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Tree nodes written.
    pub nodes_written: u64,
    /// Tree nodes requested by readers (cache hits included): what the same
    /// traffic would cost in DHT `get`s with neither batching nor caching.
    pub nodes_read: u64,
    /// Batched publications ([`MetadataStore::put_nodes`] calls): one per
    /// committed version on the write path, regardless of tree size.
    pub batch_flushes: u64,
    /// Batched resolutions ([`MetadataStore::get_nodes`] calls): one per
    /// tree level on the lookup path, regardless of frontier width.
    pub batch_lookups: u64,
    /// Client-to-metadata-node round trips performed by the underlying DHT
    /// (reads and writes combined).
    pub dht_round_trips: u64,
    /// The write-side subset of `dht_round_trips` — the like-for-like figure
    /// to compare against one-put-per-node publication.
    pub dht_write_round_trips: u64,
    /// The read-side subset of `dht_round_trips` — the like-for-like figure
    /// to compare against one-get-per-node lookups (`nodes_read`).
    pub dht_read_round_trips: u64,
    /// Node lookups answered by the client-side immutable-node cache.
    pub cache_hits: u64,
    /// Node lookups that fell through the cache to the DHT.
    pub cache_misses: u64,
    /// Nodes fetched from the DHT speculatively by read-ahead (piggybacked
    /// on a demand batch's `get_many` round trips).
    pub prefetched_nodes: u64,
    /// Read-ahead nodes a later demand lookup actually used.
    pub prefetch_hits: u64,
    /// Read-ahead nodes evicted from the cache before any demand touch.
    pub prefetch_wasted: u64,
}

impl MetadataStats {
    /// Fraction of cached node lookups answered by the cache (0 when the
    /// cache is disabled or idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The metadata store: segment-tree nodes in a DHT of metadata providers,
/// optionally fronted by a client-side cache of the (immutable) nodes.
pub struct MetadataStore {
    dht: Arc<Dht>,
    cache: Option<MetadataCache>,
    nodes_written: AtomicU64,
    nodes_read: AtomicU64,
    batch_flushes: AtomicU64,
    batch_lookups: AtomicU64,
    prefetched_nodes: AtomicU64,
}

impl MetadataStore {
    /// Create a store with a fresh DHT of `metadata_providers` nodes.
    pub fn new(metadata_providers: usize, replication: usize) -> Self {
        let dht = Dht::new(DhtConfig {
            nodes: metadata_providers,
            replication,
            virtual_nodes: 64,
        });
        Self::with_dht(Arc::new(dht))
    }

    /// Wrap an existing DHT (lets tests inject failures from outside).
    pub fn with_dht(dht: Arc<Dht>) -> Self {
        MetadataStore {
            dht,
            cache: None,
            nodes_written: AtomicU64::new(0),
            nodes_read: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            batch_lookups: AtomicU64::new(0),
            prefetched_nodes: AtomicU64::new(0),
        }
    }

    /// Builder-style: front the store with a client-side cache of up to
    /// `capacity` tree nodes. Nodes are immutable once published, so the
    /// cache needs no invalidation; the write path pre-warms it when flushing
    /// a version's node batch.
    pub fn with_node_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(MetadataCache::new(capacity));
        self
    }

    /// Is a client-side node cache attached?
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Drop every cached node (counters survive). Benchmarks use this to
    /// model a cold reader: a client on a node that never saw the writes
    /// starts with an empty cache even though the process shares one store.
    pub fn drop_cached_nodes(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Access the underlying DHT (failure injection in tests).
    pub fn dht(&self) -> &Arc<Dht> {
        &self.dht
    }

    /// Persist a tree node.
    pub fn put_node(&self, key: NodeKey, node: &TreeNode) -> BlobResult<()> {
        self.nodes_written.fetch_add(1, Ordering::Relaxed);
        self.dht.put(&key.dht_key(), Bytes::from(node.encode()))?;
        if let Some(cache) = &self.cache {
            cache.insert(key, node.clone());
        }
        Ok(())
    }

    /// Persist a batch of tree nodes in one DHT pass: keys are grouped by
    /// responsible metadata provider, so each provider is contacted once per
    /// batch instead of once per node. The write path publishes a whole
    /// version's segment-tree delta through a single call.
    pub fn put_nodes(&self, nodes: &[(NodeKey, TreeNode)]) -> BlobResult<()> {
        if nodes.is_empty() {
            return Ok(());
        }
        self.nodes_written
            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        let entries: Vec<(Vec<u8>, Bytes)> = nodes
            .iter()
            .map(|(key, node)| (key.dht_key(), Bytes::from(node.encode())))
            .collect();
        self.dht.put_many(&entries)?;
        // Pre-warm the cache with the freshly published tree: the writer (and
        // every reader behind the same client) reads its own version back for
        // free, which covers the common produce-then-consume pattern.
        if let Some(cache) = &self.cache {
            for (key, node) in nodes {
                cache.insert(*key, node.clone());
            }
        }
        Ok(())
    }

    /// Fetch a tree node. A missing node is an error at this layer: callers
    /// pass `None` keys for holes, so a dangling key means corruption or a
    /// dead metadata provider quorum.
    pub fn get_node(&self, key: NodeKey) -> BlobResult<TreeNode> {
        self.nodes_read.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            if let Some(node) = cache.get(&key) {
                return Ok(node);
            }
        }
        let raw = self.dht.get(&key.dht_key())?;
        let node = Self::decode_node(key, &raw)?;
        if let Some(cache) = &self.cache {
            cache.insert(key, node.clone());
        }
        Ok(node)
    }

    /// Resolve a batch of tree nodes in one DHT pass: cache hits are peeled
    /// off first, then the misses are grouped by responsible metadata
    /// provider through [`Dht::get_many`], so each provider is contacted once
    /// per batch instead of once per node. The frontier-batched tree descent
    /// ([`crate::metadata::segment_tree::lookup_range`]) resolves one whole
    /// tree level through a single call.
    ///
    /// Returns the nodes in request order. Any node that no live replica
    /// holds fails the whole batch, matching [`MetadataStore::get_node`]'s
    /// contract that a dangling key is corruption, not a hole.
    pub fn get_nodes(&self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>> {
        Ok(self
            .get_nodes_readahead(keys, keys.len())?
            .into_iter()
            .map(|n| n.expect("demand slots are always resolved"))
            .collect())
    }

    /// [`MetadataStore::get_nodes`] with a read-ahead tail: the first
    /// `demand` keys are demanded by the caller, the rest are speculative
    /// prefetches riding in the same `get_many` round trips. Prefetched
    /// nodes are cached as prefetches (so their later use or eviction is
    /// attributed to read-ahead) and only the demand keys count toward
    /// `nodes_read`.
    ///
    /// Prefetch strictly piggybacks: if every demand key is already cached,
    /// the batch issues no DHT traffic at all and the prefetch-only misses
    /// come back as `None` — read-ahead must never add round trips a demand
    /// read wouldn't have paid anyway. Demand slots are always `Some`.
    pub fn get_nodes_readahead(
        &self,
        keys: &[NodeKey],
        demand: usize,
    ) -> BlobResult<Vec<Option<TreeNode>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        debug_assert!(demand <= keys.len());
        self.nodes_read
            .fetch_add(demand.min(keys.len()) as u64, Ordering::Relaxed);
        self.batch_lookups.fetch_add(1, Ordering::Relaxed);
        let mut out: Vec<Option<TreeNode>> = vec![None; keys.len()];
        let mut missing: Vec<usize> = Vec::new();
        match &self.cache {
            Some(cache) => {
                for (i, key) in keys.iter().enumerate() {
                    match cache.get(key) {
                        Some(node) => out[i] = Some(node),
                        None => missing.push(i),
                    }
                }
            }
            None => missing.extend(0..keys.len()),
        }
        if missing.iter().all(|&i| i >= demand) {
            // No demand miss to pay for the round trip: drop the speculative
            // tail instead of turning the prefetch into its own DHT batch.
            missing.clear();
        }
        if !missing.is_empty() {
            self.prefetched_nodes.fetch_add(
                missing.iter().filter(|&&i| i >= demand).count() as u64,
                Ordering::Relaxed,
            );
            let dht_keys: Vec<Vec<u8>> = missing.iter().map(|&i| keys[i].dht_key()).collect();
            let fetched = self.dht.get_many(&dht_keys)?;
            for (&i, raw) in missing.iter().zip(fetched) {
                let raw = raw.ok_or_else(|| {
                    BlobSeerError::Metadata(DhtError::NotFound {
                        key: String::from_utf8_lossy(&keys[i].dht_key()).into_owned(),
                    })
                })?;
                let node = Self::decode_node(keys[i], &raw)?;
                if let Some(cache) = &self.cache {
                    if i >= demand {
                        cache.insert_prefetched(keys[i], node.clone());
                    } else {
                        cache.insert(keys[i], node.clone());
                    }
                }
                out[i] = Some(node);
            }
        }
        Ok(out)
    }

    fn decode_node(key: NodeKey, raw: &[u8]) -> BlobResult<TreeNode> {
        TreeNode::decode(raw).ok_or_else(|| {
            BlobSeerError::Metadata(DhtError::NotFound {
                key: format!("undecodable metadata node {key:?}"),
            })
        })
    }

    /// Remove a tree node (used by version garbage collection).
    pub fn remove_node(&self, key: NodeKey) -> BlobResult<bool> {
        Ok(self.dht.remove(&key.dht_key())?)
    }

    /// Traffic counters.
    pub fn stats(&self) -> MetadataStats {
        let cache = self
            .cache
            .as_ref()
            .map(MetadataCache::stats)
            .unwrap_or_default();
        MetadataStats {
            nodes_written: self.nodes_written.load(Ordering::Relaxed),
            nodes_read: self.nodes_read.load(Ordering::Relaxed),
            batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
            batch_lookups: self.batch_lookups.load(Ordering::Relaxed),
            dht_round_trips: self.dht.round_trips(),
            dht_write_round_trips: self.dht.write_round_trips(),
            dht_read_round_trips: self.dht.read_round_trips(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            prefetched_nodes: self.prefetched_nodes.load(Ordering::Relaxed),
            prefetch_hits: cache.prefetch_hits,
            prefetch_wasted: cache.prefetch_wasted,
        }
    }
}

/// Self-tuning read-ahead window, driven by the prefetch outcome counters.
///
/// The controller follows the classic AIMD shape: a read that wasted
/// prefetched nodes (they were evicted untouched, so the window overshot the
/// cache or the access pattern) halves the window; a read whose window was
/// all profit (new prefetch hits, no new waste) grows it by one page, up to
/// the configured maximum. Windows with neither signal — e.g. fully cached
/// re-reads that never prefetch — leave it unchanged.
///
/// `observe` compares monotonic totals from [`MetadataStats`] against the
/// last snapshot, so callers just feed it `stats()` after each read.
pub struct AdaptiveReadahead {
    window: AtomicU64,
    max: u64,
    last_wasted: AtomicU64,
    last_hits: AtomicU64,
}

impl AdaptiveReadahead {
    /// Start at the configured maximum (the previous fixed-knob behaviour)
    /// and adapt from there.
    pub fn new(max_window: usize) -> Self {
        AdaptiveReadahead {
            window: AtomicU64::new(max_window as u64),
            max: max_window as u64,
            last_wasted: AtomicU64::new(0),
            last_hits: AtomicU64::new(0),
        }
    }

    /// The window (in pages) the next read should use.
    pub fn window(&self) -> usize {
        self.window.load(Ordering::Relaxed) as usize
    }

    /// Feed the controller the current counter totals; returns the window
    /// chosen for the next read.
    pub fn observe(&self, stats: &MetadataStats) -> usize {
        let wasted_delta = stats.prefetch_wasted.saturating_sub(
            self.last_wasted
                .swap(stats.prefetch_wasted, Ordering::Relaxed),
        );
        let hit_delta = stats
            .prefetch_hits
            .saturating_sub(self.last_hits.swap(stats.prefetch_hits, Ordering::Relaxed));
        let current = self.window.load(Ordering::Relaxed);
        let next = if wasted_delta > 0 {
            (current / 2).max(1)
        } else if hit_delta > 0 {
            (current + 1).min(self.max)
        } else {
            current
        };
        self.window.store(next, Ordering::Relaxed);
        next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlobId, ProviderId, Version};

    fn key(v: u64, o: u64, s: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            offset: o,
            span: s,
        }
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = MetadataStore::new(3, 2);
        let leaf = TreeNode::Leaf {
            page: 5,
            providers: vec![ProviderId(2)],
        };
        store.put_node(key(1, 5, 1), &leaf).unwrap();
        let got = store.get_node(key(1, 5, 1)).unwrap();
        assert_eq!(got, leaf);
        let stats = store.stats();
        assert_eq!(stats.nodes_written, 1);
        assert_eq!(stats.nodes_read, 1);
    }

    #[test]
    fn put_nodes_batch_matches_single_puts_with_fewer_round_trips() {
        let batched = MetadataStore::new(3, 2);
        let single = MetadataStore::new(3, 2);
        let nodes: Vec<(NodeKey, TreeNode)> = (0..16)
            .map(|i| {
                (
                    key(1, i, 1),
                    TreeNode::Leaf {
                        page: i,
                        providers: vec![ProviderId(i as u32)],
                    },
                )
            })
            .collect();
        batched.put_nodes(&nodes).unwrap();
        for (k, n) in &nodes {
            single.put_node(*k, n).unwrap();
        }
        // The batch contacted each of the 3 metadata providers at most once,
        // while single puts paid one round trip per node-replica.
        let b = batched.stats();
        let s = single.stats();
        assert_eq!(b.nodes_written, 16);
        assert_eq!(b.batch_flushes, 1);
        assert!(b.dht_round_trips <= 3);
        assert_eq!(s.dht_round_trips, 32);
        // And both stores hold identical contents.
        for (k, n) in &nodes {
            assert_eq!(&batched.get_node(*k).unwrap(), n);
            assert_eq!(&single.get_node(*k).unwrap(), n);
        }
        // Empty batches are free.
        batched.put_nodes(&[]).unwrap();
        assert_eq!(batched.stats().batch_flushes, 1);
    }

    #[test]
    fn missing_node_is_an_error() {
        let store = MetadataStore::new(2, 1);
        assert!(store.get_node(key(9, 0, 1)).is_err());
    }

    #[test]
    fn remove_node() {
        let store = MetadataStore::new(2, 1);
        let n = TreeNode::Inner {
            left: None,
            right: None,
        };
        store.put_node(key(1, 0, 2), &n).unwrap();
        assert!(store.remove_node(key(1, 0, 2)).unwrap());
        assert!(store.get_node(key(1, 0, 2)).is_err());
        assert!(!store.remove_node(key(1, 0, 2)).unwrap());
    }

    #[test]
    fn get_nodes_matches_per_node_gets_with_fewer_round_trips() {
        let store = MetadataStore::new(4, 2);
        let nodes: Vec<(NodeKey, TreeNode)> = (0..32)
            .map(|i| {
                (
                    key(1, i, 1),
                    TreeNode::Leaf {
                        page: i,
                        providers: vec![ProviderId(i as u32)],
                    },
                )
            })
            .collect();
        store.put_nodes(&nodes).unwrap();
        let keys: Vec<NodeKey> = nodes.iter().map(|(k, _)| *k).collect();

        let before = store.stats();
        let got = store.get_nodes(&keys).unwrap();
        let after = store.stats();
        for ((_, expected), node) in nodes.iter().zip(&got) {
            assert_eq!(node, expected);
        }
        // One batch resolves 32 nodes by contacting each of the 4 metadata
        // providers at most once; per-node gets would pay 32 round trips.
        assert_eq!(after.nodes_read - before.nodes_read, 32);
        assert_eq!(after.batch_lookups - before.batch_lookups, 1);
        assert!(after.dht_read_round_trips - before.dht_read_round_trips <= 4);
        // Empty batches are free.
        assert!(store.get_nodes(&[]).unwrap().is_empty());
        assert_eq!(store.stats().batch_lookups, after.batch_lookups);
    }

    #[test]
    fn get_nodes_fails_on_a_dangling_key() {
        let store = MetadataStore::new(3, 1);
        store
            .put_node(
                key(1, 0, 1),
                &TreeNode::Leaf {
                    page: 0,
                    providers: vec![],
                },
            )
            .unwrap();
        assert!(store.get_nodes(&[key(1, 0, 1), key(9, 9, 1)]).is_err());
    }

    #[test]
    fn node_cache_prewarms_from_batch_publication() {
        let store = MetadataStore::new(3, 2).with_node_cache(256);
        assert!(store.cache_enabled());
        let nodes: Vec<(NodeKey, TreeNode)> = (0..16)
            .map(|i| {
                (
                    key(1, i, 1),
                    TreeNode::Leaf {
                        page: i,
                        providers: vec![ProviderId(7)],
                    },
                )
            })
            .collect();
        store.put_nodes(&nodes).unwrap();
        let read_rts_after_publish = store.stats().dht_read_round_trips;

        // Reading the freshly published nodes back costs zero DHT reads.
        let keys: Vec<NodeKey> = nodes.iter().map(|(k, _)| *k).collect();
        let got = store.get_nodes(&keys).unwrap();
        assert_eq!(got.len(), 16);
        for k in &keys {
            store.get_node(*k).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.dht_read_round_trips, read_rts_after_publish);
        assert_eq!(stats.cache_hits, 32);
        assert_eq!(stats.cache_misses, 0);
        assert!((stats.cache_hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_cache_fills_on_demand_and_serves_across_dht_failures() {
        // Two stores over the same DHT: the writer has no cache, the reader
        // fills its own cache on first access.
        let writer = MetadataStore::new(4, 1);
        let reader = MetadataStore::with_dht(Arc::clone(writer.dht())).with_node_cache(64);
        let leaf = TreeNode::Leaf {
            page: 3,
            providers: vec![ProviderId(1)],
        };
        writer.put_node(key(1, 3, 1), &leaf).unwrap();
        assert_eq!(reader.get_node(key(1, 3, 1)).unwrap(), leaf);
        assert_eq!(reader.stats().cache_misses, 1);
        // With replication 1 a dead replica would make the node unreadable —
        // unless the cache already holds it (immutable, so still correct).
        for id in writer.dht().node_ids() {
            writer.dht().kill(id).unwrap();
        }
        assert_eq!(reader.get_node(key(1, 3, 1)).unwrap(), leaf);
        assert_eq!(reader.stats().cache_hits, 1);
        assert!(writer.get_node(key(1, 3, 1)).is_err());
    }

    #[test]
    fn metadata_survives_one_dht_node_failure() {
        let store = MetadataStore::new(4, 2);
        let leaf = TreeNode::Leaf {
            page: 0,
            providers: vec![ProviderId(0)],
        };
        store.put_node(key(1, 0, 1), &leaf).unwrap();
        // Kill one of the replicas of that key.
        let replicas = store.dht().replicas_for(&key(1, 0, 1).dht_key());
        store.dht().kill(replicas[0]).unwrap();
        assert_eq!(store.get_node(key(1, 0, 1)).unwrap(), leaf);
    }

    fn stats_with(prefetch_hits: u64, prefetch_wasted: u64) -> MetadataStats {
        MetadataStats {
            prefetch_hits,
            prefetch_wasted,
            ..MetadataStats::default()
        }
    }

    #[test]
    fn adaptive_readahead_halves_on_waste() {
        let ctl = AdaptiveReadahead::new(16);
        assert_eq!(ctl.window(), 16);
        // A read that wasted prefetched nodes halves the window...
        assert_eq!(ctl.observe(&stats_with(0, 3)), 8);
        // ...repeatedly, down to the floor of one page.
        assert_eq!(ctl.observe(&stats_with(0, 5)), 4);
        assert_eq!(ctl.observe(&stats_with(0, 9)), 2);
        assert_eq!(ctl.observe(&stats_with(0, 10)), 1);
        assert_eq!(ctl.observe(&stats_with(0, 11)), 1);
    }

    #[test]
    fn adaptive_readahead_grows_additively_on_all_hit_windows() {
        let ctl = AdaptiveReadahead::new(16);
        // Shrink first so there is room to grow back.
        assert_eq!(ctl.observe(&stats_with(0, 4)), 8);
        // All-hit windows (new hits, no new waste) grow by one page each...
        assert_eq!(ctl.observe(&stats_with(2, 4)), 9);
        assert_eq!(ctl.observe(&stats_with(5, 4)), 10);
        // ...capped at the configured maximum.
        let mut hits = 5;
        for _ in 0..10 {
            hits += 1;
            ctl.observe(&stats_with(hits, 4));
        }
        assert_eq!(ctl.window(), 16);
    }

    #[test]
    fn adaptive_readahead_holds_steady_without_prefetch_signals() {
        let ctl = AdaptiveReadahead::new(8);
        ctl.observe(&stats_with(0, 1)); // -> 4
                                        // Fully cached re-reads produce neither hits nor waste: no change.
        assert_eq!(ctl.observe(&stats_with(0, 1)), 4);
        assert_eq!(ctl.observe(&stats_with(0, 1)), 4);
    }

    #[test]
    fn adaptive_readahead_waste_beats_hits_in_a_mixed_window() {
        let ctl = AdaptiveReadahead::new(8);
        // A window with both new hits and new waste still shrinks: waste
        // means the tail of the window overshot.
        assert_eq!(ctl.observe(&stats_with(3, 2)), 4);
    }
}
