//! Typed wrapper around the metadata DHT.

use crate::error::{BlobResult, BlobSeerError};
use crate::metadata::{NodeKey, TreeNode};
use bytes::Bytes;
use dht::{Dht, DhtConfig, DhtError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing metadata traffic (useful for the metadata-overhead
/// ablation and for sanity checks in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Tree nodes written.
    pub nodes_written: u64,
    /// Tree nodes read.
    pub nodes_read: u64,
    /// Batched publications ([`MetadataStore::put_nodes`] calls): one per
    /// committed version on the write path, regardless of tree size.
    pub batch_flushes: u64,
    /// Client-to-metadata-node round trips performed by the underlying DHT
    /// (reads and writes combined).
    pub dht_round_trips: u64,
    /// The write-side subset of `dht_round_trips` — the like-for-like figure
    /// to compare against one-put-per-node publication.
    pub dht_write_round_trips: u64,
}

/// The metadata store: segment-tree nodes in a DHT of metadata providers.
pub struct MetadataStore {
    dht: Arc<Dht>,
    nodes_written: AtomicU64,
    nodes_read: AtomicU64,
    batch_flushes: AtomicU64,
}

impl MetadataStore {
    /// Create a store with a fresh DHT of `metadata_providers` nodes.
    pub fn new(metadata_providers: usize, replication: usize) -> Self {
        let dht = Dht::new(DhtConfig {
            nodes: metadata_providers,
            replication,
            virtual_nodes: 64,
        });
        Self::with_dht(Arc::new(dht))
    }

    /// Wrap an existing DHT (lets tests inject failures from outside).
    pub fn with_dht(dht: Arc<Dht>) -> Self {
        MetadataStore {
            dht,
            nodes_written: AtomicU64::new(0),
            nodes_read: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
        }
    }

    /// Access the underlying DHT (failure injection in tests).
    pub fn dht(&self) -> &Arc<Dht> {
        &self.dht
    }

    /// Persist a tree node.
    pub fn put_node(&self, key: NodeKey, node: &TreeNode) -> BlobResult<()> {
        self.nodes_written.fetch_add(1, Ordering::Relaxed);
        self.dht.put(&key.dht_key(), Bytes::from(node.encode()))?;
        Ok(())
    }

    /// Persist a batch of tree nodes in one DHT pass: keys are grouped by
    /// responsible metadata provider, so each provider is contacted once per
    /// batch instead of once per node. The write path publishes a whole
    /// version's segment-tree delta through a single call.
    pub fn put_nodes(&self, nodes: &[(NodeKey, TreeNode)]) -> BlobResult<()> {
        if nodes.is_empty() {
            return Ok(());
        }
        self.nodes_written
            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        let entries: Vec<(Vec<u8>, Bytes)> = nodes
            .iter()
            .map(|(key, node)| (key.dht_key(), Bytes::from(node.encode())))
            .collect();
        self.dht.put_many(&entries)?;
        Ok(())
    }

    /// Fetch a tree node. A missing node is an error at this layer: callers
    /// pass `None` keys for holes, so a dangling key means corruption or a
    /// dead metadata provider quorum.
    pub fn get_node(&self, key: NodeKey) -> BlobResult<TreeNode> {
        self.nodes_read.fetch_add(1, Ordering::Relaxed);
        let raw = self.dht.get(&key.dht_key())?;
        TreeNode::decode(&raw).ok_or_else(|| {
            BlobSeerError::Metadata(DhtError::NotFound {
                key: format!("undecodable metadata node {key:?}"),
            })
        })
    }

    /// Remove a tree node (used by version garbage collection).
    pub fn remove_node(&self, key: NodeKey) -> BlobResult<bool> {
        Ok(self.dht.remove(&key.dht_key())?)
    }

    /// Traffic counters.
    pub fn stats(&self) -> MetadataStats {
        MetadataStats {
            nodes_written: self.nodes_written.load(Ordering::Relaxed),
            nodes_read: self.nodes_read.load(Ordering::Relaxed),
            batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
            dht_round_trips: self.dht.round_trips(),
            dht_write_round_trips: self.dht.write_round_trips(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlobId, ProviderId, Version};

    fn key(v: u64, o: u64, s: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            offset: o,
            span: s,
        }
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let store = MetadataStore::new(3, 2);
        let leaf = TreeNode::Leaf {
            page: 5,
            providers: vec![ProviderId(2)],
        };
        store.put_node(key(1, 5, 1), &leaf).unwrap();
        let got = store.get_node(key(1, 5, 1)).unwrap();
        assert_eq!(got, leaf);
        let stats = store.stats();
        assert_eq!(stats.nodes_written, 1);
        assert_eq!(stats.nodes_read, 1);
    }

    #[test]
    fn put_nodes_batch_matches_single_puts_with_fewer_round_trips() {
        let batched = MetadataStore::new(3, 2);
        let single = MetadataStore::new(3, 2);
        let nodes: Vec<(NodeKey, TreeNode)> = (0..16)
            .map(|i| {
                (
                    key(1, i, 1),
                    TreeNode::Leaf {
                        page: i,
                        providers: vec![ProviderId(i as u32)],
                    },
                )
            })
            .collect();
        batched.put_nodes(&nodes).unwrap();
        for (k, n) in &nodes {
            single.put_node(*k, n).unwrap();
        }
        // The batch contacted each of the 3 metadata providers at most once,
        // while single puts paid one round trip per node-replica.
        let b = batched.stats();
        let s = single.stats();
        assert_eq!(b.nodes_written, 16);
        assert_eq!(b.batch_flushes, 1);
        assert!(b.dht_round_trips <= 3);
        assert_eq!(s.dht_round_trips, 32);
        // And both stores hold identical contents.
        for (k, n) in &nodes {
            assert_eq!(&batched.get_node(*k).unwrap(), n);
            assert_eq!(&single.get_node(*k).unwrap(), n);
        }
        // Empty batches are free.
        batched.put_nodes(&[]).unwrap();
        assert_eq!(batched.stats().batch_flushes, 1);
    }

    #[test]
    fn missing_node_is_an_error() {
        let store = MetadataStore::new(2, 1);
        assert!(store.get_node(key(9, 0, 1)).is_err());
    }

    #[test]
    fn remove_node() {
        let store = MetadataStore::new(2, 1);
        let n = TreeNode::Inner {
            left: None,
            right: None,
        };
        store.put_node(key(1, 0, 2), &n).unwrap();
        assert!(store.remove_node(key(1, 0, 2)).unwrap());
        assert!(store.get_node(key(1, 0, 2)).is_err());
        assert!(!store.remove_node(key(1, 0, 2)).unwrap());
    }

    #[test]
    fn metadata_survives_one_dht_node_failure() {
        let store = MetadataStore::new(4, 2);
        let leaf = TreeNode::Leaf {
            page: 0,
            providers: vec![ProviderId(0)],
        };
        store.put_node(key(1, 0, 1), &leaf).unwrap();
        // Kill one of the replicas of that key.
        let replicas = store.dht().replicas_for(&key(1, 0, 1).dht_key());
        store.dht().kill(replicas[0]).unwrap();
        assert_eq!(store.get_node(key(1, 0, 1)).unwrap(), leaf);
    }
}
