//! E11 — charging the wire: the same workloads as E1/F1/E6, but with every
//! cross-node exchange routed through a [`wire::SimNet`] over a
//! grid5000-like topology, so round trips cost simulated latency and shared
//! rack/site links carry bandwidth contention.
//!
//! Three phases, each reporting the SimNet makespan (virtual time; nothing
//! here sleeps):
//!
//! * **E1-style reads** — 16 clients, driven round-robin from one thread
//!   (`io_parallelism = 1`) so the SimNet ledger sees a deterministic
//!   exchange order. Four ablation arms toggle ranged streaming reads
//!   (`with_ranged_reads`) and per-destination coalescing
//!   (`with_coalesced_reads`); a fifth arm repeats the full configuration
//!   to pin determinism, and an `InProc` run pins output identity.
//! * **F1-style appends** — the write path over the same wire.
//! * **E6 sort** — the full MapReduce stack (BSFS storage + jobtracker
//!   control plane via [`JobTracker::with_transport`]) over SimNet, with a
//!   rack-local vs rack-oblivious placement ablation.
//!
//! `BENCH_E11.json` records the arms for CI, which asserts: ranged reads
//! move fewer bytes than whole pages (>= 40% cut), coalescing never slows
//! the naive makespan, the repeated arm reproduces its makespan exactly,
//! and the SimNet output is byte-identical to InProc.

use blobseer::{BlobSeer, BlobSeerConfig, PlacementStrategy};
use bsfs::{Bsfs, BsfsConfig};
use mapreduce::fs::BsfsFs;
use mapreduce::jobtracker::JobTracker;
use mapreduce::DistFs;
use simcluster::netmodel::NetworkModel;
use simcluster::topology::ClusterTopology;
use simcluster::{Clock, NodeId, SimClock};
use std::sync::Arc;
use wire::{InProc, SimNet, Transport};

const PAGE: u64 = 16 * 1024;
const SMALL: u64 = 2 * 1024;
const SCAN_PAGES: u64 = 8;
const PROVIDERS: usize = 6;
const CLIENTS: usize = 16;

/// The 3-site, 2-racks-per-site, 4-nodes-per-rack topology every phase runs
/// on: small enough to sweep, deep enough that rack and site links differ.
fn wire_topology() -> ClusterTopology {
    ClusterTopology::builder()
        .sites(3)
        .racks_per_site(2)
        .nodes_per_rack(4)
        .build()
}

/// FNV-1a over every byte a read returned: the cross-arm identity witness.
fn fnv(acc: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(acc, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[derive(serde::Serialize, Clone)]
struct ReadArm {
    label: String,
    transport: &'static str,
    ranged: bool,
    coalesced: bool,
    makespan_us: u64,
    exchanges: u64,
    bytes_on_wire: u64,
    checksum: u64,
}

/// One E1 arm: fresh deployment, seed the blobs, reset the wire, then drive
/// the read sweep single-threaded and account only the sweep's traffic.
fn run_read_arm(
    label: &str,
    rounds: usize,
    blob_pages: u64,
    ranged: bool,
    coalesced: bool,
    simulate: bool,
) -> ReadArm {
    let topo = wire_topology();
    let clock = Arc::new(SimClock::new());
    let net = Arc::new(SimNet::new(topo.clone(), NetworkModel::grid5000_like()));
    let transport: Arc<dyn Transport> = if simulate {
        Arc::clone(&net) as Arc<dyn Transport>
    } else {
        Arc::new(InProc::new())
    };
    let provider_nodes: Vec<NodeId> = topo.all_nodes().take(PROVIDERS).collect();
    let sys = BlobSeer::with_transport(
        BlobSeerConfig::default()
            .with_providers(PROVIDERS)
            .with_page_size(PAGE)
            .with_page_replication(1)
            .with_io_parallelism(1)
            .with_ranged_reads(ranged)
            .with_coalesced_reads(coalesced),
        &topo,
        &provider_nodes,
        Arc::clone(&clock) as Arc<dyn Clock>,
        transport,
    );

    // Clients live on the nodes that do not host providers, so every page
    // fetch crosses the wire.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| sys.client_on(topo.node((PROVIDERS + i) as u32)))
        .collect();
    let mut blobs = Vec::with_capacity(CLIENTS);
    for (i, client) in clients.iter().enumerate() {
        let blob = client.create(Some(PAGE)).unwrap();
        let buf: Vec<u8> = (0..blob_pages * PAGE)
            .map(|j| ((i as u64 * 31 + j) % 251) as u8)
            .collect();
        client.write(blob, 0, &buf).unwrap();
        blobs.push(blob);
    }

    // Account the sweep only: drop the seeding from ledger and counters.
    net.reset();
    let prov0 = sys.provider_wire().snapshot();
    let dht0 = sys.metadata().dht().wire_counters().snapshot();

    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..rounds {
        for (i, client) in clients.iter().enumerate() {
            // One aligned multi-page scan: whole pages under either knob,
            // but coalescing batches its per-provider fetches.
            let start = ((round as u64 * 3 + i as u64) % (blob_pages - SCAN_PAGES)) * PAGE;
            let data = client
                .read_latest(blobs[i], start, SCAN_PAGES * PAGE)
                .unwrap();
            checksum = fnv(checksum, &data);
            // Four small unaligned reads, each straddling a page boundary:
            // the ranged-read target (2 KiB wanted vs 32 KiB of pages).
            for k in 0..4u64 {
                let p = (round as u64 * 7 + i as u64 * 5 + k * 3) % (blob_pages - 1);
                let offset = p * PAGE + PAGE - SMALL / 2;
                let data = client.read_latest(blobs[i], offset, SMALL).unwrap();
                checksum = fnv(checksum, &data);
            }
        }
    }

    let wire_bytes = sys
        .provider_wire()
        .snapshot()
        .since(&prov0)
        .merged(&sys.metadata().dht().wire_counters().snapshot().since(&dht0));
    println!("  {}", bench::wire_report(label, &wire_bytes));
    ReadArm {
        label: label.to_string(),
        transport: if simulate { "simnet" } else { "inproc" },
        ranged,
        coalesced,
        makespan_us: net.makespan().as_micros(),
        exchanges: net.exchanges(),
        bytes_on_wire: wire_bytes.bytes_on_wire,
        checksum,
    }
}

#[derive(serde::Serialize)]
struct AppendArm {
    appends: u64,
    makespan_us: u64,
    exchanges: u64,
    bytes_on_wire: u64,
}

/// F1-style appends over the wire: 16 clients, round-robin, one page each
/// per round.
fn run_append_arm(rounds: usize) -> AppendArm {
    let topo = wire_topology();
    let clock = Arc::new(SimClock::new());
    let net = Arc::new(SimNet::new(topo.clone(), NetworkModel::grid5000_like()));
    let provider_nodes: Vec<NodeId> = topo.all_nodes().take(PROVIDERS).collect();
    let sys = BlobSeer::with_transport(
        BlobSeerConfig::default()
            .with_providers(PROVIDERS)
            .with_page_size(PAGE)
            .with_page_replication(1)
            .with_io_parallelism(1),
        &topo,
        &provider_nodes,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| sys.client_on(topo.node((PROVIDERS + i) as u32)))
        .collect();
    let blobs: Vec<_> = clients
        .iter()
        .map(|c| c.create(Some(PAGE)).unwrap())
        .collect();
    let mut appends = 0u64;
    for round in 0..rounds {
        for (i, client) in clients.iter().enumerate() {
            let fill = ((round * 17 + i * 3) % 251) as u8;
            client.append(blobs[i], &vec![fill; PAGE as usize]).unwrap();
            appends += 1;
        }
    }
    let bytes = sys
        .provider_wire()
        .snapshot()
        .merged(&sys.metadata().dht().wire_counters().snapshot());
    AppendArm {
        appends,
        makespan_us: net.makespan().as_micros(),
        exchanges: net.exchanges(),
        bytes_on_wire: bytes.bytes_on_wire,
    }
}

#[derive(serde::Serialize)]
struct SortArm {
    label: String,
    placement: &'static str,
    makespan_us: u64,
    exchanges: u64,
    control_messages: u64,
    shuffle_wire_bytes: u64,
    output_records: u64,
}

/// E6-style sort with the whole stack on the wire: BSFS pages and metadata
/// through SimNet, and the jobtracker's claim/report control plane charged
/// via [`JobTracker::with_transport`].
fn run_sort_arm(lines: usize, reducers: usize, placement: PlacementStrategy) -> (SortArm, Vec<u8>) {
    let (label, name) = match placement {
        PlacementStrategy::LocalFirst => ("rack-local", "local_first"),
        PlacementStrategy::Random => ("rack-oblivious", "random"),
        PlacementStrategy::LoadBalanced => ("load-balanced", "load_balanced"),
    };
    let block = 8 * 1024u64;
    let topo = wire_topology();
    let clock = Arc::new(SimClock::new());
    let net = Arc::new(SimNet::new(topo.clone(), NetworkModel::grid5000_like()));
    let nodes: Vec<NodeId> = topo.all_nodes().collect();
    let storage = BlobSeer::with_transport(
        BlobSeerConfig::default()
            .with_providers(nodes.len())
            .with_page_size(block)
            .with_page_replication(1)
            .with_placement(placement),
        &topo,
        &nodes,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    let fs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::default().with_block_size(block),
    ));

    let mut generator = workloads::TextGenerator::new(2026);
    fs.write_file("/input/unsorted.txt", generator.sentences(lines).as_bytes())
        .unwrap();
    let job = workloads::distributed_sort_job(
        &fs,
        vec!["/input/unsorted.txt".into()],
        "/sort-out",
        reducers,
        4 * 1024,
    )
    .expect("sampling the sort input");
    let jt = JobTracker::new(&topo)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .with_transport(Arc::clone(&net) as Arc<dyn Transport>, topo.node(0));
    let result = jt.run(&fs, &job).unwrap();

    let mut output = Vec::new();
    let mut previous: Option<String> = None;
    for part in &result.output_files {
        let content = fs.read_file(part).unwrap();
        for line in String::from_utf8_lossy(&content).lines() {
            if let Some(prev) = &previous {
                assert!(prev.as_str() <= line, "{name}: output must stay sorted");
            }
            previous = Some(line.to_string());
        }
        output.extend_from_slice(&content);
    }
    let control = jt.control_counters().expect("transport attached");
    (
        SortArm {
            label: label.to_string(),
            placement: name,
            makespan_us: net.makespan().as_micros(),
            exchanges: net.exchanges(),
            control_messages: control.messages(),
            shuffle_wire_bytes: result.shuffle.wire_snapshot().bytes_on_wire,
            output_records: result.output_records,
        },
        output,
    )
}

fn main() {
    let smoke = bench::smoke_mode();
    let (rounds, blob_pages, lines, reducers) = if smoke {
        (2usize, 16u64, 400usize, 2usize)
    } else {
        (6, 64, 8_000, 4)
    };

    println!(
        "== E11: the wire ({CLIENTS} clients x {rounds} rounds, {PROVIDERS} providers, \
         {blob_pages} pages/blob x {PAGE} B pages, grid5000-like 3x2x4 topology) =="
    );
    println!();

    // -- Phase A: E1-style reads, {ranged x coalesced} ablation ------------
    let naive = run_read_arm("whole-page, naive", rounds, blob_pages, false, false, true);
    let ranged = run_read_arm("ranged, naive", rounds, blob_pages, true, false, true);
    let coalesced = run_read_arm(
        "whole-page, coalesced",
        rounds,
        blob_pages,
        false,
        true,
        true,
    );
    let both = run_read_arm("ranged, coalesced", rounds, blob_pages, true, true, true);
    let repeat = run_read_arm("ranged, coalesced", rounds, blob_pages, true, true, true);
    let inproc = run_read_arm("inproc oracle", rounds, blob_pages, true, true, false);

    println!("E1-style reads over SimNet:");
    for arm in [&naive, &ranged, &coalesced, &both] {
        println!(
            "  {:>22}: makespan {:>9} us, {:>5} exchanges, {:>9} bytes on wire",
            arm.label, arm.makespan_us, arm.exchanges, arm.bytes_on_wire
        );
    }

    // Identity: the knobs and the transport change costs, never bytes.
    for arm in [&ranged, &coalesced, &both, &repeat, &inproc] {
        assert_eq!(
            arm.checksum, naive.checksum,
            "'{}' returned different bytes than the naive arm",
            arm.label
        );
    }
    let identical = inproc.checksum == both.checksum;
    // Determinism: an identical arm reproduces the ledger exactly.
    let deterministic = both.makespan_us == repeat.makespan_us
        && both.exchanges == repeat.exchanges
        && both.bytes_on_wire == repeat.bytes_on_wire;
    assert!(deterministic, "repeated arm diverged from its twin");
    assert_eq!(inproc.makespan_us, 0, "InProc must charge nothing");

    let ranged_cut = 1.0 - ranged.bytes_on_wire as f64 / naive.bytes_on_wire as f64;
    assert!(
        ranged_cut >= 0.40,
        "ranged reads must cut bytes on wire by >= 40% (got {:.1}%)",
        ranged_cut * 100.0
    );
    assert!(
        coalesced.makespan_us < naive.makespan_us,
        "coalescing must shorten the naive makespan ({} !< {})",
        coalesced.makespan_us,
        naive.makespan_us
    );
    assert!(coalesced.exchanges < naive.exchanges);
    println!(
        "  ranged reads cut bytes on wire by {:.1}%; coalescing cut the makespan by {:.1}% \
         ({} -> {} exchanges)",
        ranged_cut * 100.0,
        100.0 * (1.0 - coalesced.makespan_us as f64 / naive.makespan_us as f64),
        naive.exchanges,
        coalesced.exchanges,
    );
    println!();

    // -- Phase B: F1-style appends -----------------------------------------
    let appends = run_append_arm(rounds);
    assert!(appends.makespan_us > 0, "appends must cost simulated time");
    println!(
        "F1-style appends over SimNet: {} appends, makespan {} us, {} exchanges, \
         {} bytes on wire",
        appends.appends, appends.makespan_us, appends.exchanges, appends.bytes_on_wire
    );
    println!();

    // -- Phase C: E6 sort, placement ablation ------------------------------
    let (local, local_out) = run_sort_arm(lines, reducers, PlacementStrategy::LocalFirst);
    let (random, random_out) = run_sort_arm(lines, reducers, PlacementStrategy::Random);
    assert_eq!(
        local_out, random_out,
        "placement must not change the sorted output"
    );
    println!("E6 sort over SimNet (storage + control plane on the wire):");
    for arm in [&local, &random] {
        println!(
            "  {:>14}: makespan {:>9} us, {:>6} exchanges ({} control messages), \
             shuffle wire bytes {}",
            arm.label, arm.makespan_us, arm.exchanges, arm.control_messages, arm.shuffle_wire_bytes
        );
    }
    println!();

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        rounds: usize,
        clients: usize,
        providers: usize,
        page_bytes: u64,
        read_arms: Vec<ReadArm>,
        ranged_bytes_cut_pct: f64,
        makespan_repeat_us: u64,
        deterministic: bool,
        identical: bool,
        appends: AppendArm,
        sort_arms: Vec<SortArm>,
    }
    bench::emit_bench_json(
        "E11",
        &Snapshot {
            experiment: "E11",
            smoke,
            rounds,
            clients: CLIENTS,
            providers: PROVIDERS,
            page_bytes: PAGE,
            ranged_bytes_cut_pct: ranged_cut * 100.0,
            makespan_repeat_us: repeat.makespan_us,
            deterministic,
            identical,
            read_arms: vec![naive, ranged, coalesced, both],
            appends,
            sort_arms: vec![local, random],
        },
    );
}
