//! Criterion bench for E3: concurrent writes to different files, BSFS vs
//! HDFS, laptop scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce::fs::DistFs;
use workloads::microbench::{write_distinct_files, MicrobenchConfig};

fn bench_write_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_write_distinct_files");
    group.sample_size(10);
    for &clients in bench::SMALL_CLIENT_COUNTS {
        let config = MicrobenchConfig {
            clients,
            bytes_per_client: 1 << 20,
            record_size: 4096,
        };
        let bsfs = bench::small_bsfs(4, 256 * 1024);
        group.bench_with_input(BenchmarkId::new("BSFS", clients), &clients, |b, _| {
            b.iter(|| write_distinct_files(&bsfs as &dyn DistFs, &config).unwrap())
        });
        let hdfs = bench::small_hdfs(4, 256 * 1024);
        group.bench_with_input(BenchmarkId::new("HDFS", clients), &clients, |b, _| {
            b.iter(|| write_distinct_files(&hdfs as &dyn DistFs, &config).unwrap())
        });
    }
    group.finish();

    // One instrumented pass outside the timing loops: report version-manager
    // contention and metadata DHT round trips for the largest client count.
    let clients = *bench::SMALL_CLIENT_COUNTS.last().unwrap();
    let config = MicrobenchConfig {
        clients,
        bytes_per_client: 1 << 20,
        record_size: 4096,
    };
    let bsfs = bench::small_bsfs(4, 256 * 1024);
    write_distinct_files(&bsfs as &dyn DistFs, &config).unwrap();
    println!(
        "E3 instrumentation ({clients} clients): {}",
        bench::write_path_report(bsfs.inner().storage())
    );
}

criterion_group!(benches, bench_write_distinct);
criterion_main!(benches);
