//! The provider manager: decides which providers store which pages.
//!
//! "The providers store the pages, as assigned by the provider manager; the
//! distribution of pages to providers aims at achieving load-balancing"
//! (paper §III-A). The evaluation section credits exactly this load-balancing
//! allocation for BSFS's throughput advantage over HDFS, whose policy always
//! writes the first replica locally. To make that comparison (and the A1
//! ablation) possible, the manager supports several interchangeable
//! strategies.
//!
//! Beyond placement, the manager is the storage tier's membership authority
//! under churn: providers *announce* every page replica they accept, an
//! optional heartbeat [`FailureDetector`] turns refused probes into suspicion,
//! and [`ProviderManager::repair`] actively re-replicates announced pages
//! whose live copy count fell below the replication factor — so a provider
//! crash costs redundancy only until the next repair pass, not until an
//! operator revives the node.

use crate::provider::Provider;
use crate::types::ProviderId;
use bytes::Bytes;
use kvstore::PageStore;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simcluster::detector::{DetectorConfig, FailureDetector};
use simcluster::topology::{ClusterTopology, Proximity};
use simcluster::{Clock, NodeId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the provider manager spreads pages over providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// BlobSeer's strategy: pick the provider with the fewest allocated
    /// pages, breaking ties round-robin. Spreads load evenly over the whole
    /// deployment regardless of where the writer runs.
    LoadBalanced,
    /// The HDFS-style strategy used as the ablation baseline: the first
    /// replica goes to a provider co-located with the writing client (or the
    /// closest one), the second to a provider in the same rack, further
    /// replicas to providers outside the rack.
    LocalFirst,
    /// Uniformly random placement (a second ablation point: load-balancing
    /// without the least-loaded feedback loop).
    Random,
}

/// What one [`ProviderManager::repair`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderRepairReport {
    /// Providers probed with a ping.
    pub probed_providers: usize,
    /// Providers that refused the probe.
    pub dead_providers: usize,
    /// Announced pages scanned.
    pub scanned_pages: usize,
    /// Pages whose live replica count was below the target.
    pub under_replicated: usize,
    /// Replica copies created on live providers.
    pub repaired_copies: usize,
    /// Pages still short of the target after the pass (not enough live
    /// providers, or no live copy left to read from).
    pub still_under_replicated: usize,
}

/// A registry of providers plus the placement logic.
pub struct ProviderManager {
    providers: RwLock<Vec<Arc<Provider>>>,
    topology: ClusterTopology,
    strategy: PlacementStrategy,
    /// Pages allocated to each provider so far (allocation-time accounting,
    /// maintained even before the data lands, so that concurrent writers
    /// spread out immediately).
    allocated: Mutex<HashMap<ProviderId, u64>>,
    /// Round-robin cursor used to break ties deterministically.
    cursor: Mutex<usize>,
    /// Deterministic pseudo-random state for [`PlacementStrategy::Random`].
    rng_state: Mutex<u64>,
    /// Which providers hold a replica of each announced page. Ordered map so
    /// repair scans keys deterministically. Entries survive a holder's death:
    /// the page store is persistent, so a revived provider still serves its
    /// old pages.
    announcements: Mutex<BTreeMap<Vec<u8>, Vec<ProviderId>>>,
    /// Optional heartbeat failure detector over the provider set.
    detector: Mutex<Option<Arc<FailureDetector<ProviderId>>>>,
    repair_runs: AtomicU64,
    repaired_pages: AtomicU64,
    under_replicated_last: AtomicU64,
}

impl ProviderManager {
    /// Create a manager over in-memory providers, one per entry of `nodes`.
    pub fn new_in_memory(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
    ) -> Self {
        Self::new_with_backends(topology, nodes, strategy, |_| {
            Arc::new(kvstore::MemStore::new())
        })
    }

    /// Create a manager over providers with custom storage backends. The
    /// `backends` iterator supplies one [`PageStore`] per node.
    pub fn new_with_backends(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
        mut backends: impl FnMut(usize) -> Arc<dyn PageStore>,
    ) -> Self {
        let providers = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| Arc::new(Provider::with_store(ProviderId(i as u32), *n, backends(i))))
            .collect();
        Self::with_providers(topology, providers, strategy)
    }

    /// Wrap an existing set of providers.
    pub fn with_providers(
        topology: &ClusterTopology,
        providers: Vec<Arc<Provider>>,
        strategy: PlacementStrategy,
    ) -> Self {
        assert!(!providers.is_empty(), "at least one provider is required");
        ProviderManager {
            providers: RwLock::new(providers),
            topology: topology.clone(),
            strategy,
            allocated: Mutex::new(HashMap::new()),
            cursor: Mutex::new(0),
            rng_state: Mutex::new(0x1234_5678_9ABC_DEF0),
            announcements: Mutex::new(BTreeMap::new()),
            detector: Mutex::new(None),
            repair_runs: AtomicU64::new(0),
            repaired_pages: AtomicU64::new(0),
            under_replicated_last: AtomicU64::new(0),
        }
    }

    /// Add a fresh in-memory provider on `node` (a churn *join*). Returns its
    /// id. The new provider starts empty; the next repair pass and future
    /// allocations pull it into service.
    pub fn join_in_memory(&self, node: NodeId) -> ProviderId {
        let mut providers = self.providers.write();
        let id = ProviderId(providers.len() as u32);
        providers.push(Arc::new(Provider::in_memory(id, node)));
        if let Some(d) = self.detector.lock().as_ref() {
            d.register(id);
        }
        id
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Number of providers (live and dead).
    pub fn len(&self) -> usize {
        self.providers.read().len()
    }

    /// True when no providers exist (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a provider by id.
    pub fn provider(&self, id: ProviderId) -> Option<Arc<Provider>> {
        self.providers.read().get(id.0 as usize).cloned()
    }

    /// All providers.
    pub fn providers(&self) -> Vec<Arc<Provider>> {
        self.providers.read().clone()
    }

    /// The cluster node a provider runs on (used by the locality primitive).
    pub fn node_of(&self, id: ProviderId) -> Option<NodeId> {
        self.provider(id).map(|p| p.node())
    }

    /// Kill a provider (failure injection).
    pub fn kill(&self, id: ProviderId) {
        if let Some(p) = self.provider(id) {
            p.kill();
        }
    }

    /// Revive a provider.
    pub fn revive(&self, id: ProviderId) {
        if let Some(p) = self.provider(id) {
            p.revive();
        }
    }

    /// Allocate storage for `pages` consecutive pages written by a client on
    /// `client_node`, with `replication` copies each. Returns, for each page,
    /// the ordered list of providers that should receive a copy (first entry
    /// is the primary).
    ///
    /// Only live providers are considered. Fails (empty result) if no live
    /// provider exists; callers translate that into
    /// [`crate::BlobSeerError::NoProviders`].
    pub fn allocate(
        &self,
        pages: u64,
        replication: usize,
        client_node: NodeId,
    ) -> Vec<Vec<ProviderId>> {
        let providers = self.providers.read();
        let live: Vec<&Arc<Provider>> = providers.iter().filter(|p| p.is_alive()).collect();
        if live.is_empty() {
            return Vec::new();
        }
        let replication = replication.min(live.len());

        let mut result = Vec::with_capacity(pages as usize);
        let mut allocated = self.allocated.lock();
        for _ in 0..pages {
            let chosen = match self.strategy {
                PlacementStrategy::LoadBalanced => {
                    self.pick_load_balanced(&live, replication, &allocated)
                }
                PlacementStrategy::LocalFirst => {
                    self.pick_local_first(&live, replication, client_node, &allocated)
                }
                PlacementStrategy::Random => self.pick_random(&live, replication),
            };
            for id in &chosen {
                *allocated.entry(*id).or_insert(0) += 1;
            }
            result.push(chosen);
        }
        result
    }

    /// Least-loaded selection with a round-robin tiebreak.
    fn pick_load_balanced(
        &self,
        live: &[&Arc<Provider>],
        replication: usize,
        allocated: &HashMap<ProviderId, u64>,
    ) -> Vec<ProviderId> {
        let mut cursor = self.cursor.lock();
        // Sort candidates by (allocated pages, distance from cursor) so that
        // equally-loaded providers are used in rotation.
        let n = live.len();
        let start = *cursor % n;
        let mut candidates: Vec<(u64, usize, ProviderId)> = live
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let load = allocated.get(&p.id()).copied().unwrap_or(0);
                let rotation = (i + n - start) % n;
                (load, rotation, p.id())
            })
            .collect();
        candidates.sort();
        *cursor = (*cursor + 1) % n;
        candidates
            .into_iter()
            .take(replication)
            .map(|(_, _, id)| id)
            .collect()
    }

    /// HDFS-style: closest provider to the writer first, then same rack, then
    /// outside the rack.
    fn pick_local_first(
        &self,
        live: &[&Arc<Provider>],
        replication: usize,
        client_node: NodeId,
        allocated: &HashMap<ProviderId, u64>,
    ) -> Vec<ProviderId> {
        // Rank by proximity class, then by load within a class so that a rack
        // does not funnel everything to one provider.
        let mut candidates: Vec<(Proximity, u64, ProviderId)> = live
            .iter()
            .map(|p| {
                let prox = self.topology.proximity(client_node, p.node());
                let load = allocated.get(&p.id()).copied().unwrap_or(0);
                (prox, load, p.id())
            })
            .collect();
        candidates.sort();

        let mut chosen: Vec<ProviderId> = Vec::with_capacity(replication);
        // First replica: the closest provider (local if one exists).
        if let Some((_, _, id)) = candidates.first() {
            chosen.push(*id);
        }
        // Second replica: same rack as the writer but a different provider.
        if replication >= 2 {
            if let Some((_, _, id)) = candidates
                .iter()
                .find(|(prox, _, id)| !chosen.contains(id) && *prox <= Proximity::SameRack)
            {
                chosen.push(*id);
            }
        }
        // Remaining replicas: prefer providers outside the writer's rack.
        while chosen.len() < replication {
            let next = candidates
                .iter()
                .find(|(prox, _, id)| !chosen.contains(id) && *prox > Proximity::SameRack)
                .or_else(|| candidates.iter().find(|(_, _, id)| !chosen.contains(id)));
            match next {
                Some((_, _, id)) => chosen.push(*id),
                None => break,
            }
        }
        chosen
    }

    /// Uniformly random selection without replacement (xorshift, seeded
    /// deterministically so experiments are reproducible).
    fn pick_random(&self, live: &[&Arc<Provider>], replication: usize) -> Vec<ProviderId> {
        let mut state = self.rng_state.lock();
        let mut pool: Vec<ProviderId> = live.iter().map(|p| p.id()).collect();
        let mut chosen = Vec::with_capacity(replication);
        for _ in 0..replication.min(pool.len()) {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let idx = (*state as usize) % pool.len();
            chosen.push(pool.swap_remove(idx));
        }
        chosen
    }

    /// Allocation-time load per provider (pages assigned so far).
    pub fn allocation_load(&self) -> HashMap<ProviderId, u64> {
        self.allocated.lock().clone()
    }

    /// Reset the allocation counters (between benchmark phases).
    pub fn reset_allocation_counters(&self) {
        self.allocated.lock().clear();
        *self.cursor.lock() = 0;
    }

    // ---- page announcements -------------------------------------------------

    /// Record that `holder` stores a replica of `key`. Called by the write
    /// path after every successful page store; repair uses the registry to
    /// find under-replicated pages and surviving copies, and readers use it
    /// to fail over past the providers recorded in the metadata.
    pub fn announce(&self, key: &[u8], holder: ProviderId) {
        let mut ann = self.announcements.lock();
        let holders = ann.entry(key.to_vec()).or_default();
        if !holders.contains(&holder) {
            holders.push(holder);
        }
    }

    /// Drop one holder from a page's announcement (the replica was deleted).
    pub fn withdraw(&self, key: &[u8], holder: ProviderId) {
        let mut ann = self.announcements.lock();
        if let Some(holders) = ann.get_mut(key) {
            holders.retain(|h| *h != holder);
            if holders.is_empty() {
                ann.remove(key);
            }
        }
    }

    /// Drop a page from the registry entirely (garbage collection removed
    /// every replica).
    pub fn withdraw_page(&self, key: &[u8]) {
        self.announcements.lock().remove(key);
    }

    /// The announced holders of `key`, primary-first in announcement order.
    pub fn holders(&self, key: &[u8]) -> Vec<ProviderId> {
        self.announcements
            .lock()
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of pages currently announced.
    pub fn announced_pages(&self) -> usize {
        self.announcements.lock().len()
    }

    // ---- failure detection and repair --------------------------------------

    /// Attach a heartbeat failure detector reading time from `clock` and
    /// register every current provider with it.
    pub fn enable_failure_detection(&self, clock: Arc<dyn Clock>, config: DetectorConfig) {
        let detector = Arc::new(FailureDetector::new(clock, config));
        for p in self.providers.read().iter() {
            detector.register(p.id());
        }
        *self.detector.lock() = Some(detector);
    }

    /// The attached failure detector, if any.
    pub fn failure_detector(&self) -> Option<Arc<FailureDetector<ProviderId>>> {
        self.detector.lock().clone()
    }

    /// Feed a data-path refusal into the detector: an operation on `id` came
    /// back "not serving", which is evidence of death just like a missed
    /// heartbeat.
    pub fn note_down(&self, id: ProviderId) {
        if let Some(d) = self.detector.lock().as_ref() {
            d.observe(id, false);
        }
    }

    /// Run one heartbeat round: ping every provider and feed the outcomes to
    /// the detector (when attached). Returns the providers that refused the
    /// probe.
    pub fn heartbeat_tick(&self) -> Vec<ProviderId> {
        let detector = self.detector.lock().clone();
        let mut down = Vec::new();
        for p in self.providers.read().iter() {
            let ok = p.ping();
            if let Some(d) = &detector {
                d.observe(p.id(), ok);
            }
            if !ok {
                down.push(p.id());
            }
        }
        down
    }

    /// Repair passes completed.
    pub fn repair_runs(&self) -> u64 {
        self.repair_runs.load(Ordering::Relaxed)
    }

    /// Replica copies created by repair passes (monotonic).
    pub fn repaired_pages(&self) -> u64 {
        self.repaired_pages.load(Ordering::Relaxed)
    }

    /// Pages the last repair pass found under-replicated.
    pub fn under_replicated(&self) -> u64 {
        self.under_replicated_last.load(Ordering::Relaxed)
    }

    /// One active re-replication pass over the announced pages.
    ///
    /// Probes every provider, then for each announced page counts the holders
    /// that are both live and actually serve the page. When that count is
    /// below `replication`, the page is copied from a surviving live holder
    /// to the least-announced live non-holders until the factor is restored
    /// (or the live set is exhausted). New copies are announced, so a second
    /// pass over a healthy set is a no-op.
    pub fn repair(&self, replication: usize) -> ProviderRepairReport {
        let mut report = ProviderRepairReport::default();
        let providers = self.providers.read();
        let detector = self.detector.lock().clone();

        // Probe phase: discover liveness; never trust a cached flag.
        let mut live: HashMap<ProviderId, Arc<Provider>> = HashMap::new();
        for p in providers.iter() {
            report.probed_providers += 1;
            let ok = p.ping();
            if let Some(d) = &detector {
                d.observe(p.id(), ok);
            }
            if ok {
                live.insert(p.id(), Arc::clone(p));
            } else {
                report.dead_providers += 1;
            }
        }

        // Announcement load per provider, used to spread repair copies the
        // same way the allocator spreads fresh writes.
        let mut ann = self.announcements.lock();
        let mut load: HashMap<ProviderId, usize> = HashMap::new();
        for holders in ann.values() {
            for h in holders {
                *load.entry(*h).or_insert(0) += 1;
            }
        }

        for (key, holders) in ann.iter_mut() {
            report.scanned_pages += 1;
            let target = replication.min(live.len());
            // A holder counts only if it is live *and* serves the page: a
            // revived provider with a wiped store announces nothing.
            let mut data: Option<Bytes> = None;
            let mut live_holders = 0usize;
            for h in holders.iter() {
                if let Some(p) = live.get(h) {
                    if let Ok(Some(page)) = p.get_page(key) {
                        live_holders += 1;
                        data.get_or_insert(page);
                    }
                }
            }
            if live_holders >= target {
                continue;
            }
            report.under_replicated += 1;
            let Some(data) = data else {
                // Every live holder lost the page: nothing to copy from.
                report.still_under_replicated += 1;
                continue;
            };
            // Copy to the least-loaded live providers that do not hold it.
            let mut candidates: Vec<(usize, u32)> = live
                .keys()
                .filter(|id| !holders.contains(id))
                .map(|id| (load.get(id).copied().unwrap_or(0), id.0))
                .collect();
            candidates.sort();
            for (_, raw) in candidates {
                if live_holders >= target {
                    break;
                }
                let id = ProviderId(raw);
                let p = &live[&id];
                if p.put_page(key, data.clone()).is_ok() {
                    holders.push(id);
                    *load.entry(id).or_insert(0) += 1;
                    live_holders += 1;
                    report.repaired_copies += 1;
                }
            }
            if live_holders < target {
                report.still_under_replicated += 1;
            }
        }
        drop(ann);

        self.repair_runs.fetch_add(1, Ordering::Relaxed);
        self.repaired_pages
            .fetch_add(report.repaired_copies as u64, Ordering::Relaxed);
        self.under_replicated_last
            .store(report.under_replicated as u64, Ordering::Relaxed);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterTopology {
        // 2 racks of 4 nodes.
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(4)
            .build()
    }

    fn manager(strategy: PlacementStrategy) -> ProviderManager {
        let t = topo();
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        ProviderManager::new_in_memory(&t, &nodes, strategy)
    }

    #[test]
    fn load_balanced_spreads_pages_evenly() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // One client writes 80 pages: each of the 8 providers should get 10.
        let placement = m.allocate(80, 1, NodeId(0));
        assert_eq!(placement.len(), 80);
        let load = m.allocation_load();
        assert_eq!(load.len(), 8);
        for (_, count) in load {
            assert_eq!(
                count, 10,
                "load-balanced placement should be perfectly even"
            );
        }
    }

    #[test]
    fn load_balanced_spreads_across_concurrent_writers() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // Interleave allocations from different client nodes.
        for client in 0..4u32 {
            m.allocate(20, 1, NodeId(client));
        }
        let load = m.allocation_load();
        let min = load.values().min().copied().unwrap();
        let max = load.values().max().copied().unwrap();
        assert!(
            max - min <= 1,
            "imbalance should be at most one page, got min={min} max={max}"
        );
    }

    #[test]
    fn local_first_places_first_replica_on_writer_node() {
        let m = manager(PlacementStrategy::LocalFirst);
        let placement = m.allocate(10, 3, NodeId(2));
        for replicas in &placement {
            assert_eq!(replicas.len(), 3);
            // First replica is the provider on the writer's node.
            assert_eq!(m.node_of(replicas[0]).unwrap(), NodeId(2));
            // Second replica is in the same rack (nodes 0-3 are rack 0).
            let second_node = m.node_of(replicas[1]).unwrap();
            assert!(
                second_node.0 < 4,
                "second replica should stay in the writer's rack"
            );
            assert_ne!(replicas[0], replicas[1]);
            // Third replica is outside the rack.
            let third_node = m.node_of(replicas[2]).unwrap();
            assert!(
                third_node.0 >= 4,
                "third replica should leave the writer's rack"
            );
        }
    }

    #[test]
    fn local_first_concentrates_load_on_writer_nodes() {
        // This is the behaviour the paper blames for HDFS's poor write
        // scalability: every writer's pages land on its own node.
        let m = manager(PlacementStrategy::LocalFirst);
        m.allocate(50, 1, NodeId(1));
        let load = m.allocation_load();
        assert_eq!(
            load.len(),
            1,
            "all pages should go to the single local provider"
        );
        let (only_id, count) = load.iter().next().unwrap();
        assert_eq!(m.node_of(*only_id).unwrap(), NodeId(1));
        assert_eq!(*count, 50);
    }

    #[test]
    fn random_placement_uses_many_providers() {
        let m = manager(PlacementStrategy::Random);
        m.allocate(200, 1, NodeId(0));
        let load = m.allocation_load();
        assert!(
            load.len() >= 6,
            "random placement should touch most providers"
        );
        // Deterministic: a second manager produces the same placement.
        let m2 = manager(PlacementStrategy::Random);
        let p2 = m2.allocate(5, 2, NodeId(0));
        let m3 = manager(PlacementStrategy::Random);
        let p3 = m3.allocate(5, 2, NodeId(0));
        assert_eq!(p2, p3);
    }

    #[test]
    fn replication_never_repeats_a_provider_for_one_page() {
        for strategy in [
            PlacementStrategy::LoadBalanced,
            PlacementStrategy::LocalFirst,
            PlacementStrategy::Random,
        ] {
            let m = manager(strategy);
            let placement = m.allocate(30, 3, NodeId(5));
            for replicas in placement {
                let unique: std::collections::HashSet<_> = replicas.iter().collect();
                assert_eq!(
                    unique.len(),
                    replicas.len(),
                    "strategy {strategy:?} repeated a provider"
                );
            }
        }
    }

    #[test]
    fn dead_providers_are_skipped() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // Kill half the providers.
        for i in 0..4 {
            m.kill(ProviderId(i));
        }
        let placement = m.allocate(40, 2, NodeId(0));
        for replicas in &placement {
            for id in replicas {
                assert!(id.0 >= 4, "dead provider {id:?} was allocated");
            }
        }
        // Revive and confirm they participate again.
        for i in 0..4 {
            m.revive(ProviderId(i));
        }
        m.reset_allocation_counters();
        m.allocate(80, 1, NodeId(0));
        assert_eq!(m.allocation_load().len(), 8);
    }

    #[test]
    fn no_live_providers_returns_empty() {
        let m = manager(PlacementStrategy::LoadBalanced);
        for i in 0..8 {
            m.kill(ProviderId(i));
        }
        assert!(m.allocate(5, 1, NodeId(0)).is_empty());
    }

    #[test]
    fn replication_is_capped_at_live_provider_count() {
        let t = ClusterTopology::flat(2);
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        let m = ProviderManager::new_in_memory(&t, &nodes, PlacementStrategy::LoadBalanced);
        let placement = m.allocate(3, 5, NodeId(0));
        for replicas in placement {
            assert_eq!(replicas.len(), 2);
        }
    }

    #[test]
    fn provider_lookup_and_registry() {
        let m = manager(PlacementStrategy::LoadBalanced);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        assert!(m.provider(ProviderId(0)).is_some());
        assert!(m.provider(ProviderId(99)).is_none());
        assert_eq!(m.providers().len(), 8);
        assert_eq!(m.strategy(), PlacementStrategy::LoadBalanced);
    }

    #[test]
    fn announcements_track_holders_and_withdrawals() {
        let m = manager(PlacementStrategy::LoadBalanced);
        m.announce(b"k", ProviderId(1));
        m.announce(b"k", ProviderId(2));
        m.announce(b"k", ProviderId(1)); // duplicate is a no-op
        assert_eq!(m.holders(b"k"), vec![ProviderId(1), ProviderId(2)]);
        assert_eq!(m.announced_pages(), 1);
        m.withdraw(b"k", ProviderId(1));
        assert_eq!(m.holders(b"k"), vec![ProviderId(2)]);
        m.withdraw_page(b"k");
        assert!(m.holders(b"k").is_empty());
        assert_eq!(m.announced_pages(), 0);
    }

    /// Store one page on `replicas`, announcing each copy.
    fn seed_page(m: &ProviderManager, key: &[u8], replicas: &[u32]) {
        for r in replicas {
            let p = m.provider(ProviderId(*r)).unwrap();
            p.put_page(key, bytes::Bytes::from_static(b"page-data"))
                .unwrap();
            m.announce(key, ProviderId(*r));
        }
    }

    #[test]
    fn repair_restores_replication_after_a_provider_death() {
        let m = manager(PlacementStrategy::LoadBalanced);
        seed_page(&m, b"blob-1/v1/page-0", &[0, 1]);
        m.kill(ProviderId(0));

        let report = m.repair(2);
        assert_eq!(report.dead_providers, 1);
        assert_eq!(report.under_replicated, 1);
        assert_eq!(report.repaired_copies, 1);
        assert_eq!(report.still_under_replicated, 0);
        assert_eq!(m.under_replicated(), 1);
        assert_eq!(m.repair_runs(), 1);
        assert_eq!(m.repaired_pages(), 1);

        // The new holder is announced and actually serves the page.
        let holders = m.holders(b"blob-1/v1/page-0");
        assert_eq!(
            holders.len(),
            3,
            "dead holder stays announced, new one added"
        );
        let fresh = holders
            .iter()
            .find(|h| **h != ProviderId(0) && **h != ProviderId(1))
            .unwrap();
        let page = m
            .provider(*fresh)
            .unwrap()
            .get_page(b"blob-1/v1/page-0")
            .unwrap()
            .unwrap();
        assert_eq!(page, bytes::Bytes::from_static(b"page-data"));

        // A second pass over the (now healthy) set is a no-op.
        let again = m.repair(2);
        assert_eq!(again.under_replicated, 0);
        assert_eq!(again.repaired_copies, 0);
    }

    #[test]
    fn repair_reports_pages_with_no_surviving_copy() {
        let m = manager(PlacementStrategy::LoadBalanced);
        seed_page(&m, b"gone", &[0, 1]);
        m.kill(ProviderId(0));
        m.kill(ProviderId(1));
        let report = m.repair(2);
        assert_eq!(report.under_replicated, 1);
        assert_eq!(report.repaired_copies, 0);
        assert_eq!(report.still_under_replicated, 1);
    }

    #[test]
    fn joined_provider_takes_repair_copies() {
        let t = ClusterTopology::flat(2);
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        let m = ProviderManager::new_in_memory(&t, &nodes, PlacementStrategy::LoadBalanced);
        seed_page(&m, b"k", &[0, 1]);
        m.kill(ProviderId(1));
        // Without the join, replication 2 cannot be restored (1 live node).
        let id = m.join_in_memory(NodeId(0));
        assert_eq!(id, ProviderId(2));
        let report = m.repair(2);
        assert_eq!(report.repaired_copies, 1);
        assert!(m.holders(b"k").contains(&ProviderId(2)));
    }

    #[test]
    fn heartbeats_feed_the_detector() {
        use simcluster::clock::SimClock;
        use std::time::Duration;

        let m = manager(PlacementStrategy::LoadBalanced);
        let clock = Arc::new(SimClock::new());
        m.enable_failure_detection(
            Arc::clone(&clock) as Arc<dyn Clock>,
            DetectorConfig {
                heartbeat_interval: Duration::from_millis(10),
                suspicion_timeout: Duration::from_millis(30),
            },
        );
        let det = m.failure_detector().unwrap();
        assert_eq!(det.member_count(), 8);

        m.kill(ProviderId(3));
        assert_eq!(m.heartbeat_tick(), vec![ProviderId(3)]);
        assert!(
            !det.is_suspect(ProviderId(3)),
            "before the timeout: tolerated"
        );
        clock.advance(Duration::from_millis(30));
        m.heartbeat_tick();
        assert!(det.is_suspect(ProviderId(3)));
        assert_eq!(det.failures_detected(), 1);

        m.revive(ProviderId(3));
        m.heartbeat_tick();
        assert!(!det.is_suspect(ProviderId(3)));
        assert_eq!(det.recoveries_observed(), 1);
    }
}
