//! E3 — microbenchmark: concurrent clients writing to *different files*
//! (the access pattern of a reduce phase writing per-task outputs, §IV-B).

use workloads::microbench::AccessPattern;

fn main() {
    // BENCH_SMOKE=1 runs a tiny sweep (CI uses it as a does-it-run guard);
    // unset, empty, or "0" runs the full paper-scale sweep.
    let smoke = bench::smoke_mode();
    let client_counts = bench::sweep_client_counts(smoke);
    let (bsfs, hdfs, records) =
        bench::paper_sweep("E3", AccessPattern::WriteDistinctFiles, client_counts);
    bench::print_sweep(
        "E3",
        "concurrent writes to different files",
        &bsfs,
        &hdfs,
        &records,
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        sweep: Vec<bench::SweepRecord>,
    }
    bench::emit_bench_json(
        "E3",
        &Snapshot {
            experiment: "E3",
            smoke,
            sweep: records,
        },
    );
}
