//! Property-based tests of churn tolerance: random interleavings of writes,
//! reads, kills and joins on a `SimClock`, with the repair loop — never
//! `revive` — keeping the data durable.
//!
//! Two invariants must hold for every generated sequence:
//!
//! * **no committed version is ever lost** — every write/append that
//!   returned a version reads back byte-identical at the end, after all the
//!   churn has landed;
//! * **replication is eventually restored** — once the sequence quiesces, a
//!   repair pass on each tier reports nothing left under-replicated.
//!
//! The harness keeps kills survivable (a tier is never dropped below its
//! replication factor) and runs a repair pass after every kill, modelling a
//! repair cadence short enough that failures do not pile up faster than
//! re-replication — the regime the paper's replication argument assumes.

use blobseer::{BlobSeer, BlobSeerConfig, ProviderId, Version};
use proptest::prelude::*;
use simcluster::{ClusterTopology, NodeId, SimClock};
use std::sync::Arc;
use std::time::Duration;

/// A reference model of a sparse, growing byte array.
fn apply_to_model(model: &mut Vec<u8>, offset: usize, data: &[u8]) {
    if offset + data.len() > model.len() {
        model.resize(offset + data.len(), 0);
    }
    model[offset..offset + data.len()].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random write/read/kill/join sequences: committed versions stay
    /// readable and a final repair pass restores full replication.
    #[test]
    fn committed_versions_survive_random_churn(
        ops in prop::collection::vec(
            (0u8..6, 0usize..10_000, prop::collection::vec(any::<u8>(), 1..300)),
            1..14,
        ),
    ) {
        let providers = 6u32;
        let replication = 2usize;
        let clock = Arc::new(SimClock::new());
        let topo = ClusterTopology::flat(providers);
        let provider_nodes: Vec<NodeId> = topo.all_nodes().collect();
        let sys = BlobSeer::with_topology_and_clock(
            BlobSeerConfig::for_tests()
                .with_providers(providers as usize)
                .with_page_size(64)
                .with_page_replication(replication)
                .with_retry(3, Duration::from_millis(1))
                // Enables the failure detectors; the interval is far beyond
                // the advanced sim time, so repair runs only where the
                // sequence calls it — deterministically.
                .with_repair_interval(Duration::from_secs(3600)),
            &topo,
            &provider_nodes,
            Arc::clone(&clock) as Arc<dyn simcluster::Clock>,
        );
        let pm = sys.provider_manager();
        let dht = sys.metadata().dht();
        let client = sys.client();
        let blob = client.create(None).unwrap();

        let mut live_providers: Vec<ProviderId> = (0..providers).map(ProviderId).collect();
        let mut live_dht = dht.node_ids();
        let mut join_node = 0u32;
        let mut model: Vec<u8> = Vec::new();
        let mut snapshots: Vec<(Version, Vec<u8>)> = Vec::new();

        for (kind, pick, data) in &ops {
            clock.advance(Duration::from_millis(100));
            match kind {
                0 => {
                    let v = client.append(blob, data).unwrap();
                    let at = model.len();
                    apply_to_model(&mut model, at, data);
                    snapshots.push((v, model.clone()));
                }
                1 => {
                    let offset = pick % (model.len() + 1);
                    let v = client.write(blob, offset as u64, data).unwrap();
                    apply_to_model(&mut model, offset, data);
                    snapshots.push((v, model.clone()));
                }
                2 => {
                    // Kill a provider — only while the tier stays above its
                    // replication factor — and repair before anything else
                    // can die, so each page always keeps a live copy.
                    if live_providers.len() > replication {
                        let victim = live_providers.remove(pick % live_providers.len());
                        pm.kill(victim);
                        sys.repair();
                    }
                }
                3 => {
                    live_providers.push(pm.join_in_memory(topo.node(join_node % providers)));
                    join_node += 1;
                }
                4 => {
                    if live_dht.len() > dht.replication() {
                        let victim = live_dht.remove(pick % live_dht.len());
                        dht.kill(victim).unwrap();
                        sys.repair();
                    }
                }
                _ => {
                    live_dht.push(dht.join());
                }
            }
            // A mid-sequence read: some snapshot (when one exists) must be
            // readable right now, whatever just died.
            if let Some((version, expected)) = snapshots.get(pick % snapshots.len().max(1)) {
                if !expected.is_empty() {
                    let got = client.read(blob, *version, 0, expected.len() as u64).unwrap();
                    prop_assert_eq!(&got[..], &expected[..]);
                }
            }
        }

        // Quiesce: one repair pass per tier must find replication fully
        // restored with the members still alive.
        let (dht_report, provider_report) = sys.repair();
        prop_assert_eq!(provider_report.still_under_replicated, 0);
        prop_assert_eq!(dht_report.still_under_replicated, 0);

        // No committed version was lost: every snapshot reads back exactly
        // as it was published.
        for (version, expected) in &snapshots {
            if expected.is_empty() {
                continue;
            }
            let got = client.read(blob, *version, 0, expected.len() as u64).unwrap();
            prop_assert_eq!(got.to_vec(), expected.clone());
        }
    }
}
