//! Data providers: the nodes that store pages.
//!
//! "The providers store the pages, as assigned by the provider manager"
//! (paper §III-A). A provider wraps a [`PageStore`] backend (in-memory or the
//! durable log-structured store), knows which cluster node it runs on (for
//! locality-aware scheduling and the network model), counts its traffic, and
//! can be killed/revived for fault-tolerance experiments.

use crate::error::{BlobResult, BlobSeerError};
use crate::types::{BlobId, ProviderId, Version};
use bytes::Bytes;
use kvstore::{MemStore, PageStore};
use simcluster::NodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Build the storage key under which a page is kept on a provider.
///
/// Pages are immutable once written (BlobSeer never overwrites data), so the
/// key embeds the version that created the page.
pub fn page_key(blob: BlobId, version: Version, page_index: u64) -> Vec<u8> {
    format!("{}/{}/page-{}", blob, version, page_index).into_bytes()
}

/// Traffic and storage counters for one provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderStats {
    /// Number of pages currently stored.
    pub pages: usize,
    /// Bytes currently stored.
    pub stored_bytes: u64,
    /// Total pages written since start (monotonic).
    pub writes: u64,
    /// Total pages served since start (monotonic).
    pub reads: u64,
    /// Total bytes written since start (monotonic).
    pub bytes_written: u64,
    /// Total bytes served since start (monotonic).
    pub bytes_read: u64,
}

/// One data provider.
pub struct Provider {
    id: ProviderId,
    node: NodeId,
    store: Arc<dyn PageStore>,
    alive: AtomicBool,
    writes: AtomicU64,
    reads: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl Provider {
    /// Create a provider backed by an in-memory store.
    pub fn in_memory(id: ProviderId, node: NodeId) -> Self {
        Self::with_store(id, node, Arc::new(MemStore::new()))
    }

    /// Create a provider backed by an arbitrary page store (e.g. a
    /// [`kvstore::LogStore`] for durability).
    pub fn with_store(id: ProviderId, node: NodeId, store: Arc<dyn PageStore>) -> Self {
        Provider {
            id,
            node,
            store,
            alive: AtomicBool::new(true),
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// The cluster node this provider runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the provider serving requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash. The underlying store keeps its data so that a
    /// revive models a restart from persistent storage.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the provider back online.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Store a page. Fails if the provider is down.
    pub fn put_page(&self, key: &[u8], data: Bytes) -> BlobResult<()> {
        if !self.is_alive() {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.store.put(key, data)?;
        Ok(())
    }

    /// Fetch a page. Returns `Ok(None)` when the provider is up but does not
    /// hold the page, and an error when the provider is down.
    pub fn get_page(&self, key: &[u8]) -> BlobResult<Option<Bytes>> {
        if !self.is_alive() {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        let page = self.store.get(key)?;
        if let Some(p) = &page {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.bytes_read.fetch_add(p.len() as u64, Ordering::Relaxed);
        }
        Ok(page)
    }

    /// Delete a page (used by version garbage collection).
    pub fn delete_page(&self, key: &[u8]) -> BlobResult<bool> {
        if !self.is_alive() {
            return Err(BlobSeerError::Storage(kvstore::KvError::Closed));
        }
        Ok(self.store.delete(key)?)
    }

    /// Current counters.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats {
            pages: self.store.len(),
            stored_bytes: self.store.data_bytes(),
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider() -> Provider {
        Provider::in_memory(ProviderId(0), NodeId(0))
    }

    #[test]
    fn page_key_is_unique_per_blob_version_page() {
        let a = page_key(BlobId(1), Version(2), 3);
        let b = page_key(BlobId(1), Version(2), 4);
        let c = page_key(BlobId(1), Version(3), 3);
        let d = page_key(BlobId(2), Version(2), 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(String::from_utf8(a).unwrap(), "blob-1/v2/page-3");
    }

    #[test]
    fn put_get_delete_and_stats() {
        let p = provider();
        assert_eq!(p.id(), ProviderId(0));
        assert_eq!(p.node(), NodeId(0));
        let key = page_key(BlobId(0), Version(1), 0);
        p.put_page(&key, Bytes::from(vec![7u8; 100])).unwrap();
        let got = p.get_page(&key).unwrap().unwrap();
        assert_eq!(got.len(), 100);
        assert!(p.get_page(b"missing").unwrap().is_none());

        let s = p.stats();
        assert_eq!(s.pages, 1);
        assert_eq!(s.stored_bytes, 100);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 100);

        assert!(p.delete_page(&key).unwrap());
        assert_eq!(p.stats().pages, 0);
    }

    #[test]
    fn dead_provider_rejects_all_operations() {
        let p = provider();
        let key = page_key(BlobId(0), Version(1), 0);
        p.put_page(&key, Bytes::from_static(b"data")).unwrap();
        p.kill();
        assert!(!p.is_alive());
        assert!(p.put_page(&key, Bytes::from_static(b"x")).is_err());
        assert!(p.get_page(&key).is_err());
        assert!(p.delete_page(&key).is_err());
        p.revive();
        assert_eq!(
            p.get_page(&key).unwrap().unwrap(),
            Bytes::from_static(b"data")
        );
    }

    #[test]
    fn missing_page_read_does_not_count_as_served() {
        let p = provider();
        let _ = p.get_page(b"nope").unwrap();
        assert_eq!(p.stats().reads, 0);
    }
}
