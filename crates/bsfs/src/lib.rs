//! # bsfs — the BlobSeer File System
//!
//! BSFS is the paper's contribution: "In order to enable BlobSeer to be used
//! as a file system within the Hadoop framework, we added an additional layer
//! on top of the BlobSeer service, layer that we called the BlobSeer File
//! System - BSFS" (§III-B). It consists of:
//!
//! * a **centralized namespace manager** ([`namespace::NamespaceManager`])
//!   mapping a hierarchical file namespace onto BlobSeer blobs;
//! * **client-side caching** ([`cache`]) — reads prefetch a whole block,
//!   writes are buffered and committed one block at a time — so that the
//!   4 KB-record access pattern of MapReduce applications does not translate
//!   into millions of tiny storage operations;
//! * a **data-layout exposure** primitive ([`Bsfs::locate`]) so the MapReduce
//!   scheduler can ship computation to the nodes holding the data.
//!
//! The API mirrors what the Hadoop `FileSystem` abstraction needs: create,
//! sequential write, positioned read, list, rename, delete, and locality
//! queries.
//!
//! ```
//! use blobseer::{BlobSeer, BlobSeerConfig};
//! use bsfs::{Bsfs, BsfsConfig};
//!
//! let storage = BlobSeer::new(BlobSeerConfig::for_tests());
//! let fs = Bsfs::new(storage, BsfsConfig::for_tests());
//!
//! let mut w = fs.create("/data/input.txt").unwrap();
//! w.write(b"one record\n").unwrap();
//! w.write(b"another record\n").unwrap();
//! w.close().unwrap();
//!
//! assert_eq!(fs.len("/data/input.txt").unwrap(), 26);
//! let mut r = fs.open("/data/input.txt").unwrap();
//! assert_eq!(&r.read_at(0, 10).unwrap()[..], b"one record");
//! ```

pub mod cache;
pub mod error;
pub mod namespace;

pub use cache::{CacheStats, ReadCache, WriteBuffer};
pub use error::{FsError, FsResult};
pub use namespace::{NamespaceManager, PathStatus};

use blobseer::{BlobId, BlobSeer, BlobSeerClient, ByteRange};
use bytes::Bytes;
use simcluster::NodeId;
use std::sync::Arc;

/// Configuration of the BSFS layer.
#[derive(Debug, Clone)]
pub struct BsfsConfig {
    /// Block size used for the client cache and as the write/commit unit
    /// (Hadoop-style 64 MiB by default).
    pub block_size: u64,
    /// BlobSeer page size backing each file's blob. `None` (the default)
    /// makes one BSFS block one BlobSeer page; setting it smaller stripes
    /// every block over `block_size / page_size` pages — and therefore over
    /// that many providers — which is the configuration the paper evaluates
    /// ("the page is the data-management unit" and is chosen smaller than
    /// the Hadoop chunk). Must divide `block_size` when set.
    pub page_size: Option<u64>,
    /// Number of blocks a reader caches (per open file handle).
    pub read_cache_blocks: usize,
    /// Whether the client cache is enabled. Disabling it sends every read and
    /// write straight to BlobSeer — the configuration used by the A2 ablation.
    pub cache_enabled: bool,
}

impl Default for BsfsConfig {
    fn default() -> Self {
        BsfsConfig {
            block_size: 64 * 1024 * 1024,
            page_size: None,
            read_cache_blocks: 2,
            cache_enabled: true,
        }
    }
}

impl BsfsConfig {
    /// A configuration sized for unit tests (small blocks).
    pub fn for_tests() -> Self {
        BsfsConfig {
            block_size: 256,
            page_size: None,
            read_cache_blocks: 2,
            cache_enabled: true,
        }
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// Builder-style override of the blob page size (page striping).
    pub fn with_page_size(mut self, page_size: u64) -> Self {
        self.page_size = Some(page_size);
        self
    }

    /// Builder-style toggle of the client cache.
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// The page size blobs are created with.
    pub fn effective_page_size(&self) -> u64 {
        self.page_size.unwrap_or(self.block_size)
    }
}

/// Block-level location of part of a file, for locality-aware scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLocation {
    /// Byte range of the file covered by this entry.
    pub range: ByteRange,
    /// Cluster nodes holding a copy of that range, in preference order.
    pub nodes: Vec<NodeId>,
}

/// The BSFS file-system client.
///
/// Cloning is cheap; all clones share the same namespace manager and BlobSeer
/// deployment. A clone can be attached to a different cluster node with
/// [`Bsfs::on_node`], which matters for placement strategies that favour
/// locality.
#[derive(Clone)]
pub struct Bsfs {
    storage: Arc<BlobSeer>,
    client: BlobSeerClient,
    namespace: Arc<NamespaceManager>,
    config: BsfsConfig,
}

impl Bsfs {
    /// Create a BSFS instance over a BlobSeer deployment.
    pub fn new(storage: Arc<BlobSeer>, config: BsfsConfig) -> Self {
        assert!(config.block_size > 0, "block size must be non-zero");
        if let Some(page_size) = config.page_size {
            assert!(page_size > 0, "page size must be non-zero");
            assert!(
                config.block_size.is_multiple_of(page_size),
                "the page size ({page_size}) must divide the block size ({})",
                config.block_size
            );
        }
        let client = storage.client();
        Bsfs {
            storage,
            client,
            namespace: Arc::new(NamespaceManager::new()),
            config,
        }
    }

    /// A handle whose operations originate from the given cluster node.
    pub fn on_node(&self, node: NodeId) -> Self {
        let mut clone = self.clone();
        clone.client = self.storage.client_on(node);
        clone
    }

    /// The BlobSeer deployment underneath.
    pub fn storage(&self) -> &Arc<BlobSeer> {
        &self.storage
    }

    /// The namespace manager (tests, tooling).
    pub fn namespace(&self) -> &Arc<NamespaceManager> {
        &self.namespace
    }

    /// This instance's configuration.
    pub fn config(&self) -> &BsfsConfig {
        &self.config
    }

    /// Create a file and return a writer. The parent directory is created
    /// implicitly (like Hadoop's `FileSystem.create`).
    pub fn create(&self, path: &str) -> FsResult<BsfsWriter> {
        let normalized = namespace::normalize(path)?;
        let parent = namespace::parent_of(&normalized);
        self.namespace.mkdirs(&parent)?;
        let blob = self
            .client
            .create(Some(self.config.effective_page_size()))?;
        self.namespace.create_file(&normalized, blob)?;
        Ok(BsfsWriter {
            client: self.client.clone(),
            blob,
            buffer: WriteBuffer::new(self.config.block_size),
            cache_enabled: self.config.cache_enabled,
            closed: false,
            path: normalized,
        })
    }

    /// Open a file for positioned reads.
    pub fn open(&self, path: &str) -> FsResult<BsfsReader> {
        let normalized = namespace::normalize(path)?;
        let entry = self.namespace.lookup(&normalized)?;
        Ok(BsfsReader {
            client: self.client.clone(),
            blob: entry.blob,
            cache: ReadCache::new(self.config.block_size, self.config.read_cache_blocks),
            cache_enabled: self.config.cache_enabled,
            path: normalized,
            position: 0,
        })
    }

    /// Length of a file in bytes.
    pub fn len(&self, path: &str) -> FsResult<u64> {
        let entry = self.namespace.lookup(path)?;
        Ok(self.client.size(entry.blob)?)
    }

    /// True when the namespace is completely empty (no files).
    pub fn is_empty(&self) -> bool {
        self.namespace.file_count() == 0
    }

    /// Does the path exist (file or directory)?
    pub fn exists(&self, path: &str) -> bool {
        self.namespace.exists(path)
    }

    /// Create a directory and its ancestors.
    pub fn mkdirs(&self, path: &str) -> FsResult<()> {
        self.namespace.mkdirs(path)
    }

    /// List the children of a directory.
    pub fn list(&self, path: &str) -> FsResult<Vec<String>> {
        self.namespace.list(path)
    }

    /// Delete a file (releasing its blob) or, with `recursive`, a directory
    /// tree.
    pub fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        match self.namespace.status(path)? {
            PathStatus::File(_) => {
                let entry = self.namespace.remove_file(path)?;
                self.client.delete(entry.blob)?;
                Ok(())
            }
            PathStatus::Directory => {
                let removed = self.namespace.remove_dir(path, recursive)?;
                for entry in removed {
                    self.client.delete(entry.blob)?;
                }
                Ok(())
            }
            PathStatus::Missing => Err(FsError::FileNotFound(path.to_string())),
        }
    }

    /// Rename a file or directory.
    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.namespace.rename(from, to)
    }

    /// Expose the data layout of a byte range of a file: which cluster nodes
    /// hold each block. This is the primitive the MapReduce jobtracker uses
    /// for locality-aware task placement (paper §III-B).
    pub fn locate(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<BlockLocation>> {
        let entry = self.namespace.lookup(path)?;
        let locations = self.client.locate_latest(entry.blob, offset, len)?;
        Ok(locations
            .into_iter()
            .map(|l| BlockLocation {
                range: l.range,
                nodes: l.nodes,
            })
            .collect())
    }

    /// Convenience: write an entire file in one call.
    pub fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let mut w = self.create(path)?;
        w.write(data)?;
        w.close()
    }

    /// Lock/condvar contention of the underlying version manager, summed
    /// over its shards (passthrough for benchmarks and tooling).
    pub fn version_manager_contention(&self) -> blobseer::ShardStats {
        self.storage.version_manager().contention_stats()
    }

    /// Metadata traffic counters of the underlying BlobSeer deployment,
    /// including DHT round trips and batch flushes (passthrough).
    pub fn metadata_stats(&self) -> blobseer::MetadataStats {
        self.storage.metadata().stats()
    }

    /// Convenience: read an entire file in one call.
    pub fn read_file(&self, path: &str) -> FsResult<Bytes> {
        let size = self.len(path)?;
        if size == 0 {
            return Ok(Bytes::new());
        }
        let mut r = self.open(path)?;
        r.read_at(0, size)
    }
}

/// Sequential writer for one file. Writes are buffered into whole blocks and
/// committed to BlobSeer as appends; `close` flushes the tail and must be
/// called (dropping an unclosed writer loses the buffered tail, mirroring
/// Hadoop semantics where an unclosed file has undefined visible length).
pub struct BsfsWriter {
    client: BlobSeerClient,
    blob: BlobId,
    buffer: WriteBuffer,
    cache_enabled: bool,
    closed: bool,
    path: String,
}

impl BsfsWriter {
    /// The path this writer writes to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The blob backing the file (tests, tooling).
    pub fn blob(&self) -> BlobId {
        self.blob
    }

    /// Append `data` to the file.
    pub fn write(&mut self, data: &[u8]) -> FsResult<()> {
        if self.closed {
            return Err(FsError::WriterClosed);
        }
        if data.is_empty() {
            return Ok(());
        }
        if !self.cache_enabled {
            // Ablation mode: every write is an individual BlobSeer append.
            self.client.append(self.blob, data)?;
            return Ok(());
        }
        for block in self.buffer.push(data) {
            self.client.append(self.blob, &block)?;
        }
        Ok(())
    }

    /// Bytes accepted so far (buffered or committed).
    pub fn bytes_written(&self) -> u64 {
        self.buffer.total_bytes()
    }

    /// Flush the partial tail block and mark the writer closed.
    pub fn close(&mut self) -> FsResult<()> {
        if self.closed {
            return Ok(());
        }
        if let Some(tail) = self.buffer.flush() {
            self.client.append(self.blob, &tail)?;
        }
        self.closed = true;
        Ok(())
    }
}

/// Positioned/sequential reader for one file, with whole-block prefetching.
pub struct BsfsReader {
    client: BlobSeerClient,
    blob: BlobId,
    cache: ReadCache,
    cache_enabled: bool,
    path: String,
    position: u64,
}

impl BsfsReader {
    /// The path this reader reads from.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Current length of the file.
    pub fn len(&self) -> FsResult<u64> {
        Ok(self.client.size(self.blob)?)
    }

    /// True when the file currently holds no bytes.
    pub fn is_empty(&self) -> FsResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Cache statistics for this reader (A2 ablation instrumentation).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Read `len` bytes at an explicit offset.
    pub fn read_at(&mut self, offset: u64, len: u64) -> FsResult<Bytes> {
        let size = self.len()?;
        // `checked_add`: a huge offset must surface as `OutOfBounds`, not
        // wrap past the bounds check in release builds.
        let requested_end = offset.checked_add(len);
        if requested_end.is_none() || requested_end.unwrap() > size {
            return Err(FsError::OutOfBounds {
                path: self.path.clone(),
                requested_end: requested_end.unwrap_or(u64::MAX),
                size,
            });
        }
        if len == 0 {
            return Ok(Bytes::new());
        }
        if !self.cache_enabled {
            return Ok(self.client.read_latest(self.blob, offset, len)?);
        }
        let client = &self.client;
        let blob = self.blob;
        let block_size = self.cache.block_size();
        self.cache
            .read(offset, len, size, |block, block_len| {
                client.read_latest(blob, block * block_size, block_len)
            })
            .map_err(FsError::from)
    }

    /// Sequential read from the current position; advances the position.
    pub fn read(&mut self, len: u64) -> FsResult<Bytes> {
        let size = self.len()?;
        let remaining = size.saturating_sub(self.position);
        let n = len.min(remaining);
        let data = self.read_at(self.position, n)?;
        self.position += data.len() as u64;
        Ok(data)
    }

    /// Move the sequential-read position.
    pub fn seek(&mut self, position: u64) {
        self.position = position;
    }

    /// Current sequential-read position.
    pub fn position(&self) -> u64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::BlobSeerConfig;

    fn fs() -> Bsfs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        Bsfs::new(storage, BsfsConfig::for_tests())
    }

    #[test]
    fn write_then_read_whole_file() {
        let fs = fs();
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        fs.write_file("/dir/file.bin", &data).unwrap();
        assert_eq!(fs.len("/dir/file.bin").unwrap(), 1000);
        assert_eq!(fs.read_file("/dir/file.bin").unwrap().to_vec(), data);
        assert!(fs.exists("/dir"));
        assert!(fs.exists("/dir/file.bin"));
        assert!(!fs.is_empty());
    }

    #[test]
    fn small_record_writes_are_batched_into_blocks() {
        let fs = fs();
        let mut w = fs.create("/records").unwrap();
        // 100 records of 11 bytes with a 256-byte block: the writer should
        // commit ceil(1100/256) = 5 appends (4 full blocks + the flushed
        // tail), not 100.
        for i in 0..100u32 {
            w.write(format!("rec{i:06}#\n").as_bytes()).unwrap();
        }
        w.close().unwrap();
        assert_eq!(fs.len("/records").unwrap(), 1100);
        let versions = fs.storage().version_manager().latest(w.blob()).unwrap();
        assert_eq!(
            versions.version.0, 5,
            "expected 5 block appends, got {}",
            versions.version.0
        );
    }

    #[test]
    fn unbuffered_writer_commits_every_record() {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        let fs = Bsfs::new(storage, BsfsConfig::for_tests().with_cache(false));
        let mut w = fs.create("/records").unwrap();
        for i in 0..20u32 {
            w.write(format!("rec{i:06}#\n").as_bytes()).unwrap();
        }
        w.close().unwrap();
        let versions = fs.storage().version_manager().latest(w.blob()).unwrap();
        assert_eq!(
            versions.version.0, 20,
            "without the cache every record is one append"
        );
        assert_eq!(fs.len("/records").unwrap(), 220);
    }

    #[test]
    fn sequential_small_reads_prefetch_blocks() {
        let fs = fs();
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 256) as u8).collect();
        fs.write_file("/input", &data).unwrap();
        let mut r = fs.open("/input").unwrap();
        let mut assembled = Vec::new();
        loop {
            let chunk = r.read(32).unwrap();
            if chunk.is_empty() {
                break;
            }
            assembled.extend_from_slice(&chunk);
        }
        assert_eq!(assembled, data);
        let stats = r.cache_stats();
        // 2048/256 = 8 blocks loaded, not 64 small reads.
        assert_eq!(stats.blocks_loaded, 8);
        assert!(stats.hits > stats.misses);
    }

    #[test]
    fn read_at_random_offsets() {
        let fs = fs();
        let data: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        fs.write_file("/random", &data).unwrap();
        let mut r = fs.open("/random").unwrap();
        for &(off, len) in &[(0u64, 10u64), (2990, 10), (250, 20), (1023, 2), (0, 3000)] {
            let got = r.read_at(off, len).unwrap();
            assert_eq!(
                got.to_vec(),
                data[off as usize..(off + len) as usize].to_vec()
            );
        }
        assert!(matches!(
            r.read_at(2995, 10),
            Err(FsError::OutOfBounds { .. })
        ));
        // Regression: offsets near u64::MAX must not wrap past the check.
        assert!(matches!(
            r.read_at(u64::MAX - 1, 2),
            Err(FsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            r.read_at(u64::MAX - 1, 4),
            Err(FsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn reader_seek_and_position() {
        let fs = fs();
        fs.write_file("/seek", b"0123456789").unwrap();
        let mut r = fs.open("/seek").unwrap();
        r.seek(5);
        assert_eq!(r.position(), 5);
        assert_eq!(&r.read(3).unwrap()[..], b"567");
        assert_eq!(r.position(), 8);
        assert_eq!(&r.read(100).unwrap()[..], b"89");
        assert!(r.read(10).unwrap().is_empty());
        assert!(!r.is_empty().unwrap());
    }

    #[test]
    fn open_missing_file_fails() {
        let fs = fs();
        assert!(matches!(fs.open("/nope"), Err(FsError::FileNotFound(_))));
        assert!(matches!(fs.len("/nope"), Err(FsError::FileNotFound(_))));
        assert!(matches!(
            fs.read_file("/nope"),
            Err(FsError::FileNotFound(_))
        ));
        assert!(matches!(
            fs.delete("/nope", false),
            Err(FsError::FileNotFound(_))
        ));
    }

    #[test]
    fn create_existing_file_fails() {
        let fs = fs();
        fs.write_file("/dup", b"x").unwrap();
        assert!(matches!(fs.create("/dup"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn writer_close_is_idempotent_and_write_after_close_fails() {
        let fs = fs();
        let mut w = fs.create("/f").unwrap();
        w.write(b"abc").unwrap();
        w.close().unwrap();
        w.close().unwrap();
        assert!(matches!(w.write(b"more"), Err(FsError::WriterClosed)));
        assert_eq!(w.bytes_written(), 3);
        assert_eq!(fs.len("/f").unwrap(), 3);
    }

    #[test]
    fn empty_file_reads_empty() {
        let fs = fs();
        let mut w = fs.create("/empty").unwrap();
        w.close().unwrap();
        assert_eq!(fs.len("/empty").unwrap(), 0);
        assert!(fs.read_file("/empty").unwrap().is_empty());
        let mut r = fs.open("/empty").unwrap();
        assert!(r.is_empty().unwrap());
        assert!(r.read(10).unwrap().is_empty());
    }

    #[test]
    fn delete_file_and_directory_tree() {
        let fs = fs();
        fs.write_file("/out/part-0", b"a").unwrap();
        fs.write_file("/out/part-1", b"b").unwrap();
        fs.write_file("/keep/other", b"c").unwrap();
        fs.delete("/out/part-0", false).unwrap();
        assert!(!fs.exists("/out/part-0"));
        fs.delete("/out", true).unwrap();
        assert!(!fs.exists("/out"));
        assert!(fs.exists("/keep/other"));
        // The blobs backing deleted files are gone from BlobSeer too.
        assert_eq!(fs.storage().version_manager().blob_ids().len(), 1);
    }

    #[test]
    fn rename_keeps_contents() {
        let fs = fs();
        fs.write_file("/tmp/part", b"payload").unwrap();
        fs.mkdirs("/final").unwrap();
        fs.rename("/tmp/part", "/final/part").unwrap();
        assert_eq!(&fs.read_file("/final/part").unwrap()[..], b"payload");
        assert!(!fs.exists("/tmp/part"));
    }

    #[test]
    fn list_directory_contents() {
        let fs = fs();
        fs.write_file("/job/input/a", b"1").unwrap();
        fs.write_file("/job/input/b", b"2").unwrap();
        fs.mkdirs("/job/output").unwrap();
        let listing = fs.list("/job").unwrap();
        assert_eq!(listing, vec!["/job/input", "/job/output"]);
        assert_eq!(fs.list("/job/input").unwrap().len(), 2);
    }

    #[test]
    fn locate_reports_block_nodes() {
        let fs = fs();
        let data = vec![9u8; 1024]; // 4 blocks of 256
        fs.write_file("/located", &data).unwrap();
        let locations = fs.locate("/located", 0, 1024).unwrap();
        assert_eq!(locations.len(), 4);
        for loc in &locations {
            assert_eq!(loc.range.len, 256);
            assert!(!loc.nodes.is_empty());
        }
        // With load-balanced placement the blocks spread over several nodes.
        let unique: std::collections::HashSet<_> = locations.iter().map(|l| l.nodes[0]).collect();
        assert!(unique.len() > 1, "blocks should not all be on one node");
        // A sub-range only reports its blocks.
        let partial = fs.locate("/located", 300, 10).unwrap();
        assert_eq!(partial.len(), 1);
    }

    #[test]
    fn concurrent_writers_to_different_files() {
        let storage = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_providers(8)
                .with_page_size(1024),
        );
        let fs = Bsfs::new(storage, BsfsConfig::for_tests().with_block_size(1024));
        let handles: Vec<_> = (0..8u8)
            .map(|t| {
                let fs = fs.clone();
                std::thread::spawn(move || {
                    let path = format!("/out/part-{t}");
                    let mut w = fs.create(&path).unwrap();
                    for _ in 0..64 {
                        w.write(&[t; 64]).unwrap();
                    }
                    w.close().unwrap();
                    path
                })
            })
            .collect();
        for h in handles {
            let path = h.join().unwrap();
            let data = fs.read_file(&path).unwrap();
            assert_eq!(data.len(), 64 * 64);
        }
        assert_eq!(fs.namespace().file_count(), 8);
    }

    #[test]
    fn instrumentation_passthrough_reports_write_traffic() {
        let fs = fs();
        fs.write_file("/f", &[1u8; 1024]).unwrap();
        let meta = fs.metadata_stats();
        assert!(meta.nodes_written > 0);
        assert!(meta.batch_flushes > 0);
        assert!(meta.dht_round_trips > 0);
        let vm = fs.version_manager_contention();
        assert!(vm.lock_acquisitions > 0);
    }

    #[test]
    fn page_striped_blocks_spread_over_providers() {
        // One 256-byte block striped into 8 pages of 32 bytes: a block read
        // is a genuine multi-page read and its pages land on many providers.
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_providers(4));
        let fs = Bsfs::new(
            storage,
            BsfsConfig::for_tests()
                .with_block_size(256)
                .with_page_size(32),
        );
        let data: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/striped", &data).unwrap();
        assert_eq!(fs.read_file("/striped").unwrap().to_vec(), data);
        let locations = fs.locate("/striped", 0, 512).unwrap();
        assert_eq!(locations.len(), 16, "one location per 32-byte page");
        let unique: std::collections::HashSet<_> = locations.iter().map(|l| l.nodes[0]).collect();
        assert!(unique.len() > 1, "pages should spread over providers");
    }

    #[test]
    #[should_panic(expected = "must divide the block size")]
    fn page_size_not_dividing_block_size_is_rejected() {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests());
        let _ = Bsfs::new(
            storage,
            BsfsConfig::for_tests()
                .with_block_size(256)
                .with_page_size(48),
        );
    }

    #[test]
    fn on_node_changes_the_io_origin() {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_providers(4));
        let fs = Bsfs::new(storage, BsfsConfig::for_tests());
        let node3 = fs.storage().topology().node(3);
        let fs3 = fs.on_node(node3);
        fs3.write_file("/from-node-3", b"x").unwrap();
        // Both handles share the namespace.
        assert!(fs.exists("/from-node-3"));
    }
}
