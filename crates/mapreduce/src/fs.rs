//! The pluggable storage abstraction and its BSFS / HDFS adapters.
//!
//! The paper's methodology is to keep the Hadoop framework unchanged and swap
//! the storage layer underneath it ("We substituted the original data storage
//! layer of Hadoop, the Hadoop Distributed File System - HDFS with our
//! BlobSeer-based file system - BSFS", §IV). The [`DistFs`] trait is the Rust
//! equivalent of Hadoop's `FileSystem` abstraction: the jobtracker,
//! tasktrackers and applications are written against it, and the two adapters
//! below plug in the `bsfs` and `hdfs-sim` crates without either of those
//! crates knowing about MapReduce.

use crate::error::{storage_err, MrResult};
use bytes::Bytes;
use simcluster::NodeId;

/// Location hint for a piece of a file: which nodes hold bytes
/// `[offset, offset+len)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHint {
    /// Offset of the piece within the file.
    pub offset: u64,
    /// Length of the piece.
    pub len: u64,
    /// Nodes holding a copy, in preference order.
    pub nodes: Vec<NodeId>,
}

/// A sequential writer handle.
pub trait FileWriter: Send {
    /// Append bytes to the file.
    fn write(&mut self, data: &[u8]) -> MrResult<()>;
    /// Flush buffered data and seal the file.
    fn close(&mut self) -> MrResult<()>;
}

/// A positioned reader handle.
pub trait FileReader: Send {
    /// Read `len` bytes at `offset`.
    fn read_at(&mut self, offset: u64, len: u64) -> MrResult<Bytes>;
    /// Current file size.
    fn len(&mut self) -> MrResult<u64>;
    /// True when the file holds no bytes.
    fn is_empty(&mut self) -> MrResult<bool> {
        Ok(self.len()? == 0)
    }
}

/// The storage abstraction the MapReduce framework runs over — the Rust
/// counterpart of Hadoop's `FileSystem` class.
pub trait DistFs: Send + Sync {
    /// Short human-readable name of the backend ("BSFS", "HDFS").
    fn name(&self) -> &'static str;

    /// Create a file for writing.
    fn create(&self, path: &str) -> MrResult<Box<dyn FileWriter>>;

    /// Open a file for reading.
    fn open(&self, path: &str) -> MrResult<Box<dyn FileReader>>;

    /// Size of a file.
    fn len(&self, path: &str) -> MrResult<u64>;

    /// Does the path exist?
    fn exists(&self, path: &str) -> bool;

    /// List the children of a directory.
    fn list(&self, path: &str) -> MrResult<Vec<String>>;

    /// Create a directory and its ancestors.
    fn mkdirs(&self, path: &str) -> MrResult<()>;

    /// Delete a file or directory tree.
    fn delete(&self, path: &str, recursive: bool) -> MrResult<()>;

    /// Rename a file or directory.
    fn rename(&self, from: &str, to: &str) -> MrResult<()>;

    /// Data-layout query used by the locality-aware scheduler.
    fn locate(&self, path: &str, offset: u64, len: u64) -> MrResult<Vec<BlockHint>>;

    /// A handle whose I/O originates from `node` (the tasktracker's node).
    fn on_node(&self, node: NodeId) -> Box<dyn DistFs>;

    /// Convenience: read a whole file.
    fn read_file(&self, path: &str) -> MrResult<Bytes> {
        let size = self.len(path)?;
        if size == 0 {
            return Ok(Bytes::new());
        }
        let mut r = self.open(path)?;
        r.read_at(0, size)
    }

    /// Convenience: write a whole file.
    fn write_file(&self, path: &str, data: &[u8]) -> MrResult<()> {
        let mut w = self.create(path)?;
        w.write(data)?;
        w.close()
    }
}

// ---------------------------------------------------------------------------
// BSFS adapter
// ---------------------------------------------------------------------------

/// [`DistFs`] implementation backed by the BlobSeer File System.
#[derive(Clone)]
pub struct BsfsFs {
    inner: bsfs::Bsfs,
}

impl BsfsFs {
    /// Wrap a BSFS instance.
    pub fn new(inner: bsfs::Bsfs) -> Self {
        BsfsFs { inner }
    }

    /// Access the wrapped BSFS instance.
    pub fn inner(&self) -> &bsfs::Bsfs {
        &self.inner
    }
}

struct BsfsWriterAdapter(bsfs::BsfsWriter);

impl FileWriter for BsfsWriterAdapter {
    fn write(&mut self, data: &[u8]) -> MrResult<()> {
        self.0.write(data).map_err(storage_err)
    }
    fn close(&mut self) -> MrResult<()> {
        self.0.close().map_err(storage_err)
    }
}

struct BsfsReaderAdapter(bsfs::BsfsReader);

impl FileReader for BsfsReaderAdapter {
    fn read_at(&mut self, offset: u64, len: u64) -> MrResult<Bytes> {
        self.0.read_at(offset, len).map_err(storage_err)
    }
    fn len(&mut self) -> MrResult<u64> {
        self.0.len().map_err(storage_err)
    }
}

impl DistFs for BsfsFs {
    fn name(&self) -> &'static str {
        "BSFS"
    }
    fn create(&self, path: &str) -> MrResult<Box<dyn FileWriter>> {
        Ok(Box::new(BsfsWriterAdapter(
            self.inner.create(path).map_err(storage_err)?,
        )))
    }
    fn open(&self, path: &str) -> MrResult<Box<dyn FileReader>> {
        Ok(Box::new(BsfsReaderAdapter(
            self.inner.open(path).map_err(storage_err)?,
        )))
    }
    fn len(&self, path: &str) -> MrResult<u64> {
        self.inner.len(path).map_err(storage_err)
    }
    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }
    fn list(&self, path: &str) -> MrResult<Vec<String>> {
        self.inner.list(path).map_err(storage_err)
    }
    fn mkdirs(&self, path: &str) -> MrResult<()> {
        self.inner.mkdirs(path).map_err(storage_err)
    }
    fn delete(&self, path: &str, recursive: bool) -> MrResult<()> {
        self.inner.delete(path, recursive).map_err(storage_err)
    }
    fn rename(&self, from: &str, to: &str) -> MrResult<()> {
        self.inner.rename(from, to).map_err(storage_err)
    }
    fn locate(&self, path: &str, offset: u64, len: u64) -> MrResult<Vec<BlockHint>> {
        Ok(self
            .inner
            .locate(path, offset, len)
            .map_err(storage_err)?
            .into_iter()
            .map(|l| BlockHint {
                offset: l.range.offset,
                len: l.range.len,
                nodes: l.nodes,
            })
            .collect())
    }
    fn on_node(&self, node: NodeId) -> Box<dyn DistFs> {
        Box::new(BsfsFs {
            inner: self.inner.on_node(node),
        })
    }
}

// ---------------------------------------------------------------------------
// HDFS adapter
// ---------------------------------------------------------------------------

/// [`DistFs`] implementation backed by the HDFS-like baseline.
#[derive(Clone)]
pub struct HdfsFs {
    inner: hdfs_sim::Hdfs,
}

impl HdfsFs {
    /// Wrap an HDFS instance.
    pub fn new(inner: hdfs_sim::Hdfs) -> Self {
        HdfsFs { inner }
    }

    /// Access the wrapped HDFS instance.
    pub fn inner(&self) -> &hdfs_sim::Hdfs {
        &self.inner
    }
}

struct HdfsWriterAdapter(hdfs_sim::HdfsWriter);

impl FileWriter for HdfsWriterAdapter {
    fn write(&mut self, data: &[u8]) -> MrResult<()> {
        self.0.write(data).map_err(storage_err)
    }
    fn close(&mut self) -> MrResult<()> {
        self.0.close().map_err(storage_err)
    }
}

struct HdfsReaderAdapter(hdfs_sim::HdfsReader);

impl FileReader for HdfsReaderAdapter {
    fn read_at(&mut self, offset: u64, len: u64) -> MrResult<Bytes> {
        self.0.read_at(offset, len).map_err(storage_err)
    }
    fn len(&mut self) -> MrResult<u64> {
        Ok(self.0.len())
    }
}

impl DistFs for HdfsFs {
    fn name(&self) -> &'static str {
        "HDFS"
    }
    fn create(&self, path: &str) -> MrResult<Box<dyn FileWriter>> {
        Ok(Box::new(HdfsWriterAdapter(
            self.inner.create(path).map_err(storage_err)?,
        )))
    }
    fn open(&self, path: &str) -> MrResult<Box<dyn FileReader>> {
        Ok(Box::new(HdfsReaderAdapter(
            self.inner.open(path).map_err(storage_err)?,
        )))
    }
    fn len(&self, path: &str) -> MrResult<u64> {
        self.inner.len(path).map_err(storage_err)
    }
    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }
    fn list(&self, path: &str) -> MrResult<Vec<String>> {
        self.inner.list(path).map_err(storage_err)
    }
    fn mkdirs(&self, path: &str) -> MrResult<()> {
        self.inner.mkdirs(path).map_err(storage_err)
    }
    fn delete(&self, path: &str, recursive: bool) -> MrResult<()> {
        self.inner.delete(path, recursive).map_err(storage_err)
    }
    fn rename(&self, from: &str, to: &str) -> MrResult<()> {
        self.inner.rename(from, to).map_err(storage_err)
    }
    fn locate(&self, path: &str, offset: u64, len: u64) -> MrResult<Vec<BlockHint>> {
        Ok(self
            .inner
            .locate(path, offset, len)
            .map_err(storage_err)?
            .into_iter()
            .map(|l| BlockHint {
                offset: l.offset,
                len: l.len,
                nodes: l.nodes,
            })
            .collect())
    }
    fn on_node(&self, node: NodeId) -> Box<dyn DistFs> {
        Box::new(HdfsFs {
            inner: self.inner.on_node(node),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use hdfs_sim::{Hdfs, HdfsConfig};

    fn bsfs_fs() -> BsfsFs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()))
    }

    fn hdfs_fs() -> HdfsFs {
        HdfsFs::new(Hdfs::new(HdfsConfig::for_tests()))
    }

    /// The same behavioural checks run against both adapters, through the
    /// trait object — this is the property the whole methodology rests on.
    fn exercise(fs: &dyn DistFs) {
        assert!(!fs.exists("/data/input.txt"));
        fs.write_file("/data/input.txt", b"hello mapreduce\n")
            .unwrap();
        assert!(fs.exists("/data/input.txt"));
        assert_eq!(fs.len("/data/input.txt").unwrap(), 16);
        assert_eq!(
            &fs.read_file("/data/input.txt").unwrap()[..],
            b"hello mapreduce\n"
        );

        let mut reader = fs.open("/data/input.txt").unwrap();
        assert_eq!(&reader.read_at(6, 3).unwrap()[..], b"map");
        assert_eq!(reader.len().unwrap(), 16);
        assert!(!reader.is_empty().unwrap());

        let hints = fs.locate("/data/input.txt", 0, 16).unwrap();
        assert!(!hints.is_empty());
        assert!(hints.iter().all(|h| !h.nodes.is_empty()));

        fs.mkdirs("/out").unwrap();
        assert_eq!(fs.list("/data").unwrap(), vec!["/data/input.txt"]);
        fs.rename("/data/input.txt", "/out/renamed").unwrap();
        assert!(fs.exists("/out/renamed"));
        fs.delete("/out", true).unwrap();
        assert!(!fs.exists("/out/renamed"));

        assert!(fs.open("/missing").is_err());
        assert!(fs.len("/missing").is_err());
    }

    #[test]
    fn bsfs_adapter_full_contract() {
        let fs = bsfs_fs();
        assert_eq!(fs.name(), "BSFS");
        exercise(&fs);
    }

    #[test]
    fn hdfs_adapter_full_contract() {
        let fs = hdfs_fs();
        assert_eq!(fs.name(), "HDFS");
        exercise(&fs);
    }

    #[test]
    fn on_node_returns_a_working_handle() {
        let fs = bsfs_fs();
        let node = fs.inner().storage().topology().node(2);
        let moved = fs.on_node(node);
        moved.write_file("/from-node", b"x").unwrap();
        assert!(fs.exists("/from-node"));

        let hfs = hdfs_fs();
        let node = hfs.inner().topology().node(1);
        let moved = hfs.on_node(node);
        moved.write_file("/from-node", b"x").unwrap();
        assert!(hfs.exists("/from-node"));
    }

    #[test]
    fn both_backends_produce_identical_file_contents() {
        let b = bsfs_fs();
        let h = hdfs_fs();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i * 13 % 251) as u8).collect();
        b.write_file("/same", &payload).unwrap();
        h.write_file("/same", &payload).unwrap();
        assert_eq!(b.read_file("/same").unwrap(), h.read_file("/same").unwrap());
    }
}
