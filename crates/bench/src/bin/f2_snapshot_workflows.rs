//! F2 — future-work experiment (paper §V): versioning lets "complex MapReduce
//! workflows run in parallel, on different snapshots of the same original
//! dataset". A grep-style scan runs against snapshot v1 of a dataset while a
//! concurrent writer keeps appending new data (creating later versions); the
//! scan's result must reflect exactly the snapshot it targets.

use blobseer::{BlobSeer, BlobSeerConfig, Version};
use workloads::TextGenerator;

fn count_matches(data: &[u8], pattern: &str) -> usize {
    String::from_utf8_lossy(data)
        .lines()
        .filter(|l| l.contains(pattern))
        .count()
}

fn main() {
    let block = 64 * 1024u64;
    let sys = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(block),
    );
    let client = sys.client();
    let blob = client.create(Some(block)).unwrap();

    // Version 1: the original dataset with a known number of marker lines.
    let mut generator = TextGenerator::new(7);
    let mut original = String::new();
    let mut expected_v1 = 0usize;
    for i in 0..5_000 {
        if i % 13 == 0 {
            original.push_str("marker line for snapshot one\n");
            expected_v1 += 1;
        } else {
            original.push_str(&generator.sentence());
            original.push('\n');
        }
    }
    let v1 = client.append(blob, original.as_bytes()).unwrap();
    let v1_size = client.size(blob).unwrap();
    println!(
        "snapshot v1 written: {} bytes, {} marker lines",
        v1_size, expected_v1
    );

    // Concurrently: a writer keeps appending (new versions), while a scan
    // runs over snapshot v1.
    let writer_client = sys.client_on(sys.topology().node(1));
    let scan_client = sys.client_on(sys.topology().node(2));
    let (snapshot_count, appended_versions) = std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut g = TextGenerator::new(99);
            let mut latest = Version(0);
            for _ in 0..20 {
                let mut extra = String::from("marker line added after the snapshot\n");
                extra.push_str(&g.sentences(100));
                latest = writer_client.append(blob, extra.as_bytes()).unwrap();
            }
            latest
        });
        let scanner = s.spawn(move || {
            // Scan snapshot v1 block by block.
            let mut matches = 0usize;
            let mut offset = 0u64;
            while offset < v1_size {
                let n = block.min(v1_size - offset);
                let data = scan_client.read(blob, v1, offset, n).unwrap();
                matches += count_matches(&data, "marker line for snapshot one");
                offset += n;
            }
            matches
        });
        (scanner.join().unwrap(), writer.join().unwrap())
    });

    println!("concurrent writer advanced the blob to {appended_versions}");
    println!("scan over snapshot v1 found {snapshot_count} marker lines (expected ~{expected_v1})");
    let latest = client.latest_version(blob).unwrap();
    println!(
        "latest version is now {} with {} bytes",
        latest.version, latest.size
    );
    // Count on line boundaries can differ by the block-split lines; a scan on
    // whole data confirms the exact number.
    let all_v1 = client.read(blob, v1, 0, v1_size).unwrap();
    assert_eq!(
        count_matches(&all_v1, "marker line for snapshot one"),
        expected_v1
    );
    assert!(latest.size > v1_size);
    println!("snapshot isolation holds: the v1 scan was unaffected by 20 concurrent appends");
}
