//! Umbrella crate for the BlobSeer/BSFS reproduction workspace.
//!
//! This crate exists so that the repository root can host `examples/` and
//! `tests/` that exercise the public API of every workspace member. It simply
//! re-exports the member crates under stable names.

pub use blobseer;
pub use bsfs;
pub use dht;
pub use hdfs_sim as hdfs;
pub use kvstore;
pub use mapreduce;
pub use simcluster;
pub use wire;
pub use workloads;
