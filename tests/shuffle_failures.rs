//! Shuffle-under-failure regression tests: the output-commit protocol and
//! the segment-fetch retry path, exercised with a fault-injecting [`DistFs`]
//! wrapper (writers killed mid-stream, positioned reads failed) and with a
//! genuinely dead BlobSeer provider under page replication.

use blobseer::{BlobSeer, BlobSeerConfig, ProviderId};
use bsfs::{Bsfs, BsfsConfig};
use bytes::Bytes;
use mapreduce::fs::{BlockHint, BsfsFs, DistFs, FileReader, FileWriter};
use mapreduce::job::Mapper;
use mapreduce::jobtracker::JobTracker;
use mapreduce::{MrError, MrResult, SlowestFactorPolicy};
use simcluster::clock::SimClock;
use simcluster::{ClusterTopology, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workloads::{word_count_job, DelayRule, SlowFs};

// ---------------------------------------------------------------------------
// Fault-injecting DistFs wrapper
// ---------------------------------------------------------------------------

/// Shared fault schedule: fail `FileWriter::write` on matching paths
/// `write_failures` times (killing the writer mid-stream: half the data is
/// written, then an error), and fail `FileReader::read_at` on matching paths
/// `read_failures` times.
struct FaultPlan {
    write_path_contains: String,
    write_failures: AtomicUsize,
    read_path_contains: String,
    read_failures: AtomicUsize,
}

impl FaultPlan {
    fn writes(path_contains: &str, failures: usize) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            write_path_contains: path_contains.to_string(),
            write_failures: AtomicUsize::new(failures),
            read_path_contains: String::new(),
            read_failures: AtomicUsize::new(0),
        })
    }

    fn reads(path_contains: &str, failures: usize) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            write_path_contains: String::new(),
            write_failures: AtomicUsize::new(0),
            read_path_contains: path_contains.to_string(),
            read_failures: AtomicUsize::new(failures),
        })
    }

    fn take(counter: &AtomicUsize) -> bool {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// [`DistFs`] wrapper injecting the plan's failures into the handles it
/// vends. Everything else passes through unchanged, so jobs run over any
/// backend.
struct FaultFs {
    inner: Box<dyn DistFs>,
    plan: Arc<FaultPlan>,
}

impl FaultFs {
    fn new(inner: Box<dyn DistFs>, plan: Arc<FaultPlan>) -> FaultFs {
        FaultFs { inner, plan }
    }
}

struct FaultWriter {
    inner: Box<dyn FileWriter>,
    path: String,
    plan: Arc<FaultPlan>,
}

impl FileWriter for FaultWriter {
    fn write(&mut self, data: &[u8]) -> MrResult<()> {
        if !self.plan.write_path_contains.is_empty()
            && self.path.contains(&self.plan.write_path_contains)
            && FaultPlan::take(&self.plan.write_failures)
        {
            // Kill the writer mid-stream: part of the payload lands, then
            // the "process" dies.
            let _ = self.inner.write(&data[..data.len() / 2]);
            return Err(MrError::Storage(format!(
                "injected writer kill on {}",
                self.path
            )));
        }
        self.inner.write(data)
    }
    fn close(&mut self) -> MrResult<()> {
        self.inner.close()
    }
}

struct FaultReader {
    inner: Box<dyn FileReader>,
    path: String,
    plan: Arc<FaultPlan>,
}

impl FileReader for FaultReader {
    fn read_at(&mut self, offset: u64, len: u64) -> MrResult<Bytes> {
        if !self.plan.read_path_contains.is_empty()
            && self.path.contains(&self.plan.read_path_contains)
            && FaultPlan::take(&self.plan.read_failures)
        {
            return Err(MrError::Storage(format!(
                "injected read failure on {}",
                self.path
            )));
        }
        self.inner.read_at(offset, len)
    }
    fn len(&mut self) -> MrResult<u64> {
        self.inner.len()
    }
}

impl DistFs for FaultFs {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn create(&self, path: &str) -> MrResult<Box<dyn FileWriter>> {
        Ok(Box::new(FaultWriter {
            inner: self.inner.create(path)?,
            path: path.to_string(),
            plan: Arc::clone(&self.plan),
        }))
    }
    fn open(&self, path: &str) -> MrResult<Box<dyn FileReader>> {
        Ok(Box::new(FaultReader {
            inner: self.inner.open(path)?,
            path: path.to_string(),
            plan: Arc::clone(&self.plan),
        }))
    }
    fn len(&self, path: &str) -> MrResult<u64> {
        self.inner.len(path)
    }
    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }
    fn list(&self, path: &str) -> MrResult<Vec<String>> {
        self.inner.list(path)
    }
    fn mkdirs(&self, path: &str) -> MrResult<()> {
        self.inner.mkdirs(path)
    }
    fn delete(&self, path: &str, recursive: bool) -> MrResult<()> {
        self.inner.delete(path, recursive)
    }
    fn rename(&self, from: &str, to: &str) -> MrResult<()> {
        self.inner.rename(from, to)
    }
    fn locate(&self, path: &str, offset: u64, len: u64) -> MrResult<Vec<BlockHint>> {
        self.inner.locate(path, offset, len)
    }
    fn on_node(&self, node: NodeId) -> Box<dyn DistFs> {
        Box::new(FaultFs {
            inner: self.inner.on_node(node),
            plan: Arc::clone(&self.plan),
        })
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn bsfs_cluster(nodes: u32, replication: usize) -> (ClusterTopology, BsfsFs, Arc<BlobSeer>) {
    let topo = ClusterTopology::flat(nodes);
    let provider_nodes: Vec<_> = topo.all_nodes().collect();
    let storage = BlobSeer::with_topology(
        BlobSeerConfig::for_tests()
            .with_providers(nodes as usize)
            .with_page_size(512)
            .with_page_replication(replication),
        &topo,
        &provider_nodes,
    );
    let fs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::for_tests().with_block_size(512),
    ));
    let storage = Arc::clone(fs.inner().storage());
    (topo, fs, storage)
}

fn input_text() -> String {
    let mut text = String::new();
    for i in 0..120 {
        text.push_str(&format!("word{} common word{} common\n", i % 7, i % 13));
    }
    text
}

/// Reference word counts of [`input_text`], via the in-memory oracle on a
/// clean deployment.
fn oracle_outputs(reducers: usize) -> Vec<Vec<u8>> {
    let (topo, fs, _) = bsfs_cluster(4, 1);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let job = word_count_job(vec!["/in/data.txt".into()], "/out", reducers, 512);
    let result = JobTracker::new(&topo).run_inmem(&fs, &job).unwrap();
    result
        .output_files
        .iter()
        .map(|f| fs.read_file(f).unwrap().to_vec())
        .collect()
}

fn run_faulted(plan: Arc<FaultPlan>, reducers: usize) -> (Vec<String>, Vec<Vec<u8>>, usize) {
    let (topo, fs, _) = bsfs_cluster(4, 1);
    let fs = FaultFs::new(Box::new(fs), plan);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let job = word_count_job(vec!["/in/data.txt".into()], "/out", reducers, 512);
    let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
    let bytes = result
        .output_files
        .iter()
        .map(|f| fs.read_file(f).unwrap().to_vec())
        .collect();
    let mut listed = fs.list("/out").unwrap();
    listed.sort();
    assert_eq!(
        listed, result.output_files,
        "output dir must hold exactly the committed part files"
    );
    (result.output_files.clone(), bytes, result.task_retries)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn reduce_writer_killed_mid_stream_leaves_no_partial_or_duplicate_part() {
    // The first reduce attempt's output writer dies halfway through its
    // scratch file. The commit protocol (write to _temporary, rename into
    // place) must leave exactly one complete part file per partition.
    let (files, bytes, retries) = run_faulted(FaultPlan::writes("attempt-reduce", 1), 2);
    assert!(retries >= 1, "the killed attempt must be retried");
    assert_eq!(files.len(), 2);
    assert_eq!(bytes, oracle_outputs(2));
}

#[test]
fn map_spill_writer_killed_mid_stream_is_retried() {
    // Same protocol for shuffle spills: a map attempt's spill writer dies,
    // the retry commits a complete spill, reducers never see the partial.
    let (files, bytes, retries) = run_faulted(FaultPlan::writes("attempt-map", 1), 2);
    assert!(retries >= 1);
    assert_eq!(files.len(), 2);
    assert_eq!(bytes, oracle_outputs(2));
}

#[test]
fn failed_segment_fetches_are_retried_until_the_reduce_succeeds() {
    // Two positioned reads against committed spill files fail (a flaky
    // storage node during the fetch): the affected reduce attempts requeue
    // and the job still produces the oracle's bytes.
    let (files, bytes, retries) = run_faulted(FaultPlan::reads("/map-", 2), 3);
    assert!(retries >= 1, "failed fetches must surface as task retries");
    assert_eq!(files.len(), 3);
    assert_eq!(bytes, oracle_outputs(3));
}

/// Run word count with speculation enabled under a SimClock, with `rules`
/// injecting virtual straggler delays and `plan` injecting write kills.
/// Returns (result, part-file bytes, retries).
fn run_speculative_faulted(
    rules: Vec<DelayRule>,
    plan: Arc<FaultPlan>,
    reducers: usize,
) -> (mapreduce::JobResult, Vec<Vec<u8>>, usize) {
    let (topo, fs, _) = bsfs_cluster(4, 1);
    let clock = Arc::new(SimClock::new());
    let slow = SlowFs::new(Box::new(fs), clock.clone(), rules);
    let fs = FaultFs::new(Box::new(slow), plan);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let mut job = word_count_job(vec!["/in/data.txt".into()], "/out", reducers, 512);
    job.config.speculation = Some(Arc::new(SlowestFactorPolicy {
        slowest_factor: 2.0,
        min_runtime: Duration::from_secs(1),
        min_completed: 1,
    }));
    job.config.max_task_attempts = 6;
    let jt = JobTracker::new(&topo).with_clock(clock.clone());
    let result = clock.drive(Duration::from_secs(1), || jt.run(&fs, &job).unwrap());
    let bytes = result
        .output_files
        .iter()
        .map(|f| fs.read_file(f).unwrap().to_vec())
        .collect();
    let mut listed = fs.list("/out").unwrap();
    listed.sort();
    assert_eq!(
        listed, result.output_files,
        "output dir must hold exactly the committed part files"
    );
    assert!(
        !fs.exists("/out/_temporary") && !fs.exists("/out/_shuffle"),
        "no scratch may survive, including killed attempts' files"
    );
    let retries = result.task_retries;
    (result, bytes, retries)
}

#[test]
fn speculative_attempt_killed_mid_stream_never_corrupts_the_winner() {
    // Map task 0's first attempt straggles (10 virtual seconds), so a clone
    // (attempt 1) launches — and its spill writer is killed mid-stream.
    // Whichever attempt eventually commits, the killed clone must corrupt
    // nothing: the job completes with the oracle's exact bytes.
    let rules = vec![DelayRule::create(
        "attempt-map-00000-0",
        Duration::from_secs(10),
    )];
    let (result, bytes, retries) =
        run_speculative_faulted(rules, FaultPlan::writes("attempt-map-00000-1", 1), 2);
    assert!(
        result.speculation.launched >= 1,
        "the straggler must have been cloned: {:?}",
        result.speculation
    );
    assert!(retries >= 1, "the killed clone surfaces as a retry");
    assert_eq!(bytes, oracle_outputs(2));
}

#[test]
fn both_attempts_killed_retries_the_task_and_the_job_completes() {
    // The straggling original *and* its speculative clone both have their
    // spill writers killed: the task must requeue for a fresh attempt and
    // the job must still produce the oracle's bytes.
    let rules = vec![DelayRule::create(
        "attempt-map-00000-0",
        Duration::from_secs(10),
    )];
    let (result, bytes, retries) =
        run_speculative_faulted(rules, FaultPlan::writes("attempt-map-00000-", 2), 2);
    assert!(
        retries >= 2,
        "both killed attempts must be recorded: got {retries}"
    );
    assert!(result.speculation.launched >= 1);
    assert_eq!(bytes, oracle_outputs(2));
}

/// Run word count with merge-spill compaction forced on and `plan` injecting
/// failures, returning (result, part-file bytes).
fn run_compacted_faulted(
    plan: Arc<FaultPlan>,
    reducers: usize,
) -> (mapreduce::JobResult, Vec<Vec<u8>>) {
    let (topo, fs, _) = bsfs_cluster(4, 1);
    let fs = FaultFs::new(Box::new(fs), plan);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let mut job = word_count_job(vec!["/in/data.txt".into()], "/out", reducers, 512);
    job.config.compaction_threshold = Some(0);
    let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
    let bytes = result
        .output_files
        .iter()
        .map(|f| fs.read_file(f).unwrap().to_vec())
        .collect();
    let mut listed = fs.list("/out").unwrap();
    listed.sort();
    assert_eq!(
        listed, result.output_files,
        "output dir must hold exactly the committed part files"
    );
    (result, bytes)
}

#[test]
fn compactor_killed_mid_merge_leaves_the_spills_readable() {
    // The first compactor attempt's scratch writer dies mid-merge. The
    // merge is an optimization, not a point of failure: the batch's spills
    // stay published as individual fetch sources, no task retries, and the
    // output is byte-identical to the clean oracle.
    let (result, bytes) = run_compacted_faulted(FaultPlan::writes("attempt-compact", 1), 2);
    assert_eq!(
        result.task_retries, 0,
        "a killed compactor must not surface as a task failure"
    );
    assert_eq!(bytes, oracle_outputs(2));
}

#[test]
fn every_compactor_attempt_killed_degrades_to_the_uncompacted_shuffle() {
    // All compactor scratch writes fail: no merged run ever commits, every
    // reducer falls back to fetching one segment per map task, and the job
    // still produces the oracle's bytes.
    let (result, bytes) = run_compacted_faulted(FaultPlan::writes("attempt-compact", 10_000), 2);
    assert_eq!(result.shuffle.compaction_runs, 0);
    assert_eq!(
        result.shuffle.segments_fetched,
        (result.map_tasks * result.reduce_tasks) as u64,
        "with no merged runs the fetch plan must be the per-map one"
    );
    assert_eq!(result.task_retries, 0);
    assert_eq!(bytes, oracle_outputs(2));
}

#[test]
fn shuffle_survives_a_dead_provider_node_with_replication() {
    // A provider node dies while the job runs (killed by the first map
    // record, i.e. before every spill write and segment fetch): with page
    // replication 2, spills write to the surviving replicas and segment
    // fetches fail over — the job must complete with the oracle's output.
    struct KillingMapper {
        storage: Arc<BlobSeer>,
        kills_left: AtomicUsize,
    }
    impl Mapper for KillingMapper {
        fn map(
            &self,
            _offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            if FaultPlan::take(&self.kills_left) {
                self.storage.provider_manager().kill(ProviderId(0));
            }
            for w in line.split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
            Ok(())
        }
    }

    let (topo, fs, storage) = bsfs_cluster(4, 2);
    fs.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let job = mapreduce::Job::new(
        mapreduce::JobConfig::new(
            "wc-under-failure",
            mapreduce::InputSpec::Files(vec!["/in/data.txt".into()]),
            "/out",
        )
        .with_split_size(512)
        .with_reducers(2),
        Arc::new(KillingMapper {
            storage,
            kills_left: AtomicUsize::new(1),
        }),
        Arc::new(mapreduce::job::SumReducer),
    );
    let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
    let bytes: Vec<Vec<u8>> = result
        .output_files
        .iter()
        .map(|f| fs.read_file(f).unwrap().to_vec())
        .collect();
    assert_eq!(bytes, oracle_outputs(2));
    assert_eq!(
        result.shuffle.segments_fetched,
        (result.map_tasks * result.reduce_tasks) as u64
    );
}
