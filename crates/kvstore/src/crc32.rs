//! CRC-32 (IEEE 802.3 polynomial) used to checksum on-disk records.
//!
//! Implemented locally to keep the crate dependency-free; a table-driven
//! byte-at-a-time implementation is plenty fast for the record sizes we write
//! (pages of 64 KiB – 64 MiB), since the cost is dominated by the disk write.

/// Lazily built lookup table for the reflected CRC-32 polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Compute the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 computation over multiple buffers.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello, BlobSeer pages";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..]);
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"page-0 contents"), crc32(b"page-1 contents"));
        // Single-bit flip changes the checksum.
        assert_ne!(crc32(&[0b0000_0000]), crc32(&[0b0000_0001]));
    }
}
