//! Error type for the MapReduce framework.

use std::fmt;

/// Result alias for framework operations.
pub type MrResult<T> = Result<T, MrError>;

/// Errors surfaced by the MapReduce framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// The underlying distributed file system reported an error. The string
    /// carries the storage system's own message; keeping it opaque lets the
    /// framework work identically over BSFS and HDFS.
    Storage(String),
    /// The job configuration was invalid (no input files, zero reducers, ...).
    InvalidJob(String),
    /// A task failed more times than the configured retry limit.
    TaskFailed {
        task: String,
        attempts: usize,
        last_error: String,
    },
    /// The job referenced an input path that does not exist.
    InputNotFound(String),
    /// The output directory already exists (Hadoop refuses to clobber output).
    OutputExists(String),
    /// A submit was refused because the job's tenant is over one of its
    /// admission quotas (queue depth, namespace or storage budget).
    QuotaExceeded { tenant: String, reason: String },
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Storage(msg) => write!(f, "storage error: {msg}"),
            MrError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            MrError::TaskFailed {
                task,
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "task {task} failed after {attempts} attempts: {last_error}"
                )
            }
            MrError::InputNotFound(p) => write!(f, "input path not found: {p}"),
            MrError::OutputExists(p) => write!(f, "output path already exists: {p}"),
            MrError::QuotaExceeded { tenant, reason } => {
                write!(f, "tenant {tenant} over quota: {reason}")
            }
        }
    }
}

impl std::error::Error for MrError {}

/// Convert any displayable storage error into an [`MrError`].
pub fn storage_err(e: impl fmt::Display) -> MrError {
    MrError::Storage(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MrError::Storage("boom".into()).to_string().contains("boom"));
        assert!(MrError::InvalidJob("no input".into())
            .to_string()
            .contains("no input"));
        assert!(MrError::InputNotFound("/x".into())
            .to_string()
            .contains("/x"));
        assert!(MrError::OutputExists("/out".into())
            .to_string()
            .contains("/out"));
        let e = MrError::QuotaExceeded {
            tenant: "acme".into(),
            reason: "queue full".into(),
        };
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains("queue full"));
        let e = MrError::TaskFailed {
            task: "map-3".into(),
            attempts: 4,
            last_error: "io".into(),
        };
        assert!(e.to_string().contains("map-3"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn storage_err_wraps_any_error() {
        let io = std::io::Error::other("disk on fire");
        assert!(storage_err(io).to_string().contains("disk on fire"));
    }
}
