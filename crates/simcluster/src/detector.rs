//! Heartbeat failure detection on an injectable [`Clock`].
//!
//! A member (DHT node, data provider) is never *declared* dead to the
//! detector — it is *discovered* dead: a monitor periodically probes each
//! member (a heartbeat actor message) and reports the outcome here. A member
//! whose last successful heartbeat is older than the suspicion timeout and
//! which just failed another probe becomes **suspect**; a later successful
//! probe clears the suspicion (the member recovered or was falsely accused —
//! the classic trade-off of timeout-based detectors).
//!
//! The detector is deliberately passive: it holds no threads and sends no
//! messages itself. The owning component drives it from its own cadence
//! ([`FailureDetector::round_due`] rate-limits probe rounds against the
//! clock), which keeps the whole mechanism deterministic under
//! [`crate::clock::SimClock`].

use crate::clock::Clock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs of a [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Minimum spacing between heartbeat rounds ([`FailureDetector::round_due`]).
    pub heartbeat_interval: Duration,
    /// How long since the last successful heartbeat before a failed probe
    /// turns into suspicion. Longer tolerates slow members; shorter detects
    /// crashes faster.
    pub suspicion_timeout: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_interval: Duration::from_millis(50),
            suspicion_timeout: Duration::from_millis(150),
        }
    }
}

/// What the detector currently believes about a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberHealth {
    /// Heartbeats are answered (or the member has not been suspect long
    /// enough to say otherwise).
    Alive,
    /// Probes have failed for longer than the suspicion timeout.
    Suspect,
}

struct MemberRecord {
    last_ok: Duration,
    suspect: bool,
}

/// Timeout/suspicion failure detector over members of type `K`.
///
/// Thread-safe; probes from any thread may report outcomes concurrently.
pub struct FailureDetector<K: Eq + Hash + Copy> {
    clock: Arc<dyn Clock>,
    config: DetectorConfig,
    members: Mutex<HashMap<K, MemberRecord>>,
    last_round: Mutex<Option<Duration>>,
    heartbeats_sent: AtomicU64,
    failures_detected: AtomicU64,
    recoveries_observed: AtomicU64,
}

impl<K: Eq + Hash + Copy> FailureDetector<K> {
    /// A detector reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>, config: DetectorConfig) -> Self {
        FailureDetector {
            clock,
            config,
            members: Mutex::new(HashMap::new()),
            last_round: Mutex::new(None),
            heartbeats_sent: AtomicU64::new(0),
            failures_detected: AtomicU64::new(0),
            recoveries_observed: AtomicU64::new(0),
        }
    }

    /// The configuration this detector runs with.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Start tracking a member, presumed alive as of now (a member that
    /// never answers will still only become suspect after the timeout).
    pub fn register(&self, member: K) {
        let now = self.clock.now();
        self.members.lock().entry(member).or_insert(MemberRecord {
            last_ok: now,
            suspect: false,
        });
    }

    /// Stop tracking a member (it left the ring; not a failure).
    pub fn forget(&self, member: K) {
        self.members.lock().remove(&member);
    }

    /// Rate-limit heartbeat rounds: true at most once per
    /// `heartbeat_interval` of clock time (and always on the first call).
    pub fn round_due(&self) -> bool {
        let now = self.clock.now();
        let mut last = self.last_round.lock();
        match *last {
            Some(prev) if now.saturating_sub(prev) < self.config.heartbeat_interval => false,
            _ => {
                *last = Some(now);
                true
            }
        }
    }

    /// Report one heartbeat probe outcome. Returns the member's health after
    /// absorbing the observation (`None` for an unregistered member).
    pub fn observe(&self, member: K, ok: bool) -> Option<MemberHealth> {
        let now = self.clock.now();
        self.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        let mut members = self.members.lock();
        let rec = members.get_mut(&member)?;
        if ok {
            if rec.suspect {
                self.recoveries_observed.fetch_add(1, Ordering::Relaxed);
            }
            rec.suspect = false;
            rec.last_ok = now;
        } else if !rec.suspect && now.saturating_sub(rec.last_ok) >= self.config.suspicion_timeout {
            rec.suspect = true;
            self.failures_detected.fetch_add(1, Ordering::Relaxed);
        }
        Some(if rec.suspect {
            MemberHealth::Suspect
        } else {
            MemberHealth::Alive
        })
    }

    /// The detector's current belief about a member.
    pub fn health(&self, member: K) -> Option<MemberHealth> {
        self.members.lock().get(&member).map(|r| {
            if r.suspect {
                MemberHealth::Suspect
            } else {
                MemberHealth::Alive
            }
        })
    }

    /// True when the member is currently suspected dead.
    pub fn is_suspect(&self, member: K) -> bool {
        self.health(member) == Some(MemberHealth::Suspect)
    }

    /// All currently suspected members.
    pub fn suspects(&self) -> Vec<K> {
        self.members
            .lock()
            .iter()
            .filter(|(_, r)| r.suspect)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Number of members currently tracked.
    pub fn member_count(&self) -> usize {
        self.members.lock().len()
    }

    /// Total heartbeat probe outcomes absorbed.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent.load(Ordering::Relaxed)
    }

    /// Alive→suspect transitions observed (each distinct detection counts
    /// once, however many probes fail while suspect).
    pub fn failures_detected(&self) -> u64 {
        self.failures_detected.load(Ordering::Relaxed)
    }

    /// Suspect→alive transitions observed.
    pub fn recoveries_observed(&self) -> u64 {
        self.recoveries_observed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn detector(timeout_ms: u64) -> (Arc<SimClock>, FailureDetector<u32>) {
        let clock = Arc::new(SimClock::new());
        let det = FailureDetector::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            DetectorConfig {
                heartbeat_interval: Duration::from_millis(10),
                suspicion_timeout: Duration::from_millis(timeout_ms),
            },
        );
        (clock, det)
    }

    #[test]
    fn failed_probe_before_timeout_is_tolerated() {
        let (clock, det) = detector(100);
        det.register(1);
        clock.advance(Duration::from_millis(50));
        assert_eq!(det.observe(1, false), Some(MemberHealth::Alive));
        assert!(!det.is_suspect(1));
        assert_eq!(det.failures_detected(), 0);
    }

    #[test]
    fn missed_heartbeats_past_timeout_raise_suspicion_once() {
        let (clock, det) = detector(100);
        det.register(7);
        clock.advance(Duration::from_millis(100));
        assert_eq!(det.observe(7, false), Some(MemberHealth::Suspect));
        assert_eq!(det.suspects(), vec![7]);
        assert_eq!(det.failures_detected(), 1);
        // Further failed probes do not re-count the same detection.
        clock.advance(Duration::from_millis(100));
        det.observe(7, false);
        assert_eq!(det.failures_detected(), 1);
    }

    #[test]
    fn successful_probe_clears_suspicion() {
        let (clock, det) = detector(100);
        det.register(3);
        clock.advance(Duration::from_millis(200));
        det.observe(3, false);
        assert!(det.is_suspect(3));
        det.observe(3, true);
        assert_eq!(det.health(3), Some(MemberHealth::Alive));
        assert_eq!(det.recoveries_observed(), 1);
        // Suspicion timing restarts from the recovery.
        clock.advance(Duration::from_millis(50));
        assert_eq!(det.observe(3, false), Some(MemberHealth::Alive));
    }

    #[test]
    fn round_due_rate_limits_by_clock_time() {
        let (clock, det) = detector(100);
        assert!(det.round_due(), "first round is always due");
        assert!(!det.round_due(), "no clock progress: not due");
        clock.advance(Duration::from_millis(9));
        assert!(!det.round_due());
        clock.advance(Duration::from_millis(1));
        assert!(det.round_due());
    }

    #[test]
    fn forget_stops_tracking_without_counting_a_failure() {
        let (clock, det) = detector(10);
        det.register(1);
        det.register(2);
        det.forget(1);
        clock.advance(Duration::from_millis(100));
        assert_eq!(det.observe(1, false), None);
        assert_eq!(det.member_count(), 1);
        assert_eq!(det.failures_detected(), 0);
    }
}
