//! Run the paper's three microbenchmark access patterns (§IV-B) at laptop
//! scale against both storage systems and print a small comparison — a
//! miniature of experiments E1–E3 with real threads and real bytes.
//!
//! ```bash
//! cargo run --release --example storage_comparison
//! ```

use mapreduce::fs::DistFs;
use workloads::microbench::{
    prepare_distinct_files, prepare_shared_file, read_distinct_files, read_shared_file,
    write_distinct_files, MicrobenchConfig,
};

fn mibps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec / (1024.0 * 1024.0)
}

fn main() {
    let clients = 8;
    let config = MicrobenchConfig {
        clients,
        bytes_per_client: 4 << 20,
        record_size: 4096,
    };
    println!(
        "{clients} concurrent clients, {} MiB each, 4 KiB records\n",
        4
    );
    println!(
        "{:<32} {:>14} {:>14}",
        "pattern", "BSFS (MiB/s)", "HDFS (MiB/s)"
    );

    for pattern in [
        "write distinct files",
        "read distinct files",
        "read shared file",
    ] {
        let bsfs = bench_harness::small_bsfs(8, 1 << 20);
        let hdfs = bench_harness::small_hdfs(8, 1 << 20);
        let mut row = Vec::new();
        for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
            let report = match pattern {
                "write distinct files" => write_distinct_files(fs, &config).unwrap(),
                "read distinct files" => {
                    prepare_distinct_files(fs, &config).unwrap();
                    read_distinct_files(fs, &config).unwrap()
                }
                _ => {
                    prepare_shared_file(fs, &config).unwrap();
                    read_shared_file(fs, &config).unwrap()
                }
            };
            row.push(mibps(report.aggregate_bps()));
        }
        println!("{:<32} {:>14.1} {:>14.1}", pattern, row[0], row[1]);
    }
    println!("\n(in-process run: both systems move real bytes through memory; the paper-scale");
    println!(" network-level comparison is produced by the bench crate's e1/e2/e3 binaries)");
}

/// Minimal local copies of the bench-crate deployment builders (examples of
/// the root crate cannot depend on the internal bench harness crate).
mod bench_harness {
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use hdfs_sim::{Hdfs, HdfsConfig};
    use mapreduce::fs::{BsfsFs, HdfsFs};
    use simcluster::ClusterTopology;

    pub fn small_bsfs(nodes: u32, block: u64) -> BsfsFs {
        let topo = ClusterTopology::flat(nodes);
        let provider_nodes: Vec<_> = topo.all_nodes().collect();
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(nodes as usize)
                .with_page_size(block),
            &topo,
            &provider_nodes,
        );
        BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::default().with_block_size(block),
        ))
    }

    pub fn small_hdfs(nodes: u32, block: u64) -> HdfsFs {
        let topo = ClusterTopology::flat(nodes);
        let dn_nodes: Vec<_> = topo.all_nodes().collect();
        HdfsFs::new(Hdfs::with_topology(
            HdfsConfig {
                chunk_size: block,
                datanodes: nodes as usize,
                replication: 1,
                seed: 7,
            },
            &topo,
            &dn_nodes,
        ))
    }
}
