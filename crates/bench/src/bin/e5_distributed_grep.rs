//! E5 — application experiment: Distributed Grep job completion time,
//! BSFS vs HDFS (paper §IV-C).
//!
//! As for E4, both a real laptop-scale execution and the paper-scale estimate
//! (access pattern: "concurrent reads from the same huge file") are reported.

use simcluster::metrics::completion_table;
use workloads::microbench::AccessPattern;
use workloads::simscale::{run_pattern, SimScaleConfig, StorageSystem};
use workloads::TextGenerator;

fn main() {
    let block = 1u64 << 20;
    let (bsfs, hdfs) = bench::app_backends(block);

    // Generate a shared input file with a known number of matches.
    let mut generator = TextGenerator::new(2010);
    let mut text = String::new();
    for i in 0..20_000 {
        if i % 17 == 0 {
            text.push_str("this line holds the scintillant marker we grep for\n");
        } else {
            text.push_str(&generator.sentence());
            text.push('\n');
        }
    }
    let mut records = Vec::new();
    for fs in [
        &bsfs as &dyn mapreduce::DistFs,
        &hdfs as &dyn mapreduce::DistFs,
    ] {
        fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
        let job = workloads::distributed_grep_job(
            vec!["/input/huge.txt".into()],
            "/grep-out",
            "scintillant marker",
            256 * 1024,
        );
        let (result, rec) = bench::run_job_on(fs, &bench::app_topology(), &job);
        let out = fs.read_file(&result.output_files[0]).unwrap();
        println!(
            "{} output: {}",
            rec.system,
            String::from_utf8_lossy(&out).trim()
        );
        records.push(rec);
    }

    println!();
    println!("== E5: Distributed Grep, real execution (laptop scale) ==");
    print!("{}", completion_table(&records));
    println!();

    println!("== E5: Distributed Grep, paper-scale estimate (shared-file read pattern) ==");
    println!("(100 map waves each read 1 GiB of the shared input: job time ~ slowest reader)");
    println!();
    println!(
        "{:<8} {:>22} {:>22}",
        "system", "agg throughput MiB/s", "est. completion (s)"
    );
    for system in [StorageSystem::Bsfs, StorageSystem::Hdfs] {
        let config = SimScaleConfig::paper(100);
        let (agg, per_client) = run_pattern(system, AccessPattern::ReadSharedFile, &config);
        let est_secs = config.bytes_per_client as f64 / per_client;
        println!(
            "{:<8} {:>22.1} {:>22.1}",
            system.name(),
            agg / (1024.0 * 1024.0),
            est_secs
        );
    }
}
