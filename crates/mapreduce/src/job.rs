//! Job definitions: mappers, reducers and job configuration.
//!
//! The programming model follows the paper's description of MapReduce (§II-A):
//! "the user of the MapReduce library expresses the computation as two
//! functions: map, that processes a key-value pair to generate a set of
//! intermediate key-value pairs, and reduce, that merges all intermediate
//! values associated with the same intermediate key." Input records are text
//! lines keyed by their byte offset (Hadoop's `TextInputFormat`), which is
//! what both applications in the paper's evaluation consume.

use crate::error::MrResult;
use std::sync::Arc;

/// A user-supplied map function.
pub trait Mapper: Send + Sync {
    /// Process one input record. `offset` is the byte offset of the line in
    /// its file (the "key" of Hadoop's text input format); `line` is the line
    /// without its trailing newline. Emitted pairs go to the shuffle.
    fn map(&self, offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()>;
}

/// A user-supplied reduce function.
pub trait Reducer: Send + Sync {
    /// Merge all values of one intermediate key. Emitted pairs are written to
    /// the task's output file.
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()>;
}

/// A reducer that forwards every (key, value) pair unchanged.
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        for v in values {
            emit(key.to_string(), v.clone());
        }
        Ok(())
    }
}

/// A reducer that sums integer values per key (the word-count/grep reducer).
pub struct SumReducer;

impl Reducer for SumReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        let total: u64 = values.iter().filter_map(|v| v.parse::<u64>().ok()).sum();
        emit(key.to_string(), total.to_string());
        Ok(())
    }
}

/// Where a job's input records come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSpec {
    /// Read text records from these files (directories are expanded).
    Files(Vec<String>),
    /// Generate `splits` synthetic splits of `records_per_split` empty
    /// records each. Used by generator jobs such as Random Text Writer, which
    /// have no input data (the Hadoop original uses the same trick).
    Synthetic {
        splits: usize,
        records_per_split: u64,
    },
}

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Human-readable job name (used in reports).
    pub name: String,
    /// Input description.
    pub input: InputSpec,
    /// Directory the output `part-*` files are written to. Must not exist.
    pub output_dir: String,
    /// Number of reduce tasks. Zero makes the job map-only: each map task
    /// writes its own `part-m-*` file directly, as Hadoop does.
    pub num_reducers: usize,
    /// Split size in bytes for file inputs (Hadoop uses the chunk size).
    pub split_size: u64,
    /// How many times a failed task is retried before the job fails.
    pub max_task_attempts: usize,
}

impl JobConfig {
    /// A configuration with sensible defaults for the given name, input and
    /// output.
    pub fn new(name: impl Into<String>, input: InputSpec, output_dir: impl Into<String>) -> Self {
        JobConfig {
            name: name.into(),
            input,
            output_dir: output_dir.into(),
            num_reducers: 1,
            split_size: 64 * 1024 * 1024,
            max_task_attempts: 4,
        }
    }

    /// Builder-style override of the reducer count.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n;
        self
    }

    /// Builder-style override of the split size.
    pub fn with_split_size(mut self, split_size: u64) -> Self {
        self.split_size = split_size;
        self
    }

    /// Builder-style override of the retry limit.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }
}

/// A runnable job: configuration plus user code.
pub struct Job {
    /// Job configuration.
    pub config: JobConfig,
    /// The map function.
    pub mapper: Arc<dyn Mapper>,
    /// The reduce function (ignored for map-only jobs).
    pub reducer: Arc<dyn Reducer>,
}

impl Job {
    /// Build a job from its parts.
    pub fn new(config: JobConfig, mapper: Arc<dyn Mapper>, reducer: Arc<dyn Reducer>) -> Self {
        Job {
            config,
            mapper,
            reducer,
        }
    }

    /// Build a map-only job (no reduce phase).
    pub fn map_only(config: JobConfig, mapper: Arc<dyn Mapper>) -> Self {
        let config = JobConfig {
            num_reducers: 0,
            ..config
        };
        Job {
            config,
            mapper,
            reducer: Arc::new(IdentityReducer),
        }
    }
}

/// Format an emitted pair the way Hadoop's `TextOutputFormat` does:
/// `key<TAB>value`, with the tab omitted when the value is empty.
pub fn format_output_record(key: &str, value: &str) -> String {
    if value.is_empty() {
        format!("{key}\n")
    } else {
        format!("{key}\t{value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpperMapper;
    impl Mapper for UpperMapper {
        fn map(
            &self,
            offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            emit(line.to_uppercase(), offset.to_string());
            Ok(())
        }
    }

    #[test]
    fn mapper_trait_objects_work() {
        let m: Arc<dyn Mapper> = Arc::new(UpperMapper);
        let mut out = Vec::new();
        m.map(7, "hello", &mut |k, v| out.push((k, v))).unwrap();
        assert_eq!(out, vec![("HELLO".to_string(), "7".to_string())]);
    }

    #[test]
    fn identity_reducer_passes_through() {
        let r = IdentityReducer;
        let mut out = Vec::new();
        r.reduce("k", &["a".into(), "b".into()], &mut |k, v| out.push((k, v)))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].1, "b");
    }

    #[test]
    fn sum_reducer_adds_counts() {
        let r = SumReducer;
        let mut out = Vec::new();
        r.reduce(
            "word",
            &["1".into(), "2".into(), "bad".into(), "4".into()],
            &mut |k, v| out.push((k, v)),
        )
        .unwrap();
        assert_eq!(out, vec![("word".to_string(), "7".to_string())]);
    }

    #[test]
    fn job_config_builders() {
        let c = JobConfig::new("grep", InputSpec::Files(vec!["/in".into()]), "/out")
            .with_reducers(4)
            .with_split_size(1024)
            .with_max_attempts(0);
        assert_eq!(c.num_reducers, 4);
        assert_eq!(c.split_size, 1024);
        assert_eq!(
            c.max_task_attempts, 1,
            "attempts are clamped to at least one"
        );
        assert_eq!(c.name, "grep");
    }

    #[test]
    fn map_only_forces_zero_reducers() {
        let c = JobConfig::new(
            "writer",
            InputSpec::Synthetic {
                splits: 3,
                records_per_split: 10,
            },
            "/out",
        )
        .with_reducers(5);
        let job = Job::map_only(c, Arc::new(UpperMapper));
        assert_eq!(job.config.num_reducers, 0);
    }

    #[test]
    fn output_record_formatting() {
        assert_eq!(format_output_record("k", "v"), "k\tv\n");
        assert_eq!(format_output_record("only-key", ""), "only-key\n");
    }
}
