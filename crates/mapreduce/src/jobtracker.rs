//! The jobtracker: job orchestration over the tasktrackers.
//!
//! The jobtracker is the "single master" of the Hadoop architecture the paper
//! describes (§II-A): it splits the input, hands map tasks to tasktrackers
//! (preferring trackers whose node holds the split's data), re-executes
//! failed tasks, runs the shuffle, schedules the reduce tasks, and reports
//! job-level counters. Tasktrackers are executed as real threads — one per
//! slot — so concurrent access to the storage layer is genuinely concurrent.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::Job;
use crate::scheduler::{pick_map_task, Locality, LocalityCounters};
use crate::split::{compute_splits, InputSplit};
use crate::tasktracker::{
    group_by_key, run_map_task, run_reduce_task, write_output_file, MapTaskOutput, TaskTracker,
};
use parking_lot::Mutex;
use simcluster::topology::ClusterTopology;
use std::time::{Duration, Instant};

/// Job-level counters and outcome, the analogue of Hadoop's job report.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Name of the job.
    pub job_name: String,
    /// Name of the storage backend the job ran over ("BSFS" / "HDFS").
    pub fs_name: String,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Map-task locality breakdown.
    pub locality: LocalityCounters,
    /// Task attempts that failed and were retried.
    pub task_retries: usize,
    /// Input records consumed by the map phase.
    pub input_records: u64,
    /// Records produced by the reduce phase (or the map phase for map-only
    /// jobs).
    pub output_records: u64,
    /// Bytes read from the storage layer by map tasks.
    pub input_bytes: u64,
    /// Bytes written to the storage layer by output tasks.
    pub output_bytes: u64,
    /// Wall-clock duration of the job.
    pub elapsed: Duration,
    /// Paths of the `part-*` output files.
    pub output_files: Vec<String>,
}

impl JobResult {
    /// Completion time in seconds (the metric the paper reports for the
    /// application experiments).
    pub fn completion_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// The framework master.
pub struct JobTracker {
    topology: ClusterTopology,
    trackers: Vec<TaskTracker>,
}

/// Shared map-phase state guarded by one mutex.
struct MapPhase {
    pending: Vec<usize>,
    attempts: Vec<usize>,
    results: Vec<Option<MapTaskOutput>>,
    outstanding: usize,
    failure: Option<MrError>,
    locality: LocalityCounters,
    retries: usize,
    /// Output bytes written directly by map tasks (map-only jobs).
    map_output_bytes: u64,
    map_output_records: u64,
    output_files: Vec<String>,
}

/// Shared reduce-phase state.
struct ReducePhase {
    pending: Vec<usize>,
    attempts: Vec<usize>,
    done: usize,
    failure: Option<MrError>,
    retries: usize,
    output_bytes: u64,
    output_records: u64,
    output_files: Vec<String>,
}

impl JobTracker {
    /// Create a jobtracker over one tasktracker per node of the topology,
    /// with default slot counts.
    pub fn new(topology: &ClusterTopology) -> Self {
        let trackers = topology.all_nodes().map(TaskTracker::new).collect();
        JobTracker {
            topology: topology.clone(),
            trackers,
        }
    }

    /// Create a jobtracker over an explicit set of tasktrackers.
    pub fn with_trackers(topology: &ClusterTopology, trackers: Vec<TaskTracker>) -> Self {
        assert!(!trackers.is_empty(), "at least one tasktracker is required");
        JobTracker {
            topology: topology.clone(),
            trackers,
        }
    }

    /// The tasktrackers this jobtracker drives.
    pub fn trackers(&self) -> &[TaskTracker] {
        &self.trackers
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Run a job over the given storage backend and return its report.
    pub fn run(&self, fs: &dyn DistFs, job: &Job) -> MrResult<JobResult> {
        let start = Instant::now();
        let config = &job.config;
        if config.output_dir.is_empty() {
            return Err(MrError::InvalidJob(
                "output directory must not be empty".into(),
            ));
        }
        if fs.exists(&config.output_dir) {
            return Err(MrError::OutputExists(config.output_dir.clone()));
        }
        fs.mkdirs(&config.output_dir)?;

        let splits = compute_splits(fs, &config.input, config.split_size)?;
        let num_maps = splits.len();
        let map_only = config.num_reducers == 0;
        let partitions = if map_only { 1 } else { config.num_reducers };

        // ------------------------------------------------------------------
        // Map phase.
        // ------------------------------------------------------------------
        let map_state = Mutex::new(MapPhase {
            pending: (0..num_maps).collect(),
            attempts: vec![0; num_maps],
            results: (0..num_maps).map(|_| None).collect(),
            outstanding: 0,
            failure: None,
            locality: LocalityCounters::default(),
            retries: 0,
            map_output_bytes: 0,
            map_output_records: 0,
            output_files: Vec::new(),
        });

        std::thread::scope(|scope| {
            for tracker in &self.trackers {
                for _slot in 0..tracker.map_slots {
                    let map_state = &map_state;
                    let splits = &splits;
                    let topology = &self.topology;
                    let tracker = *tracker;
                    let job = &*job;
                    let output_dir = config.output_dir.clone();
                    let max_attempts = config.max_task_attempts;
                    // Each slot gets a storage handle bound to the tracker's
                    // node, so its I/O originates there.
                    let local_fs = fs.on_node(tracker.node);
                    scope.spawn(move || {
                        map_worker_loop(
                            &*local_fs,
                            topology,
                            tracker,
                            splits,
                            job,
                            partitions,
                            map_only,
                            &output_dir,
                            max_attempts,
                            map_state,
                        );
                    });
                }
            }
        });

        let mut map_state = map_state.into_inner();
        if let Some(err) = map_state.failure.take() {
            return Err(err);
        }
        let map_outputs: Vec<MapTaskOutput> = map_state
            .results
            .into_iter()
            .map(|r| r.expect("all map tasks finished"))
            .collect();
        let input_records: u64 = map_outputs.iter().map(|o| o.records_read).sum();
        let input_bytes: u64 = map_outputs.iter().map(|o| o.bytes_read).sum();

        if map_only {
            let mut output_files = map_state.output_files;
            output_files.sort();
            return Ok(JobResult {
                job_name: config.name.clone(),
                fs_name: fs.name().to_string(),
                map_tasks: num_maps,
                reduce_tasks: 0,
                locality: map_state.locality,
                task_retries: map_state.retries,
                input_records,
                output_records: map_state.map_output_records,
                input_bytes,
                output_bytes: map_state.map_output_bytes,
                elapsed: start.elapsed(),
                output_files,
            });
        }

        // ------------------------------------------------------------------
        // Shuffle: regroup the map outputs by reduce partition, then by key.
        // ------------------------------------------------------------------
        let mut partition_data: Vec<Vec<(String, String)>> = vec![Vec::new(); partitions];
        for output in map_outputs {
            for (p, pairs) in output.partitions.into_iter().enumerate() {
                partition_data[p].extend(pairs);
            }
        }
        let grouped: Vec<_> = partition_data.into_iter().map(group_by_key).collect();

        // ------------------------------------------------------------------
        // Reduce phase.
        // ------------------------------------------------------------------
        let reduce_state = Mutex::new(ReducePhase {
            pending: (0..partitions).collect(),
            attempts: vec![0; partitions],
            done: 0,
            failure: None,
            retries: 0,
            output_bytes: 0,
            output_records: 0,
            output_files: Vec::new(),
        });

        std::thread::scope(|scope| {
            for tracker in &self.trackers {
                for _slot in 0..tracker.reduce_slots {
                    let reduce_state = &reduce_state;
                    let grouped = &grouped;
                    let job = &*job;
                    let output_dir = config.output_dir.clone();
                    let max_attempts = config.max_task_attempts;
                    let local_fs = fs.on_node(tracker.node);
                    scope.spawn(move || {
                        reduce_worker_loop(
                            &*local_fs,
                            grouped,
                            job,
                            &output_dir,
                            max_attempts,
                            reduce_state,
                        );
                    });
                }
            }
        });

        let mut reduce_state = reduce_state.into_inner();
        if let Some(err) = reduce_state.failure.take() {
            return Err(err);
        }
        let mut output_files = reduce_state.output_files;
        output_files.sort();

        Ok(JobResult {
            job_name: config.name.clone(),
            fs_name: fs.name().to_string(),
            map_tasks: num_maps,
            reduce_tasks: partitions,
            locality: map_state.locality,
            task_retries: map_state.retries + reduce_state.retries,
            input_records,
            output_records: reduce_state.output_records,
            input_bytes,
            output_bytes: reduce_state.output_bytes,
            elapsed: start.elapsed(),
            output_files,
        })
    }
}

/// Worker loop executed by every map slot.
#[allow(clippy::too_many_arguments)]
fn map_worker_loop(
    fs: &dyn DistFs,
    topology: &ClusterTopology,
    tracker: TaskTracker,
    splits: &[InputSplit],
    job: &Job,
    partitions: usize,
    map_only: bool,
    output_dir: &str,
    max_attempts: usize,
    state: &Mutex<MapPhase>,
) {
    loop {
        // Claim a task (or decide to wait / exit).
        let claimed: Option<(usize, Locality)> = {
            let mut s = state.lock();
            if s.failure.is_some() {
                return;
            }
            match pick_map_task(topology, tracker.node, &s.pending, splits) {
                Some((pos, locality)) => {
                    let split_idx = s.pending.swap_remove(pos);
                    s.outstanding += 1;
                    Some((split_idx, locality))
                }
                None => {
                    // Nothing pending. If other workers are still running
                    // tasks, one of those could fail and requeue, so wait;
                    // if nothing is outstanding either, the phase is over.
                    if s.outstanding == 0 {
                        return;
                    }
                    None
                }
            }
        };

        let (split_idx, locality) = match claimed {
            Some(c) => c,
            None => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };

        // Execute the task outside the lock.
        let outcome = run_map_task(fs, &splits[split_idx], &*job.mapper, partitions).and_then(
            |mut output| {
                if map_only {
                    // Map-only jobs write their bucket straight to the output
                    // directory, one part file per map task, as Hadoop does.
                    let path = format!("{output_dir}/part-m-{split_idx:05}");
                    let records = std::mem::take(&mut output.partitions[0]);
                    let bytes = write_output_file(fs, &path, &records)?;
                    Ok((output, Some((path, bytes, records.len() as u64))))
                } else {
                    Ok((output, None))
                }
            },
        );

        let mut s = state.lock();
        s.outstanding -= 1;
        match outcome {
            Ok((output, map_written)) => {
                s.locality.record(locality);
                if let Some((path, bytes, records)) = map_written {
                    s.output_files.push(path);
                    s.map_output_bytes += bytes;
                    s.map_output_records += records;
                }
                s.results[split_idx] = Some(output);
            }
            Err(err) => {
                s.attempts[split_idx] += 1;
                s.retries += 1;
                if s.attempts[split_idx] >= max_attempts {
                    s.failure = Some(MrError::TaskFailed {
                        task: format!("map-{split_idx}"),
                        attempts: s.attempts[split_idx],
                        last_error: err.to_string(),
                    });
                } else {
                    if map_only {
                        // A failed attempt may have left a partial part file
                        // behind; remove it so the retry can recreate it.
                        let path = format!("{output_dir}/part-m-{split_idx:05}");
                        let _ = fs.delete(&path, false);
                    }
                    s.pending.push(split_idx);
                }
            }
        }
    }
}

/// Worker loop executed by every reduce slot.
fn reduce_worker_loop(
    fs: &dyn DistFs,
    grouped: &[std::collections::BTreeMap<String, Vec<String>>],
    job: &Job,
    output_dir: &str,
    max_attempts: usize,
    state: &Mutex<ReducePhase>,
) {
    loop {
        let claimed = {
            let mut s = state.lock();
            if s.failure.is_some() {
                return;
            }
            match s.pending.pop() {
                Some(p) => Some(p),
                None => {
                    if s.done + s.pending.len() >= grouped.len() && s.pending.is_empty() {
                        // All partitions either done or running elsewhere;
                        // if something requeues we will be woken by the loop.
                        if s.done == grouped.len() {
                            return;
                        }
                        None
                    } else {
                        None
                    }
                }
            }
        };

        let partition = match claimed {
            Some(p) => p,
            None => {
                // Check for completion before sleeping.
                {
                    let s = state.lock();
                    if s.failure.is_some() || s.done == grouped.len() {
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };

        let outcome = run_reduce_task(&grouped[partition], &*job.reducer).and_then(|records| {
            let path = format!("{output_dir}/part-r-{partition:05}");
            let bytes = write_output_file(fs, &path, &records)?;
            Ok((path, bytes, records.len() as u64))
        });

        let mut s = state.lock();
        match outcome {
            Ok((path, bytes, records)) => {
                s.done += 1;
                s.output_bytes += bytes;
                s.output_records += records;
                s.output_files.push(path);
            }
            Err(err) => {
                s.attempts[partition] += 1;
                s.retries += 1;
                if s.attempts[partition] >= max_attempts {
                    s.failure = Some(MrError::TaskFailed {
                        task: format!("reduce-{partition}"),
                        attempts: s.attempts[partition],
                        last_error: err.to_string(),
                    });
                } else {
                    // The part file may exist from the failed attempt; remove
                    // it so the retry can recreate it.
                    let path = format!("{output_dir}/part-r-{partition:05}");
                    let _ = fs.delete(&path, false);
                    s.pending.push(partition);
                }
            }
        }
    }
}
