//! Criterion bench for E1: concurrent reads from different files, BSFS vs
//! HDFS, laptop scale (real threads and bytes). The paper-scale sweep lives
//! in the `e1_read_distinct` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce::fs::DistFs;
use workloads::microbench::{prepare_distinct_files, read_distinct_files, MicrobenchConfig};

fn bench_read_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_read_distinct_files");
    group.sample_size(10);
    for &clients in bench::SMALL_CLIENT_COUNTS {
        let config = MicrobenchConfig {
            clients,
            bytes_per_client: 1 << 20,
            record_size: 4096,
        };
        let bsfs = bench::small_bsfs(4, 256 * 1024);
        prepare_distinct_files(&bsfs, &config).unwrap();
        group.bench_with_input(BenchmarkId::new("BSFS", clients), &clients, |b, _| {
            b.iter(|| read_distinct_files(&bsfs as &dyn DistFs, &config).unwrap())
        });
        println!(
            "E1/{clients} clients {}",
            bench::read_path_report(bsfs.inner().storage())
        );
        let hdfs = bench::small_hdfs(4, 256 * 1024);
        prepare_distinct_files(&hdfs, &config).unwrap();
        group.bench_with_input(BenchmarkId::new("HDFS", clients), &clients, |b, _| {
            b.iter(|| read_distinct_files(&hdfs as &dyn DistFs, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_distinct);
criterion_main!(benches);
