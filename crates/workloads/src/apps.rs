//! The MapReduce applications of the paper's evaluation (§IV-C), plus word
//! count as a third, commonly expected example.
//!
//! * **Random Text Writer** — a map-only job that "generates a huge sequence
//!   of random sentences formed from a list of predefined words"; its access
//!   pattern is "concurrent massively parallel writes to different files".
//! * **Distributed Grep** — "scans huge input data to find occurrences of
//!   particular expressions"; its access pattern is "concurrent reads from
//!   the same huge file".
//! * **Word Count** — the canonical MapReduce example, used by the extra
//!   integration tests and the quickstart example.
//!
//! Each application is provided both as mapper/reducer types and as a
//! convenience `*_job` constructor returning a ready-to-run
//! [`mapreduce::Job`].

use crate::textgen::TextGenerator;
use mapreduce::job::{InputSpec, Job, JobConfig, Mapper, Reducer, SumReducer};
use mapreduce::MrResult;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Random Text Writer
// ---------------------------------------------------------------------------

/// Mapper of the Random Text Writer job: every synthetic input record becomes
/// one randomly generated sentence. Each map task seeds its generator from
/// the record offset so output is deterministic yet different per record.
pub struct RandomTextMapper {
    /// Base seed mixed into every record's generator.
    pub seed: u64,
    /// Approximate bytes of text to emit per record.
    pub bytes_per_record: usize,
}

impl Mapper for RandomTextMapper {
    fn map(&self, offset: u64, _line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        let mut generator =
            TextGenerator::new(self.seed ^ (offset.wrapping_mul(0x9E3779B97F4A7C15)));
        let mut produced = 0usize;
        while produced < self.bytes_per_record {
            let sentence = generator.sentence();
            produced += sentence.len() + 1;
            emit(sentence, String::new());
        }
        Ok(())
    }
}

/// Build the Random Text Writer job: `maps` map tasks, each generating
/// `records_per_map` records of roughly `bytes_per_record` bytes, written as
/// one output file per map task (map-only, like Hadoop's `randomtextwriter`).
pub fn random_text_writer_job(
    output_dir: &str,
    maps: usize,
    records_per_map: u64,
    bytes_per_record: usize,
    seed: u64,
) -> Job {
    let config = JobConfig::new(
        "random-text-writer",
        InputSpec::Synthetic {
            splits: maps,
            records_per_split: records_per_map,
        },
        output_dir,
    );
    Job::map_only(
        config,
        Arc::new(RandomTextMapper {
            seed,
            bytes_per_record,
        }),
    )
}

// ---------------------------------------------------------------------------
// Distributed Grep
// ---------------------------------------------------------------------------

/// Mapper of the Distributed Grep job: emits `(pattern, 1)` for every line
/// containing the pattern (substring match, as in Hadoop's `grep` example
/// when given a literal expression).
pub struct GrepMapper {
    /// The expression being searched for.
    pub pattern: String,
}

impl Mapper for GrepMapper {
    fn map(&self, _offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        if line.contains(&self.pattern) {
            emit(self.pattern.clone(), "1".to_string());
        }
        Ok(())
    }
}

/// Build the Distributed Grep job over `input_paths`, counting lines that
/// contain `pattern`.
pub fn distributed_grep_job(
    input_paths: Vec<String>,
    output_dir: &str,
    pattern: &str,
    split_size: u64,
) -> Job {
    let config = JobConfig::new(
        "distributed-grep",
        InputSpec::Files(input_paths),
        output_dir,
    )
    .with_split_size(split_size)
    .with_reducers(1);
    Job::new(
        config,
        Arc::new(GrepMapper {
            pattern: pattern.to_string(),
        }),
        Arc::new(SumReducer),
    )
}

// ---------------------------------------------------------------------------
// Word Count
// ---------------------------------------------------------------------------

/// Mapper of the Word Count job: emits `(word, 1)` for every whitespace-
/// separated token.
pub struct WordCountMapper;

impl Mapper for WordCountMapper {
    fn map(&self, _offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        for word in line.split_whitespace() {
            emit(word.to_string(), "1".to_string());
        }
        Ok(())
    }
}

/// Reducer alias used by word count (sums the per-word ones).
pub type WordCountReducer = SumReducer;

/// Build a Word Count job.
pub fn word_count_job(
    input_paths: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_size: u64,
) -> Job {
    let config = JobConfig::new("word-count", InputSpec::Files(input_paths), output_dir)
        .with_split_size(split_size)
        .with_reducers(reducers);
    Job::new(config, Arc::new(WordCountMapper), Arc::new(SumReducer))
}

/// A reducer that merely forwards pairs — used by tests that want grep output
/// per matching line rather than aggregated counts.
pub struct PassThroughReducer;

impl Reducer for PassThroughReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        for v in values {
            emit(key.to_string(), v.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
    use mapreduce::jobtracker::JobTracker;
    use simcluster::ClusterTopology;

    fn bsfs_fs(nodes: u32) -> (ClusterTopology, BsfsFs) {
        let topo = ClusterTopology::flat(nodes);
        let provider_nodes: Vec<_> = topo.all_nodes().collect();
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::for_tests()
                .with_providers(nodes as usize)
                .with_page_size(1024),
            &topo,
            &provider_nodes,
        );
        (
            topo.clone(),
            BsfsFs::new(Bsfs::new(
                storage,
                BsfsConfig::for_tests().with_block_size(1024),
            )),
        )
    }

    #[test]
    fn random_text_writer_generates_expected_volume() {
        let (topo, fs) = bsfs_fs(4);
        let job = random_text_writer_job("/rtw-out", 4, 8, 256, 11);
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        assert_eq!(result.map_tasks, 4);
        assert_eq!(result.reduce_tasks, 0);
        assert_eq!(result.output_files.len(), 4);
        // 4 maps x 8 records x >=256 bytes each.
        assert!(result.output_bytes >= 4 * 8 * 256);
        // Output is actual text from the vocabulary.
        let sample = fs.read_file(&result.output_files[0]).unwrap();
        let text = String::from_utf8_lossy(&sample);
        let first_word = text.split_whitespace().next().unwrap();
        assert!(crate::textgen::WORDS.contains(&first_word));
    }

    #[test]
    fn random_text_writer_is_deterministic_per_seed() {
        let (topo_a, fs_a) = bsfs_fs(2);
        let (topo_b, fs_b) = bsfs_fs(2);
        let job_a = random_text_writer_job("/out", 2, 4, 128, 99);
        let job_b = random_text_writer_job("/out", 2, 4, 128, 99);
        let ra = JobTracker::new(&topo_a).run(&fs_a, &job_a).unwrap();
        let rb = JobTracker::new(&topo_b).run(&fs_b, &job_b).unwrap();
        for (a, b) in ra.output_files.iter().zip(&rb.output_files) {
            assert_eq!(fs_a.read_file(a).unwrap(), fs_b.read_file(b).unwrap());
        }
    }

    #[test]
    fn distributed_grep_counts_occurrences() {
        let (topo, fs) = bsfs_fs(4);
        // Build an input with a known number of matching lines.
        let mut generator = TextGenerator::new(3);
        let mut text = String::new();
        let mut expected = 0u64;
        for i in 0..300 {
            if i % 9 == 0 {
                text.push_str("the stradametrical needle is here\n");
                expected += 1;
            } else {
                text.push_str(&generator.sentence());
                text.push('\n');
            }
        }
        fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
        let job = distributed_grep_job(vec!["/input/huge.txt".into()], "/grep-out", "needle", 2048);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&out),
            format!("needle\t{expected}\n")
        );
        assert!(
            result.map_tasks > 1,
            "the huge file should be processed by several maps"
        );
    }

    #[test]
    fn grep_with_no_matches_produces_empty_output() {
        let (topo, fs) = bsfs_fs(2);
        fs.write_file("/input/plain.txt", b"nothing interesting here\nat all\n")
            .unwrap();
        let job = distributed_grep_job(vec!["/input/plain.txt".into()], "/out", "unfindable", 1024);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.output_records, 0);
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn word_count_over_generated_text_matches_reference() {
        let (topo, fs) = bsfs_fs(4);
        let mut generator = TextGenerator::new(5);
        let text = generator.sentences(200);
        fs.write_file("/input/words.txt", text.as_bytes()).unwrap();
        let job = word_count_job(vec!["/input/words.txt".into()], "/wc-out", 3, 1500);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();

        // Reference counts computed directly.
        let mut expected = std::collections::BTreeMap::new();
        for w in text.split_whitespace() {
            *expected.entry(w.to_string()).or_insert(0u64) += 1;
        }
        let mut got = std::collections::BTreeMap::new();
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            for line in String::from_utf8_lossy(&content).lines() {
                let mut it = line.split('\t');
                let w = it.next().unwrap().to_string();
                let c: u64 = it.next().unwrap().parse().unwrap();
                got.insert(w, c);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn apps_run_identically_on_hdfs() {
        let topo = ClusterTopology::flat(4);
        let nodes: Vec<_> = topo.all_nodes().collect();
        let fs = HdfsFs::new(hdfs_sim::Hdfs::with_topology(
            hdfs_sim::HdfsConfig::for_tests().with_chunk_size(1024),
            &topo,
            &nodes,
        ));
        let mut generator = TextGenerator::new(3);
        let mut text = String::new();
        for i in 0..100 {
            if i % 10 == 0 {
                text.push_str("needle line\n");
            } else {
                text.push_str(&generator.sentence());
                text.push('\n');
            }
        }
        fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
        let job = distributed_grep_job(vec!["/input/huge.txt".into()], "/out", "needle", 1024);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert_eq!(String::from_utf8_lossy(&out), "needle\t10\n");
        assert_eq!(result.fs_name, "HDFS");
    }

    #[test]
    fn pass_through_reducer_forwards_pairs() {
        let r = PassThroughReducer;
        let mut out = Vec::new();
        r.reduce("k", &["v1".into(), "v2".into()], &mut |k, v| {
            out.push((k, v))
        })
        .unwrap();
        assert_eq!(out.len(), 2);
    }
}
