//! # simcluster — a Grid'5000 stand-in
//!
//! The paper evaluates BSFS and HDFS on the Grid'5000 experimental testbed:
//! 270 physical nodes spread over racks and sites, with up to 250 concurrent
//! clients each moving about 1 GB of data. We obviously cannot requisition a
//! grid from a test suite, so this crate provides the pieces needed to run the
//! *same experiments* at the *same scale* on a single machine:
//!
//! * [`topology`] — a declarative description of nodes, racks and sites with a
//!   convenience builder for Grid'5000-like deployments,
//! * [`time`] — a virtual clock ([`time::SimTime`], [`time::SimDuration`])
//!   with microsecond resolution,
//! * [`clock`] — injectable clocks for *thread-based* components: the
//!   [`clock::Clock`] trait with a production [`clock::WallClock`] and a
//!   manually advanced [`clock::SimClock`] whose sleeps are virtual (used by
//!   the MapReduce straggler/speculation tests),
//! * [`netmodel`] — per-link bandwidth/latency parameters and path
//!   computation between any two nodes,
//! * [`flowsim`] — a deterministic flow-level network simulator using
//!   progressive-filling max-min fair bandwidth sharing; client processes are
//!   sequences of transfers and compute phases, and the simulator reports
//!   per-process completion times and aggregate throughput,
//! * [`failure`] — failure schedules for killing nodes at chosen virtual
//!   times, and churn schedules ([`failure::ChurnSchedule`]) interleaving
//!   kill and join events at a configurable rate,
//! * [`detector`] — a timeout/suspicion heartbeat failure detector driven on
//!   any [`clock::Clock`], so components discover dead peers rather than
//!   being told,
//! * [`metrics`] — small helpers to aggregate throughput series.
//!
//! The storage systems themselves (`blobseer`, `hdfs-sim`, `bsfs`) are real
//! implementations that move real bytes; this crate is only consulted when an
//! experiment wants *paper-scale* numbers: the experiment harness asks the
//! storage system where each block would be placed (using its real placement
//! logic) and feeds the resulting transfers into [`flowsim::FlowSimulator`].
//!
//! ## Quick example
//!
//! ```
//! use simcluster::topology::ClusterTopology;
//! use simcluster::netmodel::NetworkModel;
//! use simcluster::flowsim::{ClientProcess, FlowSimulator, Step};
//!
//! // 2 sites x 2 racks x 4 nodes = 16 nodes.
//! let topo = ClusterTopology::builder()
//!     .sites(2)
//!     .racks_per_site(2)
//!     .nodes_per_rack(4)
//!     .build();
//! let net = NetworkModel::grid5000_like();
//! let mut sim = FlowSimulator::new(&topo, net);
//!
//! // One client on node 0 pushes 64 MiB to node 5.
//! let p = ClientProcess::new(topo.node(0))
//!     .then(Step::transfer(topo.node(0), topo.node(5), 64 << 20));
//! let report = sim.run(vec![p]);
//! assert!(report.makespan().as_secs_f64() > 0.0);
//! ```

pub mod clock;
pub mod detector;
pub mod failure;
pub mod flowsim;
pub mod metrics;
pub mod netmodel;
pub mod time;
pub mod topology;

pub use clock::{Clock, SimClock, WallClock};
pub use detector::{DetectorConfig, FailureDetector, MemberHealth};
pub use failure::{ChurnEvent, ChurnEventKind, ChurnSchedule, FailureSchedule};
pub use flowsim::{ClientProcess, FlowSimulator, SimReport, Step};
pub use netmodel::NetworkModel;
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterTopology, NodeId, RackId, SiteId};
