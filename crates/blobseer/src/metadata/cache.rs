//! Client-side cache of segment-tree nodes.
//!
//! Tree nodes are *versioned and immutable*: a `NodeKey` names the node
//! created by exactly one write, and nothing ever changes the bytes stored
//! under it ("data is never overwritten", paper §III-A). A cached node can
//! therefore never go stale — there is no invalidation protocol, no
//! timestamps, no leases; the only policy decision is capacity. That is the
//! whole reason BlobSeer's metadata can be cached this aggressively, and it
//! is why the cache lives on the client side of the DHT rather than on the
//! metadata providers: every hit removes a client-to-provider round trip.
//!
//! The implementation is a sharded clock (second-chance) cache: the key hash
//! picks a shard, each shard is an independently locked ring of slots, and
//! eviction sweeps the ring clearing reference bits until it finds a slot
//! that was not touched since the last sweep. Clock keeps the hot upper
//! levels of the tree resident like LRU would, without having to reorder a
//! list on every hit — a hit is one hash lookup and one relaxed bit store.

use crate::metadata::{NodeKey, TreeNode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. A power of two so the shard index
/// is a mask of the key hash.
const SHARDS: usize = 16;

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the DHT.
    pub misses: u64,
    /// Nodes inserted (both demand fills and write-path pre-warming).
    pub insertions: u64,
    /// Nodes evicted to make room.
    pub evictions: u64,
    /// Nodes currently resident.
    pub entries: u64,
}

impl MetadataCacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    key: NodeKey,
    node: TreeNode,
    referenced: bool,
}

struct Shard {
    /// Key -> index into `slots`.
    index: HashMap<NodeKey, usize>,
    slots: Vec<Slot>,
    /// Clock hand: next slot the eviction sweep examines.
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            index: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    fn get(&mut self, key: &NodeKey) -> Option<TreeNode> {
        let slot = *self.index.get(key)?;
        self.slots[slot].referenced = true;
        Some(self.slots[slot].node.clone())
    }

    /// Insert or refresh a node. Returns true when an existing entry was
    /// evicted to make room.
    fn insert(&mut self, key: NodeKey, node: TreeNode) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            // Immutable nodes make a re-insert a no-op value-wise, but the
            // write may be pre-warming a slot that demand-filling put there
            // first; refresh the reference bit either way.
            self.slots[slot].referenced = true;
            self.slots[slot].node = node;
            return false;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                node,
                referenced: true,
            });
            return false;
        }
        // Clock sweep: give every referenced slot a second chance.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
                continue;
            }
            self.index.remove(&slot.key);
            self.index.insert(key, self.hand);
            *slot = Slot {
                key,
                node,
                referenced: true,
            };
            self.hand = (self.hand + 1) % self.capacity;
            return true;
        }
    }
}

/// A sharded, capacity-bounded cache of `NodeKey -> TreeNode`.
pub struct MetadataCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl MetadataCache {
    /// Create a cache holding at most `capacity` nodes (rounded up so every
    /// shard holds at least one).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        MetadataCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &NodeKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Look a node up, counting the hit or miss.
    pub fn get(&self, key: &NodeKey) -> Option<TreeNode> {
        let found = self.shard_of(key).lock().get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert (or refresh) a node.
    pub fn insert(&self, key: NodeKey, node: TreeNode) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if self.shard_of(&key).lock().insert(key, node) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> MetadataCacheStats {
        MetadataCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().slots.len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlobId, ProviderId, Version};

    fn key(v: u64, o: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            offset: o,
            span: 1,
        }
    }

    fn leaf(page: u64) -> TreeNode {
        TreeNode::Leaf {
            page,
            providers: vec![ProviderId(page as u32)],
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = MetadataCache::new(8);
        assert!(cache.get(&key(1, 0)).is_none());
        cache.insert(key(1, 0), leaf(0));
        assert_eq!(cache.get(&key(1, 0)), Some(leaf(0)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_bounded_and_eviction_counted() {
        let cache = MetadataCache::new(32);
        for i in 0..1000 {
            cache.insert(key(1, i), leaf(i));
        }
        let stats = cache.stats();
        // Each of the 16 shards holds at most ceil(32/16) = 2 slots.
        assert!(
            stats.entries <= 32,
            "entries {} exceed capacity",
            stats.entries
        );
        assert_eq!(stats.insertions, 1000);
        assert_eq!(stats.evictions, 1000 - stats.entries);
    }

    #[test]
    fn clock_sweep_evicts_unreferenced_slots_first() {
        // A single-shard-sized cache would be flaky to target through the
        // hash, so drive one shard directly.
        let mut shard = Shard::new(2);
        shard.insert(key(1, 0), leaf(0));
        shard.insert(key(1, 1), leaf(1));
        // The first over-capacity insert sweeps both reference bits clear,
        // evicts slot 0 and leaves slot 1's bit cleared.
        shard.insert(key(1, 2), leaf(2));
        assert!(shard.get(&key(1, 2)).is_some());
        assert!(shard.get(&key(1, 0)).is_none());
        assert_eq!(shard.slots.len(), 2);
        // Touch node 2 (done by the gets above) and insert again: node 1,
        // whose bit is still clear, goes; the referenced node 2 survives.
        shard.insert(key(1, 3), leaf(3));
        assert!(shard.get(&key(1, 2)).is_some());
        assert!(shard.get(&key(1, 1)).is_none());
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let cache = MetadataCache::new(8);
        cache.insert(key(1, 0), leaf(0));
        cache.insert(key(1, 0), leaf(0));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(MetadataCache::new(64));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500 {
                        let k = key(t, i % 50);
                        cache.insert(k, leaf(i % 50));
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.insertions, 8 * 500);
        assert!(stats.entries <= 64);
    }
}
