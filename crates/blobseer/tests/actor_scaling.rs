//! The headline property of the actor data plane: system thread count is a
//! function of the deployment, not of client concurrency. Scaling concurrent
//! readers 16x must not move the process-wide thread-census peak.
//!
//! The census (`miniexec::census`) is process-global, so this file holds
//! exactly one test — its own integration binary, its own process — to keep
//! the peak assertion deterministic.

use blobseer::{BlobSeer, BlobSeerConfig};
use std::sync::Arc;

/// E1-style workload: `clients` concurrent readers each scan the whole blob
/// in page-sized requests. Client threads are plain test threads and are not
/// census-registered; only system threads (executor workers, actors) count.
fn concurrent_scan(sys: &Arc<BlobSeer>, blob: blobseer::BlobId, len: u64, clients: usize) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = sys.client_on(sys.topology().node((c % 8) as u32));
            scope.spawn(move || {
                let step = 64u64;
                let mut off = 0;
                while off < len {
                    let n = step.min(len - off);
                    let bytes = client.read_latest(blob, off, n).unwrap();
                    assert_eq!(bytes.len() as u64, n);
                    off += n;
                }
            });
        }
    });
}

#[test]
fn census_peak_is_flat_from_4_to_64_clients() {
    let sys = BlobSeer::new(
        BlobSeerConfig::for_tests()
            .with_providers(8)
            .with_io_parallelism(4)
            .with_page_replication(2),
    );
    let client = sys.client();
    let blob = client.create(Some(64)).unwrap();
    let data: Vec<u8> = (0..64 * 32).map(|i| (i % 239) as u8).collect();
    client.write(blob, 0, &data).unwrap();
    let len = data.len() as u64;

    // Warm-up pass: lazily-started system threads (executor workers) all
    // come up here, so the two measured passes see a settled baseline.
    concurrent_scan(&sys, blob, len, 4);
    let baseline = miniexec::census::peak();
    assert!(baseline > 0, "actors and workers must be census-registered");

    concurrent_scan(&sys, blob, len, 4);
    let peak_lo = miniexec::census::peak();

    concurrent_scan(&sys, blob, len, 64);
    let peak_hi = miniexec::census::peak();

    assert_eq!(
        peak_lo, peak_hi,
        "16x more concurrent clients must not spawn more system threads"
    );
    assert_eq!(
        baseline, peak_hi,
        "client scaling started new system threads"
    );
}
