//! Datanodes: the chunk servers of the HDFS baseline.
//!
//! "Servers called datanodes are responsible for storing data, while the
//! namenode takes care of the file system namespace and the data location"
//! (paper §II-C). A datanode stores whole chunks in memory (or any
//! [`kvstore::PageStore`] backend), reports how much it holds, and can be
//! killed for fault-tolerance experiments.

use bytes::Bytes;
use kvstore::{MemStore, PageStore};
use simcluster::NodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a datanode within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatanodeId(pub u32);

/// A globally unique chunk identifier, assigned by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// The storage key under which the chunk is kept on a datanode.
    pub fn storage_key(&self) -> Vec<u8> {
        format!("chunk-{}", self.0).into_bytes()
    }
}

/// Traffic counters for one datanode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatanodeStats {
    /// Chunks currently stored.
    pub chunks: usize,
    /// Bytes currently stored.
    pub stored_bytes: u64,
    /// Chunks received since start.
    pub writes: u64,
    /// Chunks served since start.
    pub reads: u64,
}

/// One chunk server.
pub struct Datanode {
    id: DatanodeId,
    node: NodeId,
    store: Arc<dyn PageStore>,
    alive: AtomicBool,
    writes: AtomicU64,
    reads: AtomicU64,
}

impl Datanode {
    /// Create a datanode backed by an in-memory store.
    pub fn in_memory(id: DatanodeId, node: NodeId) -> Self {
        Self::with_store(id, node, Arc::new(MemStore::new()))
    }

    /// Create a datanode backed by an arbitrary store.
    pub fn with_store(id: DatanodeId, node: NodeId, store: Arc<dyn PageStore>) -> Self {
        Datanode {
            id,
            node,
            store,
            alive: AtomicBool::new(true),
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// This datanode's id.
    pub fn id(&self) -> DatanodeId {
        self.id
    }

    /// The cluster node this datanode runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the datanode serving requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash (data is retained for a later revive).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the datanode back.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Store a chunk. Returns false when the datanode is down.
    pub fn put_chunk(&self, chunk: ChunkId, data: Bytes) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.store.put(&chunk.storage_key(), data).is_ok()
    }

    /// Fetch a chunk. Returns `None` when the datanode is down or does not
    /// hold the chunk.
    pub fn get_chunk(&self, chunk: ChunkId) -> Option<Bytes> {
        if !self.is_alive() {
            return None;
        }
        match self.store.get(&chunk.storage_key()) {
            Ok(Some(data)) => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            _ => None,
        }
    }

    /// Drop a chunk (file deletion).
    pub fn delete_chunk(&self, chunk: ChunkId) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.store.delete(&chunk.storage_key()).unwrap_or(false)
    }

    /// Current counters.
    pub fn stats(&self) -> DatanodeStats {
        DatanodeStats {
            chunks: self.store.len(),
            stored_bytes: self.store.data_bytes(),
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_storage_roundtrip() {
        let dn = Datanode::in_memory(DatanodeId(0), NodeId(3));
        assert_eq!(dn.id(), DatanodeId(0));
        assert_eq!(dn.node(), NodeId(3));
        assert!(dn.put_chunk(ChunkId(1), Bytes::from_static(b"chunk data")));
        assert_eq!(
            dn.get_chunk(ChunkId(1)).unwrap(),
            Bytes::from_static(b"chunk data")
        );
        assert!(dn.get_chunk(ChunkId(2)).is_none());
        let stats = dn.stats();
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.stored_bytes, 10);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 1);
        assert!(dn.delete_chunk(ChunkId(1)));
        assert!(!dn.delete_chunk(ChunkId(1)));
        assert_eq!(dn.stats().chunks, 0);
    }

    #[test]
    fn dead_datanode_refuses_io() {
        let dn = Datanode::in_memory(DatanodeId(1), NodeId(0));
        dn.put_chunk(ChunkId(9), Bytes::from_static(b"x"));
        dn.kill();
        assert!(!dn.is_alive());
        assert!(!dn.put_chunk(ChunkId(10), Bytes::from_static(b"y")));
        assert!(dn.get_chunk(ChunkId(9)).is_none());
        assert!(!dn.delete_chunk(ChunkId(9)));
        dn.revive();
        assert_eq!(dn.get_chunk(ChunkId(9)).unwrap(), Bytes::from_static(b"x"));
    }

    #[test]
    fn chunk_ids_have_distinct_keys() {
        assert_ne!(ChunkId(1).storage_key(), ChunkId(2).storage_key());
    }
}
