//! Differential property test of speculative execution: with random
//! stragglers injected into first attempts (map tasks and reduce partition
//! 0) and an aggressive speculation policy, `JobTracker::run` must still
//! produce byte-identical `part-*` output to the sequential in-memory
//! oracle across job shapes and both storage backends — and leave no
//! `_shuffle`/`_temporary` scratch behind, including the losing attempts'
//! files. All injected delays are virtual ([`SimClock`] + [`SlowFs`]), so
//! the test never sleeps wall-clock time for them.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use mapreduce::{Job, SlowestFactorPolicy};
use proptest::prelude::*;
use simcluster::clock::SimClock;
use simcluster::ClusterTopology;
use std::sync::Arc;
use std::time::Duration;
use workloads::{
    distributed_grep_job, distributed_sort_job, word_count_job, word_count_job_combining,
    DelayRule, SlowFs,
};

fn make_fs(use_hdfs: bool, topo: &ClusterTopology) -> Box<dyn DistFs> {
    let nodes: Vec<_> = topo.all_nodes().collect();
    if use_hdfs {
        Box::new(HdfsFs::new(Hdfs::with_topology(
            HdfsConfig {
                chunk_size: 512,
                datanodes: nodes.len(),
                replication: 1,
                seed: 1,
            },
            topo,
            &nodes,
        )))
    } else {
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(nodes.len())
                .with_page_size(512),
            topo,
            &nodes,
        );
        Box::new(BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::default().with_block_size(512),
        )))
    }
}

fn make_job(shape: usize, fs: &dyn DistFs, out: &str, reducers: usize, split_size: u64) -> Job {
    let input = vec!["/in/text.txt".to_string()];
    let mut job = match shape {
        0 => word_count_job(input, out, reducers, split_size),
        1 => word_count_job_combining(input, out, reducers, split_size),
        2 => distributed_grep_job(input, out, "a", split_size),
        _ => distributed_sort_job(fs, input, out, reducers, split_size)
            .expect("sampling the sort input"),
    };
    // Aggressive policy so clones launch as soon as one peer completes.
    job.config.speculation = Some(Arc::new(SlowestFactorPolicy {
        slowest_factor: 1.0,
        min_runtime: Duration::from_millis(200),
        min_completed: 1,
    }));
    job
}

/// Arbitrary lowercase words of 1..8 chars.
fn word_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'f'), 1..8).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn speculation_under_random_stragglers_matches_the_oracle(
        words in prop::collection::vec(word_strategy(), 1..150),
        reducers in 1usize..5,
        // shape (wordcount / combining / grep / sort) x backend.
        shape_and_backend in 0usize..8,
        // Bits 0..=2: delay attempt 0 of map tasks 0..=2; bit 3: delay
        // attempt 0 of reduce partition 0.
        straggler_mask in 1usize..16,
        delay_secs in 1u64..20,
    ) {
        let shape = shape_and_backend % 4;
        let use_hdfs = shape_and_backend >= 4;
        let mut text = String::new();
        for line in words.chunks(5) {
            text.push_str(&line.join(" "));
            text.push('\n');
        }

        let topo = ClusterTopology::flat(4);
        let clock = Arc::new(SimClock::new());
        let delay = Duration::from_secs(delay_secs);
        let mut rules = Vec::new();
        for task in 0..3 {
            if straggler_mask & (1 << task) != 0 {
                rules.push(DelayRule::create(format!("attempt-map-{task:05}-0"), delay));
            }
        }
        if straggler_mask & 8 != 0 {
            rules.push(DelayRule::create("attempt-reduce-00000-0", delay));
        }
        let fs: Box<dyn DistFs> =
            Box::new(SlowFs::new(make_fs(use_hdfs, &topo), clock.clone(), rules));
        fs.write_file("/in/text.txt", text.as_bytes()).unwrap();

        let jt = JobTracker::new(&topo).with_clock(clock.clone());
        let dist_job = make_job(shape, &*fs, "/out-dist", reducers, 300);
        let dist = clock.drive(Duration::from_millis(500), || {
            jt.run(&*fs, &dist_job).unwrap()
        });
        // The oracle writes no attempt scratch, so no delay rule can fire:
        // it runs without the pump.
        let oracle_job = make_job(shape, &*fs, "/out-inmem", reducers, 300);
        let oracle = jt.run_inmem(&*fs, &oracle_job).unwrap();

        // Same part files (names relative to the output dir), same bytes.
        prop_assert_eq!(dist.output_files.len(), oracle.output_files.len());
        for (d, o) in dist.output_files.iter().zip(&oracle.output_files) {
            prop_assert_eq!(d.strip_prefix("/out-dist"), o.strip_prefix("/out-inmem"));
            prop_assert!(
                fs.read_file(d).unwrap() == fs.read_file(o).unwrap(),
                "content of {} diverges from the oracle (shape={}, reducers={}, hdfs={}, mask={})",
                d, shape, reducers, use_hdfs, straggler_mask
            );
        }
        prop_assert_eq!(dist.output_records, oracle.output_records);
        prop_assert_eq!(dist.output_bytes, oracle.output_bytes);

        // Only winning attempts may contribute counters, whatever raced.
        prop_assert_eq!(dist.input_records, oracle.input_records);
        prop_assert_eq!(dist.locality.total(), dist.map_tasks);
        if dist.reduce_tasks > 0 {
            prop_assert_eq!(
                dist.shuffle.segments_fetched,
                (dist.map_tasks * dist.reduce_tasks) as u64
            );
        }

        // Scratch (including losing-attempt files) is fully cleaned up:
        // the output dir holds exactly the part files.
        prop_assert!(!fs.exists("/out-dist/_temporary"));
        prop_assert!(!fs.exists("/out-dist/_shuffle"));
        let mut listed = fs.list("/out-dist").unwrap();
        listed.sort();
        let mut expected = dist.output_files.clone();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }
}
