//! Locality-aware task scheduling.
//!
//! "One of the optimization techniques the MapReduce framework employs, is to
//! ship the computation to nodes that store the input data; the goal is to
//! minimize data transfers between nodes. For this reason, the storage layer
//! must be able to provide the information about the location of the data"
//! (paper §II-B). The jobtracker uses the functions below to hand each free
//! map slot the *closest* pending split: one whose data lives on the
//! tasktracker's own node if possible, else in its rack, else anywhere.

use crate::split::InputSplit;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;

/// How close a task's data is to the node that will execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    /// The data (one of its replicas) is on the executing node itself.
    DataLocal,
    /// The data is in the same rack as the executing node.
    RackLocal,
    /// The data is somewhere else in the cluster (or the split has no
    /// location information, e.g. synthetic splits).
    Remote,
}

/// Counters of how many map tasks ran at each locality level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityCounters {
    /// Tasks whose data was on the executing node.
    pub data_local: usize,
    /// Tasks whose data was in the executing node's rack.
    pub rack_local: usize,
    /// Tasks that had to read across racks (or had no location info).
    pub remote: usize,
}

impl LocalityCounters {
    /// Record one task execution at the given locality.
    pub fn record(&mut self, locality: Locality) {
        match locality {
            Locality::DataLocal => self.data_local += 1,
            Locality::RackLocal => self.rack_local += 1,
            Locality::Remote => self.remote += 1,
        }
    }

    /// Total tasks recorded.
    pub fn total(&self) -> usize {
        self.data_local + self.rack_local + self.remote
    }
}

/// Classify how close a split's data is to `node`.
pub fn classify(topology: &ClusterTopology, node: NodeId, split: &InputSplit) -> Locality {
    if split.preferred_nodes.is_empty() {
        return Locality::Remote;
    }
    if split.preferred_nodes.contains(&node) {
        return Locality::DataLocal;
    }
    let rack = topology.rack_of(node);
    if split
        .preferred_nodes
        .iter()
        .any(|n| topology.rack_of(*n) == rack)
    {
        Locality::RackLocal
    } else {
        Locality::Remote
    }
}

/// Pick the best pending split for a tasktracker on `node`: data-local first,
/// then rack-local, then anything. Returns the position *within `pending`* of
/// the chosen entry and its locality class, or `None` when `pending` is empty.
pub fn pick_map_task(
    topology: &ClusterTopology,
    node: NodeId,
    pending: &[usize],
    splits: &[InputSplit],
) -> Option<(usize, Locality)> {
    if pending.is_empty() {
        return None;
    }
    let mut best: Option<(usize, Locality)> = None;
    for (pos, &split_idx) in pending.iter().enumerate() {
        let locality = classify(topology, node, &splits[split_idx]);
        match best {
            None => best = Some((pos, locality)),
            Some((_, current)) if locality < current => best = Some((pos, locality)),
            _ => {}
        }
        if locality == Locality::DataLocal {
            break; // cannot do better
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitSource;

    fn split(id: usize, nodes: Vec<NodeId>) -> InputSplit {
        InputSplit {
            id,
            source: SplitSource::File {
                path: "/f".into(),
                offset: 0,
                len: 1,
            },
            preferred_nodes: nodes,
        }
    }

    fn topo() -> ClusterTopology {
        // 2 racks of 3 nodes: rack 0 = nodes 0..3, rack 1 = nodes 3..6.
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(3)
            .build()
    }

    #[test]
    fn classification_levels() {
        let t = topo();
        let s_local = split(0, vec![NodeId(1)]);
        let s_rack = split(1, vec![NodeId(2)]);
        let s_remote = split(2, vec![NodeId(5)]);
        let s_unknown = split(3, vec![]);
        assert_eq!(classify(&t, NodeId(1), &s_local), Locality::DataLocal);
        assert_eq!(classify(&t, NodeId(1), &s_rack), Locality::RackLocal);
        assert_eq!(classify(&t, NodeId(1), &s_remote), Locality::Remote);
        assert_eq!(classify(&t, NodeId(1), &s_unknown), Locality::Remote);
        // Ordering backs the scheduler's preference.
        assert!(Locality::DataLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::Remote);
    }

    #[test]
    fn picker_prefers_data_local_then_rack_local() {
        let t = topo();
        let splits = vec![
            split(0, vec![NodeId(5)]), // remote for node 0
            split(1, vec![NodeId(2)]), // rack-local for node 0
            split(2, vec![NodeId(0)]), // data-local for node 0
        ];
        let pending = vec![0, 1, 2];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 2);
        assert_eq!(loc, Locality::DataLocal);

        // Without the data-local option, the rack-local one wins.
        let pending = vec![0, 1];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 1);
        assert_eq!(loc, Locality::RackLocal);

        // Only the remote split left.
        let pending = vec![0];
        let (pos, loc) = pick_map_task(&t, NodeId(0), &pending, &splits).unwrap();
        assert_eq!(pending[pos], 0);
        assert_eq!(loc, Locality::Remote);

        assert!(pick_map_task(&t, NodeId(0), &[], &splits).is_none());
    }

    #[test]
    fn counters_accumulate() {
        let mut c = LocalityCounters::default();
        c.record(Locality::DataLocal);
        c.record(Locality::DataLocal);
        c.record(Locality::RackLocal);
        c.record(Locality::Remote);
        assert_eq!(c.data_local, 2);
        assert_eq!(c.rack_local, 1);
        assert_eq!(c.remote, 1);
        assert_eq!(c.total(), 4);
    }
}
