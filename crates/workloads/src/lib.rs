//! # workloads — the paper's evaluation workloads
//!
//! Everything §IV of the paper runs against the storage layer, reproduced as
//! reusable library code:
//!
//! * [`textgen`] — the deterministic random-sentence generator behind the
//!   Random Text Writer application;
//! * [`apps`] — the two applications of §IV-C (Random Text Writer,
//!   Distributed Grep) plus word count and the shuffle-heavy distributed
//!   sort (TeraSort-style) and equi-join, as ready-to-run
//!   [`mapreduce::Job`]s;
//! * [`microbench`] — the three §IV-B access patterns (reads from different
//!   files, reads from one shared file, writes to different files) executed
//!   for real with threads against any [`mapreduce::fs::DistFs`] backend;
//! * [`simscale`] — the same three patterns replayed at paper scale
//!   (270 nodes, up to 250 clients, 1 GiB each) through the flow-level
//!   network simulator, using the storage systems' real placement logic;
//! * [`slowfs`] — a slow-node/slow-task [`mapreduce::fs::DistFs`] wrapper
//!   that injects virtual-clock delays into chosen operations, the fault
//!   model behind the straggler/speculation experiments (E7).

pub mod apps;
pub mod microbench;
pub mod simscale;
pub mod slowfs;
pub mod textgen;

pub use apps::{
    distributed_grep_job, distributed_sort_job, equi_join_job, random_text_writer_job,
    sample_sort_boundaries, word_count_job, word_count_job_combining, GrepMapper, JoinMapper,
    JoinReducer, RandomTextMapper, SortMapper, WordCountMapper,
};
pub use microbench::{
    prepare_distinct_files, prepare_shared_file, read_distinct_files, read_shared_file,
    write_distinct_files, AccessPattern, MicrobenchConfig, MicrobenchReport,
};
pub use simscale::{
    sim_read_distinct, sim_read_shared, sim_write_distinct, sim_write_with_strategy,
    SimScaleConfig, StorageSystem,
};
pub use slowfs::{DelayOp, DelayRule, SlowFs};
pub use textgen::TextGenerator;
