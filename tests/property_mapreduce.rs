//! Property-based tests of the MapReduce framework: for arbitrary generated
//! inputs, the distributed execution must agree with a sequential reference
//! computation, over both storage backends and any split size.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use proptest::prelude::*;
use simcluster::ClusterTopology;
use std::collections::BTreeMap;
use workloads::word_count_job;

fn reference_word_count(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for w in text.split_whitespace() {
        *counts.entry(w.to_string()).or_insert(0) += 1;
    }
    counts
}

fn parse_output(fs: &dyn DistFs, files: &[String]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for f in files {
        let content = fs.read_file(f).unwrap();
        for line in String::from_utf8_lossy(&content).lines() {
            let mut parts = line.split('\t');
            let word = parts.next().unwrap().to_string();
            let count: u64 = parts.next().unwrap().parse().unwrap();
            counts.insert(word, count);
        }
    }
    counts
}

/// Arbitrary lowercase words of 1..8 chars.
fn word_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'f'), 1..8).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wordcount_agrees_with_sequential_reference(
        words in prop::collection::vec(word_strategy(), 1..400),
        words_per_line in 1usize..12,
        split_size in 64u64..2_000,
        reducers in 1usize..5,
        use_hdfs in any::<bool>(),
    ) {
        let mut text = String::new();
        for line in words.chunks(words_per_line) {
            text.push_str(&line.join(" "));
            text.push('\n');
        }

        let topo = ClusterTopology::flat(4);
        let nodes: Vec<_> = topo.all_nodes().collect();
        let fs: Box<dyn DistFs> = if use_hdfs {
            Box::new(HdfsFs::new(Hdfs::with_topology(
                HdfsConfig { chunk_size: 512, datanodes: 4, replication: 1, seed: 1 },
                &topo,
                &nodes,
            )))
        } else {
            let storage = BlobSeer::with_topology(
                BlobSeerConfig::default().with_providers(4).with_page_size(512),
                &topo,
                &nodes,
            );
            Box::new(BsfsFs::new(Bsfs::new(storage, BsfsConfig::default().with_block_size(512))))
        };

        fs.write_file("/in/text.txt", text.as_bytes()).unwrap();
        let job = word_count_job(vec!["/in/text.txt".into()], "/out", reducers, split_size);
        let result = JobTracker::new(&topo).run(&*fs, &job).unwrap();

        let got = parse_output(&*fs, &result.output_files);
        prop_assert_eq!(got, reference_word_count(&text));
        prop_assert_eq!(result.input_records, text.lines().count() as u64);
    }
}
