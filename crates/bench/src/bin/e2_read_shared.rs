//! E2 — microbenchmark: concurrent clients reading *non-overlapping parts of
//! the same huge file* (map phase over one shared input, paper §IV-B).

use workloads::microbench::AccessPattern;

fn main() {
    let (bsfs, hdfs, records) = bench::paper_sweep(
        "E2",
        AccessPattern::ReadSharedFile,
        bench::PAPER_CLIENT_COUNTS,
    );
    bench::print_sweep(
        "E2",
        "concurrent reads of non-overlapping parts of one huge file",
        &bsfs,
        &hdfs,
        &records,
    );
}
