//! E9 — client scaling against the actor-core data plane.
//!
//! The refactor this experiment gates: providers, DHT nodes and page fan-out
//! moved from thread-per-operation onto message-loop actors over a fixed
//! miniexec pool, so the number of *system* threads (executor workers +
//! actor loops, counted by [`miniexec::census`]) is a deployment constant.
//! One deployment serves a read workload at a small and a 16x larger client
//! count; the census high-water mark must be identical at both points.
//!
//! The legacy thread-per-operation data plane (and its `BENCH_LEGACY`
//! switch) is gone: the before/after pair recorded in EXPERIMENTS.md was
//! measured while the differential oracle still existed, and the flatness
//! assertion below is what keeps the actor plane honest going forward.
//!
//! `BENCH_SMOKE=1` shrinks the sweep to a does-it-run configuration (CI
//! asserts flatness on the emitted `BENCH_E9.json`).

use blobseer::{BlobSeer, BlobSeerConfig};
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::time::Instant;

#[derive(serde::Serialize)]
struct ScalePoint {
    clients: usize,
    aggregate_mibps: f64,
    census_peak: usize,
    census_spawned: usize,
}

fn main() {
    let smoke = bench::smoke_mode();
    let client_counts: &[usize] = if smoke { &[2, 32] } else { &[4, 64] };
    let page = 16 * 1024u64;
    let pages = if smoke { 16u64 } else { 64 };
    let passes = if smoke { 2 } else { 8 };

    let topo = ClusterTopology::flat(8);
    let provider_nodes: Vec<NodeId> = topo.all_nodes().collect();
    let sys = BlobSeer::with_topology(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(page)
            .with_page_replication(2)
            .with_io_parallelism(4),
        &topo,
        &provider_nodes,
    );
    let writer = sys.client();
    let blob = writer.create(Some(page)).unwrap();
    let len = page * pages;
    writer.write(blob, 0, &vec![7u8; len as usize]).unwrap();

    println!(
        "== E9: client scaling on the actor data plane (8 providers, {} KiB pages x {pages}, replication 2) ==",
        page / 1024,
    );
    println!();
    println!(
        "{:<10} {:>20} {:>14} {:>16}",
        "clients", "aggregate (MiB/s)", "census peak", "threads spawned"
    );

    // Warm-up pass so the pool, actors and metadata cache exist before the
    // first measured point — the census comparison is then deployment
    // steady-state vs steady-state.
    scan(&sys, blob, len, client_counts[0], 1);

    let mut points = Vec::new();
    for &clients in client_counts {
        let t0 = Instant::now();
        scan(&sys, blob, len, clients, passes);
        let secs = t0.elapsed().as_secs_f64();
        let census_peak = miniexec::census::peak();
        let census_spawned = miniexec::census::spawned();
        let mib = (len * passes as u64 * clients as u64) as f64 / (1024.0 * 1024.0);
        println!(
            "{:<10} {:>20.1} {:>14} {:>16}",
            clients,
            mib / secs,
            census_peak,
            census_spawned
        );
        points.push(ScalePoint {
            clients,
            aggregate_mibps: mib / secs,
            census_peak,
            census_spawned,
        });
    }

    // Two flatness claims, both against the warmed-up deployment:
    // * `peak` — concurrently-live system threads never exceed the fixed
    //   pool + actor set, no matter the client count;
    // * `spawned` — the system creates *zero* new threads while serving the
    //   whole sweep (the retired thread-per-operation plane spawned a scoped
    //   thread batch per operation, so this is the metric that separated the
    //   two even on a single-CPU runner where short-lived threads barely
    //   overlap).
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    let flat = first.census_peak == last.census_peak && first.census_spawned == last.census_spawned;
    assert!(
        flat,
        "actor data plane must keep the system thread census flat \
         ({} clients -> peak {} / spawned {}, {} clients -> peak {} / spawned {})",
        first.clients,
        first.census_peak,
        first.census_spawned,
        last.clients,
        last.census_peak,
        last.census_spawned,
    );
    println!();
    println!(
        "census: peak {} -> {}, spawned {} -> {} across a {}x client jump ({})",
        first.census_peak,
        last.census_peak,
        first.census_spawned,
        last.census_spawned,
        last.clients / first.clients,
        if flat { "flat" } else { "scaling with clients" },
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        mode: &'static str,
        census_flat: bool,
        points: Vec<ScalePoint>,
    }
    bench::emit_bench_json(
        "E9",
        &Snapshot {
            experiment: "E9",
            smoke,
            mode: "actors",
            census_flat: flat,
            points,
        },
    );
}

/// `clients` plain threads (deliberately unregistered with the census — they
/// model external load) each read the whole blob `passes` times in one
/// multi-page extent per pass, so every read drives the page fan-out path
/// (`io_parallelism`-wide) rather than a single-page fast path.
fn scan(
    sys: &std::sync::Arc<BlobSeer>,
    blob: blobseer::BlobId,
    len: u64,
    clients: usize,
    passes: usize,
) {
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = sys.client_on(sys.topology().node((c % 8) as u32));
            s.spawn(move || {
                for _ in 0..passes {
                    assert_eq!(client.read_latest(blob, 0, len).unwrap().len() as u64, len);
                }
            });
        }
    });
}
