//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Exposes the subset of criterion's API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! backed by a simple wall-clock sampler: each benchmark runs one warm-up
//! iteration and then `sample_size` timed samples, reporting min/mean/max.
//! No statistics engine, plots, or baselines; just honest numbers on stdout.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Top-level handle, created by `criterion_group!`'s generated function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// the shim starts at 10 to keep `cargo bench` fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), |b| f(b));
        self
    }

    /// Benchmark a closure parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up sample, discarded.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{}/{id}: [{} {} {}] ({} samples)",
            self.name,
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            samples.len(),
        );
    }

    /// Ends the group. Criterion prints summaries here; the shim prints per
    /// benchmark, so this only exists for API compatibility.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock duration as this
    /// sample's measurement. (Criterion runs it many times per sample and
    /// divides; one evaluation per sample keeps the shim's `cargo bench`
    /// wall-clock reasonable for the heavyweight routines in this repo.)
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        hint::black_box(out);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Mirrors criterion's macro: generates a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors criterion's macro: generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
