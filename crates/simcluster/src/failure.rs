//! Failure injection schedules.
//!
//! BlobSeer tolerates provider failures through page-level replication and
//! HDFS through chunk replication; the integration tests and some ablation
//! benches need a way to declare "node X dies at virtual time T" and query
//! liveness. The schedule is immutable during a run so that experiments stay
//! deterministic and reproducible.

use crate::time::SimTime;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of node failures planned at fixed virtual times.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureSchedule {
    failures: HashMap<NodeId, SimTime>,
}

impl FailureSchedule {
    /// A schedule with no failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule `node` to fail at `when`. If the node was already scheduled,
    /// the earlier time wins (a node cannot fail twice).
    pub fn fail_at(mut self, node: NodeId, when: SimTime) -> Self {
        self.failures
            .entry(node)
            .and_modify(|t| {
                if when < *t {
                    *t = when;
                }
            })
            .or_insert(when);
        self
    }

    /// Schedule several nodes to fail at the same time.
    pub fn fail_all_at(mut self, nodes: impl IntoIterator<Item = NodeId>, when: SimTime) -> Self {
        for n in nodes {
            self = self.fail_at(n, when);
        }
        self
    }

    /// Is `node` alive at virtual time `t`? A node is alive strictly before
    /// its failure time.
    pub fn is_alive(&self, node: NodeId, t: SimTime) -> bool {
        match self.failures.get(&node) {
            Some(fail_time) => t < *fail_time,
            None => true,
        }
    }

    /// The failure time of `node`, if any.
    pub fn failure_time(&self, node: NodeId) -> Option<SimTime> {
        self.failures.get(&node).copied()
    }

    /// Nodes that are dead at time `t`.
    pub fn dead_at(&self, t: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .failures
            .iter()
            .filter(|(_, when)| **when <= t)
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_keeps_everything_alive() {
        let s = FailureSchedule::none();
        assert!(s.is_empty());
        assert!(s.is_alive(NodeId(0), SimTime::from_secs(1_000_000)));
        assert!(s.dead_at(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn node_dies_at_its_time() {
        let s = FailureSchedule::none().fail_at(NodeId(3), SimTime::from_secs(10));
        assert!(s.is_alive(NodeId(3), SimTime::from_secs(9)));
        assert!(!s.is_alive(NodeId(3), SimTime::from_secs(10)));
        assert!(!s.is_alive(NodeId(3), SimTime::from_secs(11)));
        assert_eq!(s.failure_time(NodeId(3)), Some(SimTime::from_secs(10)));
        assert_eq!(s.failure_time(NodeId(4)), None);
    }

    #[test]
    fn earlier_failure_time_wins() {
        let s = FailureSchedule::none()
            .fail_at(NodeId(1), SimTime::from_secs(20))
            .fail_at(NodeId(1), SimTime::from_secs(5))
            .fail_at(NodeId(1), SimTime::from_secs(50));
        assert_eq!(s.failure_time(NodeId(1)), Some(SimTime::from_secs(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn group_failure_and_dead_listing() {
        let s = FailureSchedule::none()
            .fail_all_at(vec![NodeId(2), NodeId(0)], SimTime::from_secs(7))
            .fail_at(NodeId(5), SimTime::from_secs(100));
        let dead = s.dead_at(SimTime::from_secs(8));
        assert_eq!(dead, vec![NodeId(0), NodeId(2)]);
        assert_eq!(s.dead_at(SimTime::from_secs(200)).len(), 3);
    }
}
