//! E1 — microbenchmark: concurrent clients reading from *different files*
//! (the access pattern of a map phase over per-task input files, paper §IV-B).
//!
//! Runs the paper-scale sweep (1..250 clients on 270 simulated Grid'5000
//! nodes, 1 GiB per client) for BSFS and HDFS and prints the throughput
//! series the paper plots.

use workloads::microbench::AccessPattern;

fn main() {
    let (bsfs, hdfs, records) = bench::paper_sweep(
        "E1",
        AccessPattern::ReadDistinctFiles,
        bench::PAPER_CLIENT_COUNTS,
    );
    bench::print_sweep(
        "E1",
        "concurrent reads from different files",
        &bsfs,
        &hdfs,
        &records,
    );
}
