//! Cluster topology: sites, racks, nodes.
//!
//! Grid'5000 (the paper's testbed) is organised as geographically distributed
//! *sites*, each containing one or more *racks* of commodity *nodes*. The
//! relative position of two nodes (same node / same rack / same site /
//! different sites) determines the network path between them, which is what
//! the HDFS replica-placement policy and the network cost model care about.
//!
//! A [`ClusterTopology`] is immutable once built; experiments that need to
//! kill nodes track liveness separately (see [`crate::failure`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node within a [`ClusterTopology`]. Indices are dense: nodes
/// are numbered `0..topology.num_nodes()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a rack within a [`ClusterTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// Identifies a site (a Grid'5000 site, i.e. a datacenter-like location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack-{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

/// How two nodes relate to each other in the topology. Ordered from closest
/// to farthest; the ordering is used by locality-aware schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proximity {
    /// The two node ids are the same physical node.
    SameNode,
    /// Different nodes in the same rack.
    SameRack,
    /// Different racks in the same site.
    SameSite,
    /// Different sites.
    Remote,
}

/// Static description of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Dense id of the node.
    pub id: NodeId,
    /// Rack containing the node.
    pub rack: RackId,
    /// Site containing the rack.
    pub site: SiteId,
}

/// Immutable description of a cluster: which nodes exist and how they are
/// grouped into racks and sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTopology {
    nodes: Vec<NodeInfo>,
    racks: Vec<Vec<NodeId>>,
    sites: Vec<Vec<RackId>>,
}

impl ClusterTopology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// A single-site, single-rack cluster of `n` nodes. Convenient for unit
    /// tests and laptop-scale runs where rack effects are irrelevant.
    pub fn flat(n: u32) -> Self {
        Self::builder()
            .sites(1)
            .racks_per_site(1)
            .nodes_per_rack(n)
            .build()
    }

    /// A topology shaped like the paper's Grid'5000 deployment: 270 nodes
    /// spread over 9 sites (the number of Grid'5000 sites at the time), each
    /// site holding 2 racks of 15 nodes.
    pub fn grid5000_270() -> Self {
        Self::builder()
            .sites(9)
            .racks_per_site(2)
            .nodes_per_rack(15)
            .build()
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks in the cluster.
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Number of sites in the cluster.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The `idx`-th node id (panics if out of range).
    pub fn node(&self, idx: u32) -> NodeId {
        assert!(
            (idx as usize) < self.nodes.len(),
            "node index {idx} out of range"
        );
        NodeId(idx)
    }

    /// All node ids, in dense order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Static info for a node.
    pub fn info(&self, node: NodeId) -> &NodeInfo {
        &self.nodes[node.0 as usize]
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.info(node).rack
    }

    /// Site of a node.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.info(node).site
    }

    /// Nodes in a rack, in dense order.
    pub fn nodes_in_rack(&self, rack: RackId) -> &[NodeId] {
        &self.racks[rack.0 as usize]
    }

    /// Racks in a site, in dense order.
    pub fn racks_in_site(&self, site: SiteId) -> &[RackId] {
        &self.sites[site.0 as usize]
    }

    /// Proximity class of two nodes.
    pub fn proximity(&self, a: NodeId, b: NodeId) -> Proximity {
        if a == b {
            Proximity::SameNode
        } else if self.rack_of(a) == self.rack_of(b) {
            Proximity::SameRack
        } else if self.site_of(a) == self.site_of(b) {
            Proximity::SameSite
        } else {
            Proximity::Remote
        }
    }

    /// Nodes that are *not* in the given rack. Used by rack-aware replica
    /// placement ("third copy on a different rack").
    pub fn nodes_outside_rack(&self, rack: RackId) -> Vec<NodeId> {
        self.all_nodes()
            .filter(|n| self.rack_of(*n) != rack)
            .collect()
    }

    /// Nodes in the same rack as `node`, excluding `node` itself.
    pub fn rack_peers(&self, node: NodeId) -> Vec<NodeId> {
        self.nodes_in_rack(self.rack_of(node))
            .iter()
            .copied()
            .filter(|n| *n != node)
            .collect()
    }
}

/// Builder for regular topologies (same number of racks per site and nodes per
/// rack). Irregular clusters can be described with [`TopologyBuilder::add_site`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    sites: u32,
    racks_per_site: u32,
    nodes_per_rack: u32,
    explicit_sites: Vec<Vec<u32>>, // nodes per rack, per site
}

impl TopologyBuilder {
    /// Number of sites for the regular layout.
    pub fn sites(mut self, n: u32) -> Self {
        self.sites = n;
        self
    }

    /// Number of racks per site for the regular layout.
    pub fn racks_per_site(mut self, n: u32) -> Self {
        self.racks_per_site = n;
        self
    }

    /// Number of nodes per rack for the regular layout.
    pub fn nodes_per_rack(mut self, n: u32) -> Self {
        self.nodes_per_rack = n;
        self
    }

    /// Add an explicitly described site: one entry per rack giving its node
    /// count. Using this switches the builder to irregular mode and the
    /// regular-layout parameters are ignored.
    pub fn add_site(mut self, racks: Vec<u32>) -> Self {
        self.explicit_sites.push(racks);
        self
    }

    /// Materialise the topology.
    ///
    /// Panics if the description is empty (a cluster needs at least one node).
    pub fn build(self) -> ClusterTopology {
        let site_descriptions: Vec<Vec<u32>> = if !self.explicit_sites.is_empty() {
            self.explicit_sites
        } else {
            (0..self.sites)
                .map(|_| vec![self.nodes_per_rack; self.racks_per_site as usize])
                .collect()
        };

        let mut nodes = Vec::new();
        let mut racks: Vec<Vec<NodeId>> = Vec::new();
        let mut sites: Vec<Vec<RackId>> = Vec::new();

        for rack_counts in site_descriptions {
            let site_id = SiteId(sites.len() as u32);
            let mut site_racks = Vec::new();
            for count in rack_counts {
                let rack_id = RackId(racks.len() as u32);
                let mut rack_nodes = Vec::new();
                for _ in 0..count {
                    let node_id = NodeId(nodes.len() as u32);
                    nodes.push(NodeInfo {
                        id: node_id,
                        rack: rack_id,
                        site: site_id,
                    });
                    rack_nodes.push(node_id);
                }
                racks.push(rack_nodes);
                site_racks.push(rack_id);
            }
            sites.push(site_racks);
        }

        assert!(
            !nodes.is_empty(),
            "a cluster topology must contain at least one node"
        );
        ClusterTopology {
            nodes,
            racks,
            sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_topology_has_expected_counts() {
        let t = ClusterTopology::builder()
            .sites(3)
            .racks_per_site(2)
            .nodes_per_rack(5)
            .build();
        assert_eq!(t.num_sites(), 3);
        assert_eq!(t.num_racks(), 6);
        assert_eq!(t.num_nodes(), 30);
    }

    #[test]
    fn grid5000_preset_matches_paper_scale() {
        let t = ClusterTopology::grid5000_270();
        assert_eq!(t.num_nodes(), 270);
        assert_eq!(t.num_sites(), 9);
    }

    #[test]
    fn flat_topology() {
        let t = ClusterTopology::flat(7);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_racks(), 1);
        assert_eq!(t.num_sites(), 1);
        let a = t.node(0);
        let b = t.node(6);
        assert_eq!(t.proximity(a, b), Proximity::SameRack);
    }

    #[test]
    fn proximity_classes() {
        // 2 sites, 2 racks each, 2 nodes each: nodes 0..8.
        let t = ClusterTopology::builder()
            .sites(2)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build();
        let n0 = t.node(0);
        let n1 = t.node(1); // same rack as 0
        let n2 = t.node(2); // same site, other rack
        let n4 = t.node(4); // other site
        assert_eq!(t.proximity(n0, n0), Proximity::SameNode);
        assert_eq!(t.proximity(n0, n1), Proximity::SameRack);
        assert_eq!(t.proximity(n0, n2), Proximity::SameSite);
        assert_eq!(t.proximity(n0, n4), Proximity::Remote);
        // Proximity is symmetric.
        assert_eq!(t.proximity(n4, n0), Proximity::Remote);
        // And ordered closest-first.
        assert!(Proximity::SameNode < Proximity::SameRack);
        assert!(Proximity::SameRack < Proximity::SameSite);
        assert!(Proximity::SameSite < Proximity::Remote);
    }

    #[test]
    fn rack_membership_queries() {
        let t = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(3)
            .build();
        let n0 = t.node(0);
        let rack = t.rack_of(n0);
        assert_eq!(t.nodes_in_rack(rack).len(), 3);
        assert_eq!(t.rack_peers(n0).len(), 2);
        assert!(!t.rack_peers(n0).contains(&n0));
        let outside = t.nodes_outside_rack(rack);
        assert_eq!(outside.len(), 3);
        assert!(outside.iter().all(|n| t.rack_of(*n) != rack));
    }

    #[test]
    fn irregular_topology() {
        let t = ClusterTopology::builder()
            .add_site(vec![2, 3])
            .add_site(vec![1])
            .build();
        assert_eq!(t.num_sites(), 2);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.racks_in_site(SiteId(0)).len(), 2);
        assert_eq!(t.racks_in_site(SiteId(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_panics() {
        let _ = ClusterTopology::builder().build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_index_out_of_range_panics() {
        let t = ClusterTopology::flat(2);
        let _ = t.node(5);
    }

    #[test]
    fn all_nodes_is_dense_and_ordered() {
        let t = ClusterTopology::flat(4);
        let ids: Vec<u32> = t.all_nodes().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
