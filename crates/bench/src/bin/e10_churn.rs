//! E10 — churn tolerance: appends and version reads under a kill/join
//! stream, with the repair loop (not `revive`) restoring replication.
//!
//! The fault model the robustness tier targets: providers and metadata DHT
//! nodes crash *without telling anyone* (a dead member refuses operations;
//! heartbeats and refused calls feed the timeout/suspicion detectors), and
//! fresh nodes join to replace them. This harness drives a deterministic
//! [`ChurnSchedule`] on a `SimClock`, running an F1-style append workload
//! and E1-style snapshot reads between events, and calls [`BlobSeer::repair`]
//! once per round — the same pass the background cadence
//! (`BlobSeerConfig::with_repair_interval`) runs on the pool.
//!
//! Two properties are asserted, and recorded in `BENCH_E10.json` for CI:
//!
//! * **zero lost committed versions** — every append that returned a version
//!   is re-read and byte-compared at the end, after every kill has landed;
//! * **replication restored by repair** — the final repair pass on both
//!   tiers reports nothing left under-replicated, and no provider was ever
//!   revived (dead members stay dead; only joins add capacity).
//!
//! `BENCH_SMOKE=1` shrinks the schedule to a does-it-run configuration.

use blobseer::{BlobSeer, BlobSeerConfig, ProviderId};
use simcluster::topology::ClusterTopology;
use simcluster::{ChurnEventKind, ChurnSchedule, NodeId, SimClock, SimDuration, SimTime};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One committed append: enough to re-read and byte-compare it later.
struct Committed {
    version: blobseer::Version,
    offset: u64,
    fill: u8,
}

fn main() {
    let smoke = bench::smoke_mode();
    let (rounds, writers, readers_per_round) = if smoke { (12usize, 2, 2) } else { (48, 4, 4) };
    let page = 16 * 1024u64;
    let replication = 2usize;
    let step = SimDuration::from_millis(250);

    let clock = Arc::new(SimClock::new());
    let topo = ClusterTopology::flat(8);
    let provider_nodes: Vec<NodeId> = topo.all_nodes().collect();
    let sys = BlobSeer::with_topology_and_clock(
        BlobSeerConfig::default()
            .with_providers(provider_nodes.len())
            .with_page_size(page)
            .with_page_replication(replication)
            .with_retry(4, Duration::from_millis(1))
            // Enables failure detection on both tiers; the interval sits far
            // beyond the schedule horizon so the harness's per-round repair
            // call is the only pass that runs — deterministically.
            .with_repair_interval(Duration::from_secs(3600)),
        &topo,
        &provider_nodes,
        Arc::clone(&clock) as Arc<dyn simcluster::Clock>,
    );
    let pm = sys.provider_manager();
    let dht = sys.metadata().dht();
    let dht_replication = dht.replication();

    // 50/50 kill/join mix, one event per round boundary.
    let schedule = ChurnSchedule::uniform(rounds, step, 500, 0xE10);
    let client = sys.client();
    let blob = client.create(Some(page)).unwrap();

    // Membership as the harness sees it: the schedule says *when* a kill
    // lands, the harness picks the victim from the live set, alternating
    // between the storage and metadata tiers.
    let mut live_providers: Vec<ProviderId> =
        (0..provider_nodes.len() as u32).map(ProviderId).collect();
    let mut live_dht = dht.node_ids();
    let mut kill_tier_provider = true;
    let mut join_tier_provider = false;
    let (mut kills_applied, mut kills_skipped, mut joins_applied) = (0u64, 0u64, 0u64);
    let mut victim_seed = 0x9E37_79B9u64;

    let mut committed: Vec<Committed> = Vec::new();
    let mut verified_reads = 0u64;
    let (mut append_secs, mut read_secs) = (0f64, 0f64);
    let mut now = SimTime::from_micros(0);

    println!(
        "== E10: churn tolerance ({} rounds x {}ms, {} providers x replication {replication}, \
         {} DHT nodes x replication {dht_replication}, {} kills / {} joins scheduled) ==",
        rounds,
        step.as_micros() / 1000,
        live_providers.len(),
        live_dht.len(),
        schedule.kill_count(),
        schedule.join_count(),
    );
    println!();

    for round in 0..rounds {
        let next = SimTime::from_micros(now.as_micros() + step.as_micros());
        clock.advance(Duration::from_micros(step.as_micros()));
        for event in schedule.events_between(now, next) {
            match event.kind {
                ChurnEventKind::Kill => {
                    // Alternate tiers; never drop a tier below its
                    // replication factor + 1 (the schedule fixes when kills
                    // happen, the harness keeps them survivable).
                    if kill_tier_provider && live_providers.len() > replication {
                        victim_seed ^= victim_seed << 13;
                        victim_seed ^= victim_seed >> 7;
                        victim_seed ^= victim_seed << 17;
                        let victim =
                            live_providers.remove(victim_seed as usize % live_providers.len());
                        pm.kill(victim);
                        kills_applied += 1;
                    } else if !kill_tier_provider && live_dht.len() > dht_replication {
                        victim_seed ^= victim_seed << 13;
                        victim_seed ^= victim_seed >> 7;
                        victim_seed ^= victim_seed << 17;
                        let victim = live_dht.remove(victim_seed as usize % live_dht.len());
                        dht.kill(victim).unwrap();
                        kills_applied += 1;
                    } else {
                        kills_skipped += 1;
                    }
                    kill_tier_provider = !kill_tier_provider;
                }
                ChurnEventKind::Join => {
                    if join_tier_provider {
                        let node = topo.node((joins_applied % 8) as u32);
                        live_providers.push(pm.join_in_memory(node));
                    } else {
                        live_dht.push(dht.join());
                    }
                    join_tier_provider = !join_tier_provider;
                    joins_applied += 1;
                }
            }
        }
        now = next;

        // F1-style appends: each writer commits one page-sized version.
        let t0 = Instant::now();
        for w in 0..writers {
            let fill = ((round * 31 + w * 7) % 251) as u8 + 1;
            let offset = committed.len() as u64 * page;
            let version = client.append(blob, &vec![fill; page as usize]).unwrap();
            committed.push(Committed {
                version,
                offset,
                fill,
            });
        }
        append_secs += t0.elapsed().as_secs_f64();

        // E1-style reads: sample earlier snapshots — including ones whose
        // recorded replicas have since died, which must fail over to the
        // announced repair copies.
        let t0 = Instant::now();
        for r in 0..readers_per_round {
            let c = &committed[(round * 13 + r * 5) % committed.len()];
            let data = client.read(blob, c.version, c.offset, page).unwrap();
            assert!(
                data.iter().all(|b| *b == c.fill),
                "round {round}: version {:?} read back corrupt",
                c.version
            );
            verified_reads += 1;
        }
        read_secs += t0.elapsed().as_secs_f64();

        // The repair loop's pass for this round: heartbeat both tiers, then
        // re-replicate everything the kills left under factor.
        sys.repair();
    }

    // Final sweep: every committed version must still read back intact, and
    // a closing repair pass must find both tiers fully replicated.
    let t0 = Instant::now();
    let mut lost = 0u64;
    for c in &committed {
        match client.read(blob, c.version, c.offset, page) {
            Ok(data) if data.iter().all(|b| *b == c.fill) => verified_reads += 1,
            _ => lost += 1,
        }
    }
    read_secs += t0.elapsed().as_secs_f64();
    let (dht_report, provider_report) = sys.repair();

    let append_mib = (committed.len() as u64 * page) as f64 / (1024.0 * 1024.0);
    let read_mib = (verified_reads * page) as f64 / (1024.0 * 1024.0);
    let append_mibps = append_mib / append_secs.max(1e-9);
    let read_mibps = read_mib / read_secs.max(1e-9);
    let provider_failures_detected = pm
        .failure_detector()
        .map(|d| d.failures_detected())
        .unwrap_or(0);
    let dht_stats = dht.stats();

    println!(
        "churn applied: {kills_applied} kills ({kills_skipped} skipped to keep quorum), \
         {joins_applied} joins; live now: {} providers, {} DHT nodes",
        live_providers.len(),
        live_dht.len(),
    );
    println!(
        "committed {} versions, verified {verified_reads} reads, lost {lost}",
        committed.len(),
    );
    println!("appends: {append_mibps:.1} MiB/s sustained; reads: {read_mibps:.1} MiB/s sustained");
    println!(
        "repair: {} page copies over {} passes (final under-replicated {}), \
         dht {} entries re-replicated (final under-replicated {}), \
         failures detected: {} provider / {} dht",
        pm.repaired_pages(),
        pm.repair_runs(),
        provider_report.still_under_replicated,
        dht_stats.repaired_entries,
        dht_report.still_under_replicated,
        provider_failures_detected,
        dht_stats.failures_detected,
    );

    assert_eq!(lost, 0, "a committed version became unreadable under churn");
    assert_eq!(
        provider_report.still_under_replicated, 0,
        "repair must restore page replication with the live provider set"
    );
    assert_eq!(
        dht_report.still_under_replicated, 0,
        "repair must restore metadata replication with the live DHT nodes"
    );
    assert!(
        kills_applied > 0 && joins_applied > 0,
        "the schedule must actually exercise churn"
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        rounds: usize,
        page_bytes: u64,
        replication: usize,
        dht_replication: usize,
        kills_applied: u64,
        kills_skipped: u64,
        joins_applied: u64,
        committed_versions: usize,
        verified_reads: u64,
        lost_versions: u64,
        append_mibps: f64,
        read_mibps: f64,
        repaired_page_copies: u64,
        repaired_dht_entries: u64,
        provider_under_replicated_final: usize,
        dht_under_replicated_final: usize,
        provider_failures_detected: u64,
        dht_failures_detected: u64,
    }
    bench::emit_bench_json(
        "E10",
        &Snapshot {
            experiment: "E10",
            smoke,
            rounds,
            page_bytes: page,
            replication,
            dht_replication,
            kills_applied,
            kills_skipped,
            joins_applied,
            committed_versions: committed.len(),
            verified_reads,
            lost_versions: lost,
            append_mibps,
            read_mibps,
            repaired_page_copies: pm.repaired_pages(),
            repaired_dht_entries: dht_stats.repaired_entries,
            provider_under_replicated_final: provider_report.still_under_replicated,
            dht_under_replicated_final: dht_report.still_under_replicated,
            provider_failures_detected,
            dht_failures_detected: dht_stats.failures_detected,
        },
    );
}
