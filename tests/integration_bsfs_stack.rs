//! Integration tests across the full BSFS stack: BlobSeer providers, the
//! metadata DHT, the version manager, the namespace layer and the client
//! cache working together.

use blobseer::{BlobSeer, BlobSeerConfig, PlacementStrategy};
use bsfs::{Bsfs, BsfsConfig};
use simcluster::ClusterTopology;

fn deployment(providers: usize, page: u64) -> Bsfs {
    let storage = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(providers)
            .with_page_size(page)
            .with_page_replication(2),
    );
    Bsfs::new(storage, BsfsConfig::default().with_block_size(page))
}

#[test]
fn many_files_many_clients_roundtrip() {
    let fs = deployment(8, 4096);
    std::thread::scope(|scope| {
        for t in 0..8u8 {
            let fs = fs.clone();
            scope.spawn(move || {
                for f in 0..5 {
                    let path = format!("/load/client-{t}/file-{f}");
                    let payload: Vec<u8> = (0..20_000)
                        .map(|i| ((i + t as usize + f) % 251) as u8)
                        .collect();
                    fs.write_file(&path, &payload).unwrap();
                    assert_eq!(fs.read_file(&path).unwrap().to_vec(), payload);
                }
            });
        }
    });
    assert_eq!(fs.namespace().file_count(), 40);
    // Every file survives a full namespace listing walk.
    let dirs = fs.list("/load").unwrap();
    assert_eq!(dirs.len(), 8);
    for d in dirs {
        assert_eq!(fs.list(&d).unwrap().len(), 5);
    }
}

#[test]
fn data_survives_killing_a_replicas_worth_of_providers() {
    let fs = deployment(6, 2048);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
    fs.write_file("/resilient", &payload).unwrap();

    // Kill one provider: page replication factor 2 must cover for it.
    fs.storage()
        .provider_manager()
        .kill(blobseer::ProviderId(0));
    assert_eq!(fs.read_file("/resilient").unwrap().to_vec(), payload);

    // New writes keep working with the remaining providers.
    fs.write_file("/after-failure", &payload[..5000]).unwrap();
    assert_eq!(fs.read_file("/after-failure").unwrap().len(), 5000);
}

#[test]
fn metadata_survives_killing_a_metadata_provider() {
    let fs = deployment(4, 1024);
    let payload = vec![7u8; 50_000];
    fs.write_file("/meta-resilient", &payload).unwrap();
    // Kill one DHT node; metadata replication covers it.
    let dht = fs.storage().metadata().dht();
    let victims = dht.node_ids();
    dht.kill(victims[0]).unwrap();
    assert_eq!(fs.read_file("/meta-resilient").unwrap().to_vec(), payload);
}

#[test]
fn placement_strategies_affect_page_distribution_but_not_contents() {
    let payload: Vec<u8> = (0..65_536u32).map(|i| (i * 31 % 256) as u8).collect();
    for strategy in [
        PlacementStrategy::LoadBalanced,
        PlacementStrategy::LocalFirst,
        PlacementStrategy::Random,
    ] {
        let topo = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(4)
            .build();
        let nodes: Vec<_> = topo.all_nodes().collect();
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(8)
                .with_page_size(4096)
                .with_placement(strategy),
            &topo,
            &nodes,
        );
        let fs = Bsfs::new(storage, BsfsConfig::default().with_block_size(4096));
        fs.write_file("/strategy-test", &payload).unwrap();
        assert_eq!(
            fs.read_file("/strategy-test").unwrap().to_vec(),
            payload,
            "{strategy:?}"
        );
        let load = fs.storage().provider_manager().allocation_load();
        match strategy {
            PlacementStrategy::LoadBalanced => {
                assert_eq!(load.len(), 8, "load balancing uses every provider")
            }
            PlacementStrategy::LocalFirst => {
                assert_eq!(
                    load.len(),
                    1,
                    "local-first concentrates on the writer's node"
                )
            }
            PlacementStrategy::Random => assert!(load.len() > 1),
        }
    }
}

#[test]
fn snapshot_isolation_under_concurrent_appends() {
    let storage = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(1024),
    );
    let client = storage.client();
    let blob = client.create(None).unwrap();
    let v1 = client.append(blob, &vec![1u8; 10_000]).unwrap();

    std::thread::scope(|scope| {
        for t in 0..4 {
            let writer = storage.client_on(storage.topology().node(t));
            scope.spawn(move || {
                for _ in 0..10 {
                    writer.append(blob, &vec![9u8; 1024]).unwrap();
                }
            });
        }
        let reader = storage.client_on(storage.topology().node(5));
        scope.spawn(move || {
            for _ in 0..20 {
                let snapshot = reader.read(blob, v1, 0, 10_000).unwrap();
                assert!(snapshot.iter().all(|b| *b == 1), "v1 must never change");
            }
        });
    });
    let latest = client.latest_version(blob).unwrap();
    assert_eq!(latest.size, 10_000 + 4 * 10 * 1024);
    assert_eq!(latest.version.0, 41);
}
