//! Multi-tenant job scheduling policies: who gets the next free slot, who is
//! admitted next, and who is owed capacity.
//!
//! The jobtracker runs many jobs concurrently over one shared pool of
//! map/reduce slots (the per-node slot counts of its tasktrackers). Every
//! time a slot is free, the configured [`JobScheduler`] is asked which
//! admitted job should receive it, given each job's current demand and
//! holdings (a [`JobView`] per job); when an admission slot frees up, it is
//! asked which *queued* job to activate next (a [`QueuedView`] per queued
//! job). The three policies mirror Hadoop's scheduler lineage:
//!
//! * [`FifoScheduler`] — strict submission order, Hadoop's original default.
//!   One heavy early job monopolises the cluster; later tenants wait.
//! * [`FairScheduler`] — per-tenant weighted fair sharing: each tenant with
//!   demand is entitled to `total × weight / Σ weights` slots, and the
//!   tenant furthest below its entitlement gets the next slot. Tenants that
//!   are *owed* slots (holding less than their entitlement while the pool is
//!   exhausted) are reported by [`JobScheduler::starved`], which the
//!   jobtracker answers by preempting speculative clones first — duplicate
//!   work is sacrificed before anyone's primary attempts wait.
//! * [`CapacityScheduler`] — hard per-tenant slot caps: FIFO order among
//!   jobs whose tenant is under its cap, Hadoop's capacity-scheduler queue
//!   guarantee turned into a ceiling.
//!
//! Admission control is separate from slot scheduling: a [`TenantQuota`]
//! bounds how many jobs a tenant may have queued and running and how much
//! BSFS/HDFS namespace and storage space its completed jobs may have
//! consumed (checked at submit against the [`TenantUsage`] ledger).

use std::collections::BTreeMap;

/// Which slot pool a grant is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Map-task slots (also execute spill compaction).
    Map,
    /// Reduce-task slots.
    Reduce,
}

/// What the scheduler sees about one admitted job when arbitrating a slot.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Process-wide submission sequence number (FIFO order).
    pub seq: u64,
    /// The tenant the job belongs to.
    pub tenant: String,
    /// Claimable work items of the arbitrated kind the job has *right now*
    /// (pending tasks plus ready compaction batches — not speculation).
    pub demand: usize,
    /// Slots of the arbitrated kind the job currently holds.
    pub held: usize,
    /// Of those, slots currently executing speculative clones (the first
    /// thing preemption reclaims).
    pub speculative: usize,
}

/// What the scheduler sees about one queued (not yet admitted) job.
#[derive(Debug, Clone)]
pub struct QueuedView {
    /// Process-wide submission sequence number.
    pub seq: u64,
    /// The tenant the job belongs to.
    pub tenant: String,
    /// Jobs of the same tenant currently running.
    pub running_of_tenant: usize,
}

/// Policy deciding how the shared slot pool and the admission queue are
/// divided among concurrently running jobs and tenants.
pub trait JobScheduler: Send + Sync {
    /// Short policy name for reports ("fifo", "fair", "capacity").
    fn name(&self) -> &'static str;

    /// Which job should receive a free slot of `kind`? Returns an index
    /// into `jobs`, or `None` when no job should get one. Only jobs with
    /// `demand > 0` may be picked; `total` is the pool's capacity of that
    /// kind (for entitlement math).
    fn pick(&self, kind: SlotKind, total: usize, jobs: &[JobView]) -> Option<usize>;

    /// Which queued job should be activated next once an admission slot is
    /// free? Returns an index into `queued` (entries already filtered to
    /// those whose tenant is under its running-jobs quota). The default is
    /// submission order.
    fn pick_next(&self, queued: &[QueuedView]) -> Option<usize> {
        queued
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.seq)
            .map(|(i, _)| i)
    }

    /// Tenants currently *owed* slots of `kind`: they have unmet demand and
    /// hold less than their entitlement. The jobtracker preempts running
    /// speculative clones to free slots for them. Policies without an
    /// entitlement notion (FIFO, capacity) starve no one by definition.
    fn starved(&self, kind: SlotKind, total: usize, jobs: &[JobView]) -> Vec<String> {
        let _ = (kind, total, jobs);
        Vec::new()
    }
}

/// Strict submission order: the earliest-submitted job with demand gets
/// every free slot (Hadoop's original scheduler).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl JobScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&self, _kind: SlotKind, _total: usize, jobs: &[JobView]) -> Option<usize> {
        jobs.iter()
            .enumerate()
            .filter(|(_, j)| j.demand > 0)
            .min_by_key(|(_, j)| j.seq)
            .map(|(i, _)| i)
    }
}

/// Per-tenant weighted fair sharing (Hadoop's fair scheduler, tenant-level):
/// among tenants with unmet demand, each is entitled to
/// `total × weight / Σ weights`, and the next slot goes to the tenant
/// furthest below its entitlement (ties to the oldest job). Within a
/// tenant, jobs run in submission order.
#[derive(Debug, Clone, Default)]
pub struct FairScheduler {
    weights: BTreeMap<String, f64>,
}

impl FairScheduler {
    /// A fair scheduler where every tenant has weight 1.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Builder-style per-tenant weight override (default 1.0; values are
    /// clamped to be positive).
    pub fn with_weight(mut self, tenant: &str, weight: f64) -> Self {
        self.weights.insert(tenant.to_string(), weight.max(1e-9));
        self
    }

    fn weight(&self, tenant: &str) -> f64 {
        self.weights.get(tenant).copied().unwrap_or(1.0)
    }

    /// Per-tenant (entitled, held, min seq among demanding jobs) over the
    /// tenants that currently have demand.
    fn shares<'a>(
        &self,
        total: usize,
        jobs: &'a [JobView],
    ) -> BTreeMap<&'a str, (f64, usize, u64)> {
        let mut tenants: BTreeMap<&str, (f64, usize, u64)> = BTreeMap::new();
        for j in jobs.iter().filter(|j| j.demand > 0) {
            let entry = tenants.entry(&j.tenant).or_insert((0.0, 0, u64::MAX));
            entry.2 = entry.2.min(j.seq);
        }
        if tenants.is_empty() {
            return tenants;
        }
        let sum_w: f64 = tenants.keys().map(|t| self.weight(t)).sum();
        for (tenant, entry) in tenants.iter_mut() {
            entry.0 = total as f64 * self.weight(tenant) / sum_w;
        }
        // Held slots count whether or not the holding job still has demand:
        // a tenant's share is consumed by everything it is running.
        for j in jobs {
            if let Some(entry) = tenants.get_mut(j.tenant.as_str()) {
                entry.1 += j.held;
            }
        }
        tenants
    }
}

impl JobScheduler for FairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn pick(&self, _kind: SlotKind, total: usize, jobs: &[JobView]) -> Option<usize> {
        let shares = self.shares(total, jobs);
        // The demanding tenant with the largest deficit (entitled − held);
        // ties break toward the tenant with the oldest demanding job, which
        // keeps the choice deterministic.
        let (winner, _) = shares.iter().max_by(|(_, a), (_, b)| {
            let da = a.0 - a.1 as f64;
            let db = b.0 - b.1 as f64;
            da.partial_cmp(&db).unwrap().then(b.2.cmp(&a.2)) // older job (smaller seq) wins ties
        })?;
        jobs.iter()
            .enumerate()
            .filter(|(_, j)| j.demand > 0 && j.tenant == *winner)
            .min_by_key(|(_, j)| j.seq)
            .map(|(i, _)| i)
    }

    fn pick_next(&self, queued: &[QueuedView]) -> Option<usize> {
        // Activate the queued job of the tenant with the least weighted
        // running load, so a flood of submissions from one tenant cannot
        // monopolise the admission slots; ties in submission order.
        queued
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let la = a.running_of_tenant as f64 / self.weight(&a.tenant);
                let lb = b.running_of_tenant as f64 / self.weight(&b.tenant);
                la.partial_cmp(&lb).unwrap().then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
    }

    fn starved(&self, _kind: SlotKind, total: usize, jobs: &[JobView]) -> Vec<String> {
        self.shares(total, jobs)
            .iter()
            .filter(|(_, (entitled, held, _))| (*held as f64) < entitled.floor())
            .map(|(tenant, _)| tenant.to_string())
            .collect()
    }
}

/// Hard per-tenant slot ceilings: FIFO among jobs whose tenant is under its
/// cap of the arbitrated kind, and never a grant beyond the cap — capacity
/// guarantees by exclusion rather than redistribution.
#[derive(Debug, Clone)]
pub struct CapacityScheduler {
    caps: BTreeMap<String, SlotCaps>,
    default_caps: SlotCaps,
}

/// Per-tenant slot ceilings used by [`CapacityScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotCaps {
    /// Maximum concurrently-held map slots.
    pub map: usize,
    /// Maximum concurrently-held reduce slots.
    pub reduce: usize,
}

impl SlotCaps {
    /// Unlimited caps.
    pub fn unlimited() -> Self {
        SlotCaps {
            map: usize::MAX,
            reduce: usize::MAX,
        }
    }

    fn of(&self, kind: SlotKind) -> usize {
        match kind {
            SlotKind::Map => self.map,
            SlotKind::Reduce => self.reduce,
        }
    }
}

impl Default for CapacityScheduler {
    fn default() -> Self {
        CapacityScheduler {
            caps: BTreeMap::new(),
            default_caps: SlotCaps::unlimited(),
        }
    }
}

impl CapacityScheduler {
    /// A capacity scheduler with no caps (behaves like FIFO until caps are
    /// added).
    pub fn new() -> Self {
        CapacityScheduler::default()
    }

    /// Builder-style per-tenant cap.
    pub fn with_cap(mut self, tenant: &str, caps: SlotCaps) -> Self {
        self.caps.insert(tenant.to_string(), caps);
        self
    }

    /// Builder-style cap applied to tenants without an explicit entry.
    pub fn with_default_cap(mut self, caps: SlotCaps) -> Self {
        self.default_caps = caps;
        self
    }

    fn cap(&self, tenant: &str, kind: SlotKind) -> usize {
        self.caps
            .get(tenant)
            .copied()
            .unwrap_or(self.default_caps)
            .of(kind)
    }
}

impl JobScheduler for CapacityScheduler {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn pick(&self, kind: SlotKind, _total: usize, jobs: &[JobView]) -> Option<usize> {
        // Per-tenant held counts of this kind.
        let mut held: BTreeMap<&str, usize> = BTreeMap::new();
        for j in jobs {
            *held.entry(&j.tenant).or_insert(0) += j.held;
        }
        jobs.iter()
            .enumerate()
            .filter(|(_, j)| j.demand > 0 && held[j.tenant.as_str()] < self.cap(&j.tenant, kind))
            .min_by_key(|(_, j)| j.seq)
            .map(|(i, _)| i)
    }
}

/// Per-tenant admission quotas, checked when a job is submitted (queue
/// depth, namespace and storage budgets) and when it is activated (running
/// jobs). The default is unlimited everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum jobs the tenant may have waiting in the admission queue.
    pub max_queued_jobs: usize,
    /// Maximum jobs of the tenant running concurrently.
    pub max_running_jobs: usize,
    /// Budget of BSFS/HDFS namespace entries (output files) the tenant's
    /// completed jobs may have created; once consumed, submits are refused.
    pub max_namespace_entries: u64,
    /// Budget of storage bytes (provider space) the tenant's completed jobs
    /// may have written; once consumed, submits are refused.
    pub max_storage_bytes: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_queued_jobs: usize::MAX,
            max_running_jobs: usize::MAX,
            max_namespace_entries: u64::MAX,
            max_storage_bytes: u64::MAX,
        }
    }
}

impl TenantQuota {
    /// Unlimited quotas (the default).
    pub fn unlimited() -> Self {
        TenantQuota::default()
    }

    /// Builder-style queue-depth bound.
    pub fn with_max_queued(mut self, n: usize) -> Self {
        self.max_queued_jobs = n;
        self
    }

    /// Builder-style concurrent-running bound.
    pub fn with_max_running(mut self, n: usize) -> Self {
        self.max_running_jobs = n;
        self
    }

    /// Builder-style namespace-entry budget.
    pub fn with_max_namespace_entries(mut self, n: u64) -> Self {
        self.max_namespace_entries = n;
        self
    }

    /// Builder-style storage-byte budget.
    pub fn with_max_storage_bytes(mut self, n: u64) -> Self {
        self.max_storage_bytes = n;
        self
    }
}

/// What a tenant's completed jobs have consumed so far — the ledger the
/// namespace/storage budgets of [`TenantQuota`] are checked against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Output files created (namespace entries).
    pub namespace_entries: u64,
    /// Output bytes written (provider space).
    pub storage_bytes: u64,
    /// Jobs completed successfully.
    pub jobs_completed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, tenant: &str, demand: usize, held: usize) -> JobView {
        JobView {
            seq,
            tenant: tenant.to_string(),
            demand,
            held,
            speculative: 0,
        }
    }

    #[test]
    fn fifo_picks_the_oldest_demanding_job() {
        let s = FifoScheduler;
        let jobs = vec![
            job(3, "a", 5, 0),
            job(1, "b", 0, 2), // no demand: ineligible despite lowest seq
            job(2, "c", 1, 0),
        ];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(2));
        assert_eq!(s.pick(SlotKind::Map, 8, &[job(1, "a", 0, 0)]), None);
        assert!(s.starved(SlotKind::Map, 8, &jobs).is_empty());
    }

    #[test]
    fn fair_fills_the_largest_deficit_first() {
        let s = FairScheduler::new();
        // Equal weights over 8 slots, both demanding: each entitled to 4.
        // "heavy" holds 5, "light" holds 1 -> light's deficit is larger.
        let jobs = vec![job(1, "heavy", 10, 5), job(2, "light", 10, 1)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(1));
        // Once light reaches its entitlement the grant flips back.
        let jobs = vec![job(1, "heavy", 10, 3), job(2, "light", 10, 4)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(0));
    }

    #[test]
    fn fair_weights_skew_the_entitlement() {
        let s = FairScheduler::new().with_weight("gold", 3.0);
        // 8 slots, weights 3:1 -> gold entitled to 6, bronze to 2.
        let jobs = vec![job(1, "gold", 10, 4), job(2, "bronze", 10, 2)];
        // gold deficit 2, bronze deficit 0.
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(0));
    }

    #[test]
    fn fair_counts_held_slots_of_non_demanding_jobs() {
        let s = FairScheduler::new();
        // Tenant a's second job holds 4 slots with no demand left; its first
        // job demands more. a's held total (4) is at its entitlement, so b
        // gets the slot even though a's demanding job holds nothing.
        let jobs = vec![job(1, "a", 3, 0), job(2, "a", 0, 4), job(3, "b", 3, 2)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(2));
    }

    #[test]
    fn fair_reports_starved_tenants() {
        let s = FairScheduler::new();
        // 8 slots, both demanding, entitled 4 each: light holds 1 (< 4) and
        // is starved; heavy holds 7 (>= 4) and is not.
        let jobs = vec![job(1, "heavy", 10, 7), job(2, "light", 10, 1)];
        assert_eq!(s.starved(SlotKind::Map, 8, &jobs), vec!["light"]);
        // No demand, no starvation.
        let jobs = vec![job(1, "heavy", 10, 8), job(2, "light", 0, 0)];
        assert!(s.starved(SlotKind::Map, 8, &jobs).is_empty());
    }

    #[test]
    fn fair_activation_balances_running_jobs_per_tenant() {
        let s = FairScheduler::new();
        let queued = vec![
            QueuedView {
                seq: 1,
                tenant: "flooder".into(),
                running_of_tenant: 3,
            },
            QueuedView {
                seq: 9,
                tenant: "light".into(),
                running_of_tenant: 0,
            },
        ];
        // The light tenant activates first despite its later submission.
        assert_eq!(s.pick_next(&queued), Some(1));
        // FIFO's default activation is submission order.
        assert_eq!(FifoScheduler.pick_next(&queued), Some(0));
    }

    #[test]
    fn capacity_enforces_hard_caps_in_fifo_order() {
        let s = CapacityScheduler::new().with_cap("capped", SlotCaps { map: 2, reduce: 1 });
        // capped is at its map cap: the younger uncapped job wins.
        let jobs = vec![job(1, "capped", 10, 2), job(2, "free", 1, 5)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(1));
        // Under the cap, FIFO order applies.
        let jobs = vec![job(1, "capped", 10, 1), job(2, "free", 1, 0)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), Some(0));
        // The reduce cap is separate (held counts are per-kind views).
        let jobs = vec![job(1, "capped", 10, 1)];
        assert_eq!(s.pick(SlotKind::Reduce, 4, &jobs), None);
        // Everyone capped and at cap: no grant at all.
        let s = s.with_default_cap(SlotCaps { map: 0, reduce: 0 });
        let jobs = vec![job(2, "free", 1, 0)];
        assert_eq!(s.pick(SlotKind::Map, 8, &jobs), None);
    }

    #[test]
    fn quota_builders_and_defaults() {
        let q = TenantQuota::default();
        assert_eq!(q.max_queued_jobs, usize::MAX);
        let q = TenantQuota::unlimited()
            .with_max_queued(2)
            .with_max_running(1)
            .with_max_namespace_entries(100)
            .with_max_storage_bytes(1 << 20);
        assert_eq!(q.max_queued_jobs, 2);
        assert_eq!(q.max_running_jobs, 1);
        assert_eq!(q.max_namespace_entries, 100);
        assert_eq!(q.max_storage_bytes, 1 << 20);
    }
}
