//! Offline shim for the [`serde_json`](https://docs.rs/serde_json) crate.
//!
//! Only `to_string` is provided — the single entry point the workspace uses.
//! Serialization is infallible in the shim (the real crate can only fail on
//! non-string map keys and io errors, neither of which applies here), but the
//! `Result` signature is preserved for drop-in compatibility.

use std::fmt;

/// Error type mirroring `serde_json::Error`. Never constructed by the shim.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Point {
        x: u32,
        label: String,
    }

    #[derive(Serialize)]
    enum Tag {
        Unit,
        One(u32),
        Pair(u32, bool),
    }

    #[derive(Serialize)]
    struct Wrapper(u64);

    #[test]
    fn named_struct_becomes_object() {
        let p = Point {
            x: 3,
            label: "a\"b".into(),
        };
        assert_eq!(super::to_string(&p).unwrap(), r#"{"x":3,"label":"a\"b"}"#);
    }

    #[test]
    fn vec_of_structs_becomes_array() {
        let ps = [
            Point {
                x: 1,
                label: "a".into(),
            },
            Point {
                x: 2,
                label: "b".into(),
            },
        ];
        assert_eq!(
            super::to_string(&ps[..]).unwrap(),
            r#"[{"x":1,"label":"a"},{"x":2,"label":"b"}]"#
        );
    }

    #[test]
    fn enums_are_externally_tagged() {
        assert_eq!(super::to_string(&Tag::Unit).unwrap(), r#""Unit""#);
        assert_eq!(super::to_string(&Tag::One(7)).unwrap(), r#"{"One":7}"#);
        assert_eq!(
            super::to_string(&Tag::Pair(7, true)).unwrap(),
            r#"{"Pair":[7,true]}"#
        );
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(super::to_string(&Wrapper(9)).unwrap(), "9");
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
    }
}
