//! Quickstart: the BlobSeer blob API and the BSFS file-system layer in one
//! small program.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};

fn main() {
    // --- 1. Raw BlobSeer: versioned blobs ------------------------------------
    let storage = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(4)
            .with_page_size(4096),
    );
    let client = storage.client();

    let blob = client.create(None).expect("create blob");
    let v1 = client
        .append(blob, b"first snapshot of the data\n")
        .expect("append");
    let v2 = client
        .append(blob, b"second snapshot adds this line\n")
        .expect("append");

    println!(
        "blob {blob} now has {} published versions",
        client.versions(blob).unwrap().len()
    );
    println!(
        "  latest ({}): {} bytes",
        client.latest_version(blob).unwrap().version,
        client.size(blob).unwrap()
    );
    // Older snapshots stay readable forever.
    let snapshot = client.read(blob, v1, 0, 27).unwrap();
    println!(
        "  {v1} still reads: {:?}",
        String::from_utf8_lossy(&snapshot).trim_end()
    );
    let _ = v2;

    // --- 2. BSFS: the file-system layer used under MapReduce -----------------
    let fs = Bsfs::new(storage, BsfsConfig::default().with_block_size(64 * 1024));

    let mut writer = fs.create("/data/input.txt").expect("create file");
    for i in 0..1000 {
        writer
            .write(format!("record-{i:04}\n").as_bytes())
            .expect("write record");
    }
    writer.close().expect("close");

    println!(
        "/data/input.txt holds {} bytes",
        fs.len("/data/input.txt").unwrap()
    );
    let mut reader = fs.open("/data/input.txt").unwrap();
    let head = reader.read_at(0, 24).unwrap();
    println!("first records: {:?}", String::from_utf8_lossy(&head));

    // The layout is exposed so a scheduler can ship computation to the data.
    for block in fs.locate("/data/input.txt", 0, 4 * 64 * 1024).unwrap() {
        println!("  bytes {:>8} on nodes {:?}", block.range, block.nodes);
    }
}
