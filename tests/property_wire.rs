//! Transport identity: the simulated wire changes what operations *cost*,
//! never what they *return*. Random write/append/read interleavings must be
//! byte-identical across `InProc` and `SimNet` deployments, and across the
//! ranged/coalesced read knobs — including reads of historical versions, so
//! coalescing provably never reorders a page fetch against the writes it
//! conflicts with (every version reads back as the snapshot it committed).

use blobseer::{BlobSeer, BlobSeerClient, BlobSeerConfig};
use proptest::prelude::*;
use simcluster::netmodel::NetworkModel;
use simcluster::topology::ClusterTopology;
use simcluster::{Clock, NodeId, SimClock, SimDuration};
use std::sync::Arc;
use wire::{InProc, SimNet, Transport};

const PAGE: u64 = 32;

/// One step of the interleaving, offsets/lengths still unscaled.
#[derive(Debug, Clone)]
enum Op {
    Append { len: u64, fill: u8 },
    Write { at: u64, len: u64, fill: u8 },
    Read { at: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100, any::<u8>()).prop_map(|(len, fill)| Op::Append { len, fill }),
        (any::<u64>(), 1u64..100, any::<u8>()).prop_map(|(at, len, fill)| Op::Write {
            at,
            len,
            fill
        }),
        (any::<u64>(), 1u64..200).prop_map(|(at, len)| Op::Read { at, len }),
    ]
}

/// A deployment under test plus the blob the interleaving runs against.
struct Arm {
    sys: Arc<BlobSeer>,
    client: BlobSeerClient,
    blob: blobseer::BlobId,
    net: Option<Arc<SimNet>>,
}

fn deploy(ranged: bool, coalesced: bool, simulate: bool) -> Arm {
    let topo = ClusterTopology::builder()
        .sites(2)
        .racks_per_site(2)
        .nodes_per_rack(2)
        .build();
    let net = Arc::new(SimNet::new(topo.clone(), NetworkModel::grid5000_like()));
    let transport: Arc<dyn Transport> = if simulate {
        Arc::clone(&net) as Arc<dyn Transport>
    } else {
        Arc::new(InProc::new())
    };
    let provider_nodes: Vec<NodeId> = topo.all_nodes().take(4).collect();
    let sys = BlobSeer::with_transport(
        BlobSeerConfig::for_tests()
            .with_providers(provider_nodes.len())
            .with_page_size(PAGE)
            .with_page_replication(2)
            .with_io_parallelism(1)
            .with_ranged_reads(ranged)
            .with_coalesced_reads(coalesced),
        &topo,
        &provider_nodes,
        Arc::new(SimClock::new()) as Arc<dyn Clock>,
        transport,
    );
    // The client runs on a node that hosts no provider, so every page moves.
    let client = sys.client_on(topo.node(5));
    let blob = client.create(Some(PAGE)).unwrap();
    Arm {
        sys,
        client,
        blob,
        net: simulate.then_some(net),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Drive the same interleaving through four deployments — in-process,
    /// and SimNet with naive / ranged / ranged+coalesced reads — against a
    /// local mirror. Every read, every historical version, and the final
    /// image must agree byte for byte everywhere.
    #[test]
    fn simnet_and_read_knobs_are_byte_identical_to_inproc(
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        let arms = [
            deploy(true, true, false),  // inproc, ranged+coalesced
            deploy(false, false, true), // simnet, naive
            deploy(true, false, true),  // simnet, ranged
            deploy(true, true, true),   // simnet, ranged+coalesced
        ];
        let mut mirror: Vec<u8> = Vec::new();
        // Every committed version's expected image, for the snapshot sweep.
        let mut snapshots: Vec<(blobseer::Version, Vec<u8>)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Append { len, fill } => {
                    let data = vec![fill; len as usize];
                    let mut version = None;
                    for arm in &arms {
                        let v = arm.client.append(arm.blob, &data).unwrap();
                        prop_assert_eq!(*version.get_or_insert(v), v);
                    }
                    mirror.extend_from_slice(&data);
                    snapshots.push((version.unwrap(), mirror.clone()));
                }
                Op::Write { at, len, fill } => {
                    let at = at % (mirror.len() as u64 + 1);
                    let data = vec![fill; len as usize];
                    let mut version = None;
                    for arm in &arms {
                        let v = arm.client.write(arm.blob, at, &data).unwrap();
                        prop_assert_eq!(*version.get_or_insert(v), v);
                    }
                    let end = (at + len) as usize;
                    if end > mirror.len() {
                        mirror.resize(end, 0);
                    }
                    mirror[at as usize..end].copy_from_slice(&data);
                    snapshots.push((version.unwrap(), mirror.clone()));
                }
                Op::Read { at, len } => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let at = at % mirror.len() as u64;
                    let len = len.min(mirror.len() as u64 - at);
                    if len == 0 {
                        continue;
                    }
                    let expected = &mirror[at as usize..(at + len) as usize];
                    for arm in &arms {
                        let got = arm.client.read_latest(arm.blob, at, len).unwrap();
                        prop_assert_eq!(&got[..], expected);
                    }
                }
            }
        }

        // Snapshot isolation across the wire: every historical version still
        // reads back as the image it committed, on every arm. This is the
        // reordering witness — a coalesced batch that slipped around one of
        // its version's writes would surface here as a stale or torn page.
        for (version, image) in &snapshots {
            if image.is_empty() {
                continue;
            }
            for arm in &arms {
                let got = arm
                    .client
                    .read(arm.blob, *version, 0, image.len() as u64)
                    .unwrap();
                prop_assert_eq!(&got[..], &image[..]);
            }
        }

        // The simulated arms actually charged virtual time for the traffic
        // the writes moved, and the in-process arm stayed free.
        for arm in &arms {
            if snapshots.is_empty() {
                continue;
            }
            prop_assert!(arm.sys.provider_wire().messages() > 0);
            if let Some(net) = &arm.net {
                prop_assert!(net.makespan() > SimDuration::ZERO);
            }
        }
    }
}
