//! A single metadata provider node.
//!
//! Each node owns a key-value map plus a liveness flag. The `Dht` front-end
//! decides *which* nodes a key lives on; the node itself only stores and
//! serves.
//!
//! The node interior comes in two shapes, selected by [`NodeBackend`]:
//!
//! * [`NodeBackend::Actor`] (the default) — the map lives single-threaded
//!   inside a message-loop actor ([`miniexec::actor`]); the `DhtNode` the
//!   rest of the system holds is a thin handle that enqueues commands and
//!   waits for replies. No shared locks, and mailbox FIFO gives the same
//!   kill-then-put ordering the locked version had.
//! * [`NodeBackend::Direct`] — the previous `RwLock<HashMap>` interior, kept
//!   for one PR as the differential oracle for the actor port.
//!
//! The public API is identical in both modes. The only shared state in actor
//! mode is a read-only mirror of the liveness flag, so the hot-path
//! `is_alive` check the front-end performs per replica stays a plain atomic
//! load; `kill`/`revive` go through the mailbox (and update the mirror from
//! inside the actor) so they serialize with data operations.

use bytes::Bytes;
use miniexec::{actor, oneshot};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a DHT node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtNodeId(pub u64);

/// Which interior a [`DhtNode`] (and every node of a `Dht`) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeBackend {
    /// Message-loop actor owning its state single-threaded (the default).
    #[default]
    Actor,
    /// Shared `RwLock` interior (legacy scoped-pool data plane).
    Direct,
}

/// Commands understood by the node actor.
enum NodeMsg {
    Put {
        key: Vec<u8>,
        value: Bytes,
        done: oneshot::Sender<()>,
    },
    Get {
        key: Vec<u8>,
        reply: oneshot::Sender<Option<Bytes>>,
    },
    Remove {
        key: Vec<u8>,
        reply: oneshot::Sender<bool>,
    },
    Len(oneshot::Sender<usize>),
    Entries(oneshot::Sender<Vec<(Vec<u8>, Bytes)>>),
    Kill(oneshot::Sender<()>),
    Revive(oneshot::Sender<()>),
}

/// The actor's single-threaded state: plain fields, no locks.
struct NodeState {
    data: HashMap<Vec<u8>, Bytes>,
    alive: bool,
    /// Mirrors shared with the handle so hot-path reads stay lock-free.
    alive_mirror: Arc<AtomicBool>,
    bytes_mirror: Arc<AtomicU64>,
}

impl NodeState {
    fn handle(&mut self, msg: NodeMsg) {
        match msg {
            NodeMsg::Put { key, value, done } => {
                let new_len = value.len() as u64;
                let old_len = self
                    .data
                    .insert(key, value)
                    .map(|old| old.len() as u64)
                    .unwrap_or(0);
                if new_len >= old_len {
                    self.bytes_mirror
                        .fetch_add(new_len - old_len, Ordering::Relaxed);
                } else {
                    self.bytes_mirror
                        .fetch_sub(old_len - new_len, Ordering::Relaxed);
                }
                let _ = done.send(());
            }
            NodeMsg::Get { key, reply } => {
                let _ = reply.send(self.data.get(&key).cloned());
            }
            NodeMsg::Remove { key, reply } => {
                let removed = self.data.remove(&key);
                if let Some(old) = &removed {
                    self.bytes_mirror
                        .fetch_sub(old.len() as u64, Ordering::Relaxed);
                }
                let _ = reply.send(removed.is_some());
            }
            NodeMsg::Len(reply) => {
                let _ = reply.send(self.data.len());
            }
            NodeMsg::Entries(reply) => {
                let entries = self
                    .data
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let _ = reply.send(entries);
            }
            NodeMsg::Kill(done) => {
                self.alive = false;
                self.alive_mirror.store(false, Ordering::Release);
                let _ = done.send(());
            }
            NodeMsg::Revive(done) => {
                self.alive = true;
                self.alive_mirror.store(true, Ordering::Release);
                let _ = done.send(());
            }
        }
    }
}

/// Legacy shared-lock interior.
struct DirectNode {
    data: RwLock<HashMap<Vec<u8>, Bytes>>,
    data_bytes: AtomicU64,
}

enum NodeInner {
    Actor(actor::Handle<NodeMsg>),
    Direct(DirectNode),
}

/// One metadata provider: stores key-value pairs and can be killed/revived
/// for failure-injection experiments.
pub struct DhtNode {
    id: DhtNodeId,
    inner: NodeInner,
    alive: Arc<AtomicBool>,
    data_bytes: Arc<AtomicU64>,
}

impl DhtNode {
    /// Create a live, empty node on the default (actor) backend.
    pub fn new(id: DhtNodeId) -> Self {
        Self::with_backend(id, NodeBackend::default())
    }

    /// Create a live, empty node on an explicit backend.
    pub fn with_backend(id: DhtNodeId, backend: NodeBackend) -> Self {
        let alive = Arc::new(AtomicBool::new(true));
        let data_bytes = Arc::new(AtomicU64::new(0));
        let inner = match backend {
            NodeBackend::Actor => {
                let state = NodeState {
                    data: HashMap::new(),
                    alive: true,
                    alive_mirror: Arc::clone(&alive),
                    bytes_mirror: Arc::clone(&data_bytes),
                };
                NodeInner::Actor(actor::spawn(
                    &format!("dht-node-{}", id.0),
                    state,
                    NodeState::handle,
                ))
            }
            NodeBackend::Direct => NodeInner::Direct(DirectNode {
                data: RwLock::new(HashMap::new()),
                data_bytes: AtomicU64::new(0),
            }),
        };
        DhtNode {
            id,
            inner,
            alive,
            data_bytes,
        }
    }

    /// This node's id.
    pub fn id(&self) -> DhtNodeId {
        self.id
    }

    /// Store a value (replaces any existing value for the key).
    pub fn put(&self, key: &[u8], value: Bytes) {
        match &self.inner {
            NodeInner::Actor(h) => {
                let _ = h.call(|done| NodeMsg::Put {
                    key: key.to_vec(),
                    value,
                    done,
                });
            }
            NodeInner::Direct(d) => {
                let mut guard = d.data.write();
                let new_len = value.len() as u64;
                match guard.insert(key.to_vec(), value) {
                    Some(old) => {
                        let old_len = old.len() as u64;
                        if new_len >= old_len {
                            d.data_bytes.fetch_add(new_len - old_len, Ordering::Relaxed);
                        } else {
                            d.data_bytes.fetch_sub(old_len - new_len, Ordering::Relaxed);
                        }
                    }
                    None => {
                        d.data_bytes.fetch_add(new_len, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Fetch a value.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        match &self.inner {
            NodeInner::Actor(h) => h
                .call(|reply| NodeMsg::Get {
                    key: key.to_vec(),
                    reply,
                })
                .unwrap_or(None),
            NodeInner::Direct(d) => d.data.read().get(key).cloned(),
        }
    }

    /// Remove a value; returns whether one was present.
    pub fn remove(&self, key: &[u8]) -> bool {
        match &self.inner {
            NodeInner::Actor(h) => h
                .call(|reply| NodeMsg::Remove {
                    key: key.to_vec(),
                    reply,
                })
                .unwrap_or(false),
            NodeInner::Direct(d) => match d.data.write().remove(key) {
                Some(old) => {
                    d.data_bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                    true
                }
                None => false,
            },
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        match &self.inner {
            NodeInner::Actor(h) => h.call(NodeMsg::Len).unwrap_or(0),
            NodeInner::Direct(d) => d.data.read().len(),
        }
    }

    /// True when the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of values stored.
    pub fn data_bytes(&self) -> u64 {
        match &self.inner {
            NodeInner::Actor(_) => self.data_bytes.load(Ordering::Relaxed),
            NodeInner::Direct(d) => d.data_bytes.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of all entries (used by rebalancing).
    pub fn entries(&self) -> Vec<(Vec<u8>, Bytes)> {
        match &self.inner {
            NodeInner::Actor(h) => h.call(NodeMsg::Entries).unwrap_or_default(),
            NodeInner::Direct(d) => d
                .data
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Is the node currently serving requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash: the node stops serving but keeps its data (so a
    /// revive models a restart from persistent storage). Serialized through
    /// the mailbox in actor mode, so a `put` enqueued after the kill
    /// observes the dead state.
    pub fn kill(&self) {
        match &self.inner {
            NodeInner::Actor(h) => {
                let _ = h.call(NodeMsg::Kill);
            }
            NodeInner::Direct(_) => self.alive.store(false, Ordering::Release),
        }
    }

    /// Bring the node back.
    pub fn revive(&self) {
        match &self.inner {
            NodeInner::Actor(h) => {
                let _ = h.call(NodeMsg::Revive);
            }
            NodeInner::Direct(_) => self.alive.store(true, Ordering::Release),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends(test: impl Fn(DhtNode)) {
        test(DhtNode::with_backend(DhtNodeId(1), NodeBackend::Actor));
        test(DhtNode::with_backend(DhtNodeId(1), NodeBackend::Direct));
    }

    #[test]
    fn put_get_remove() {
        both_backends(|n| {
            assert_eq!(n.id(), DhtNodeId(1));
            assert!(n.is_empty());
            n.put(b"a", Bytes::from_static(b"1"));
            n.put(b"b", Bytes::from_static(b"22"));
            assert_eq!(n.len(), 2);
            assert_eq!(n.data_bytes(), 3);
            assert_eq!(n.get(b"a").unwrap(), Bytes::from_static(b"1"));
            assert!(n.remove(b"a"));
            assert!(!n.remove(b"a"));
            assert_eq!(n.data_bytes(), 2);
        });
    }

    #[test]
    fn overwrite_updates_byte_count() {
        both_backends(|n| {
            n.put(b"k", Bytes::from_static(b"0123456789"));
            n.put(b"k", Bytes::from_static(b"xy"));
            assert_eq!(n.data_bytes(), 2);
            n.put(b"k", Bytes::from_static(b"0123"));
            assert_eq!(n.data_bytes(), 4);
        });
    }

    #[test]
    fn kill_and_revive_preserve_data() {
        both_backends(|n| {
            n.put(b"k", Bytes::from_static(b"v"));
            assert!(n.is_alive());
            n.kill();
            assert!(!n.is_alive());
            // Data survives the "crash" (models durable storage).
            n.revive();
            assert!(n.is_alive());
            assert_eq!(n.get(b"k").unwrap(), Bytes::from_static(b"v"));
        });
    }

    #[test]
    fn entries_snapshot() {
        both_backends(|n| {
            for i in 0..10u8 {
                n.put(&[i], Bytes::from(vec![i; 4]));
            }
            let mut entries = n.entries();
            entries.sort();
            assert_eq!(entries.len(), 10);
            assert_eq!(entries[3].0, vec![3u8]);
        });
    }

    #[test]
    fn dropping_the_node_shuts_the_actor_down_without_hanging() {
        let n = DhtNode::with_backend(DhtNodeId(9), NodeBackend::Actor);
        n.put(b"k", Bytes::from_static(b"v"));
        drop(n); // handle drop disconnects the mailbox; the loop exits
    }
}
