//! Virtual time primitives.
//!
//! All simulated experiments run in *virtual* time: a monotonically increasing
//! counter of microseconds that advances only when the flow simulator decides
//! it should. Keeping the unit integral (µs) makes the simulation perfectly
//! deterministic and free of floating-point drift in the event loop, while the
//! conversion helpers keep the arithmetic convenient for rate computations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the virtual time line, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is in
    /// the future (callers in the event loop never do that, but saturating is
    /// friendlier than panicking for ad-hoc metric code).
    pub fn duration_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Microseconds in this duration.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True when the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Compute the virtual time needed to move `bytes` at `bytes_per_sec`.
///
/// Rounds up to a whole microsecond so that a non-empty transfer always takes
/// strictly positive time, which the event loop relies on for progress.
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
    let secs = bytes as f64 / bytes_per_sec;
    let us = (secs * MICROS_PER_SEC as f64).ceil() as u64;
    SimDuration(us.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_secs(2);
        assert_eq!(t, SimTime::from_secs(3));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_secs(2));
        // Saturating subtraction of a later time.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        let mut d = SimDuration::from_secs(1);
        d += SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(2));
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(4);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(3));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_rounds_up_and_handles_zero() {
        assert_eq!(transfer_time(0, 1e9), SimDuration::ZERO);
        // 1 byte at 1 GB/s is 1 ns, rounds up to 1 us.
        assert_eq!(transfer_time(1, 1e9), SimDuration::from_micros(1));
        // 100 MB at 100 MB/s is exactly one second.
        assert_eq!(
            transfer_time(100_000_000, 100_000_000.0),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_time_rejects_zero_bandwidth() {
        let _ = transfer_time(10, 0.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500000s");
    }
}
