//! # kvstore — durable page storage for BlobSeer providers
//!
//! BlobSeer providers persist their pages through a BerkeleyDB layer (paper
//! §III-A: "offers persistency through a BerkleyDB layer"). This crate is the
//! from-scratch substitute: a small, dependency-free key-value store with two
//! interchangeable back-ends behind the [`PageStore`] trait:
//!
//! * [`MemStore`] — a sharded in-memory map. Used by unit tests, by
//!   simulation-mode experiments, and as the page cache tier of providers.
//! * [`LogStore`] — an append-only, log-structured on-disk store: records are
//!   written sequentially to segment files with a CRC-32 checksum, an
//!   in-memory index maps keys to their latest on-disk location, deletions are
//!   tombstones, old segments are garbage-collected by compaction, and the
//!   whole index is rebuilt by scanning segments on startup (crash recovery).
//!
//! The trait is object-safe so that providers can be configured with either
//! backend at run time.
//!
//! ```
//! use kvstore::{MemStore, PageStore};
//! use bytes::Bytes;
//!
//! let store = MemStore::new();
//! store.put(b"blob-1/page-0", Bytes::from_static(b"hello")).unwrap();
//! assert_eq!(store.get(b"blob-1/page-0").unwrap().unwrap(), Bytes::from_static(b"hello"));
//! assert_eq!(store.len(), 1);
//! ```

mod crc32;
mod error;
mod logstore;
mod memstore;

pub use crc32::{crc32, Crc32};
pub use error::{KvError, KvResult};
pub use logstore::{LogStore, LogStoreConfig, LogStoreStats};
pub use memstore::MemStore;

use bytes::Bytes;

/// Object-safe interface of a page store.
///
/// Keys are arbitrary byte strings (BlobSeer uses `"<blob>/<version>/<page>"`
/// style keys); values are page contents. All operations must be safe to call
/// concurrently from many threads.
pub trait PageStore: Send + Sync {
    /// Store `value` under `key`, replacing any previous value.
    fn put(&self, key: &[u8], value: Bytes) -> KvResult<()>;

    /// Fetch the value stored under `key`, or `None` if absent.
    fn get(&self, key: &[u8]) -> KvResult<Option<Bytes>>;

    /// Remove `key`. Removing an absent key is not an error; the return value
    /// says whether a value was actually removed.
    fn delete(&self, key: &[u8]) -> KvResult<bool>;

    /// Does the store currently hold a value for `key`?
    fn contains(&self, key: &[u8]) -> KvResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Number of live keys.
    fn len(&self) -> usize;

    /// True when the store holds no live keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of live value bytes (used for provider load accounting).
    fn data_bytes(&self) -> u64;

    /// Flush any buffered writes to stable storage. A no-op for purely
    /// in-memory stores.
    fn sync(&self) -> KvResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    // The default-method behaviour is shared by both back-ends; test it once
    // through the trait object to make sure object-safety holds too.
    fn exercise(store: &dyn PageStore) {
        assert!(store.is_empty());
        store.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(store.contains(b"k").unwrap());
        assert!(!store.contains(b"missing").unwrap());
        assert!(!store.is_empty());
        assert_eq!(store.data_bytes(), 1);
        store.sync().unwrap();
        assert!(store.delete(b"k").unwrap());
        assert!(!store.delete(b"k").unwrap());
        assert!(store.is_empty());
    }

    #[test]
    fn memstore_satisfies_trait_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn logstore_satisfies_trait_contract() {
        let dir = std::env::temp_dir().join(format!("kvstore-trait-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LogStore::open(&dir, LogStoreConfig::default()).unwrap();
        exercise(&store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
