//! F2 — future-work experiment (paper §V): versioning lets "complex MapReduce
//! workflows run in parallel, on different snapshots of the same original
//! dataset". A grep-style scan runs against snapshot v1 of a dataset while a
//! concurrent writer keeps appending new data (creating later versions); the
//! scan's result must reflect exactly the snapshot it targets.

use blobseer::{BlobSeer, BlobSeerConfig, Version};
use workloads::TextGenerator;

fn count_matches(data: &[u8], pattern: &str) -> usize {
    String::from_utf8_lossy(data)
        .lines()
        .filter(|l| l.contains(pattern))
        .count()
}

fn main() {
    let block = 64 * 1024u64;
    let sys = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(block),
    );
    let client = sys.client();
    let blob = client.create(Some(block)).unwrap();

    // Version 1: the original dataset with a known number of marker lines.
    let mut generator = TextGenerator::new(7);
    let mut original = String::new();
    let mut expected_v1 = 0usize;
    for i in 0..5_000 {
        if i % 13 == 0 {
            original.push_str("marker line for snapshot one\n");
            expected_v1 += 1;
        } else {
            original.push_str(&generator.sentence());
            original.push('\n');
        }
    }
    let v1 = client.append(blob, original.as_bytes()).unwrap();
    let v1_size = client.size(blob).unwrap();
    println!(
        "snapshot v1 written: {} bytes, {} marker lines",
        v1_size, expected_v1
    );

    // Concurrently: a writer keeps appending (new versions), while a scan
    // runs over snapshot v1.
    let writer_client = sys.client_on(sys.topology().node(1));
    let scan_client = sys.client_on(sys.topology().node(2));
    let (snapshot_count, appended_versions) = std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut g = TextGenerator::new(99);
            let mut latest = Version(0);
            for _ in 0..20 {
                let mut extra = String::from("marker line added after the snapshot\n");
                extra.push_str(&g.sentences(100));
                latest = writer_client.append(blob, extra.as_bytes()).unwrap();
            }
            latest
        });
        let scanner = s.spawn(move || {
            // Scan snapshot v1 block by block.
            let mut matches = 0usize;
            let mut offset = 0u64;
            while offset < v1_size {
                let n = block.min(v1_size - offset);
                let data = scan_client.read(blob, v1, offset, n).unwrap();
                matches += count_matches(&data, "marker line for snapshot one");
                offset += n;
            }
            matches
        });
        (scanner.join().unwrap(), writer.join().unwrap())
    });

    println!("concurrent writer advanced the blob to {appended_versions}");
    println!("scan over snapshot v1 found {snapshot_count} marker lines (expected ~{expected_v1})");
    let latest = client.latest_version(blob).unwrap();
    println!(
        "latest version is now {} with {} bytes",
        latest.version, latest.size
    );
    // Count on line boundaries can differ by the block-split lines; a scan on
    // whole data confirms the exact number.
    let all_v1 = client.read(blob, v1, 0, v1_size).unwrap();
    assert_eq!(
        count_matches(&all_v1, "marker line for snapshot one"),
        expected_v1
    );
    assert!(latest.size > v1_size);
    println!("snapshot isolation holds: the v1 scan was unaffected by 20 concurrent appends");
    println!();

    // Snapshot GC under a rewrite loop: the same blob fully rewritten round
    // after round, with the retention policy off (history grows without
    // bound) and on (keep-last-2: the footprint reaches a steady state and
    // stays there). The paper's versioning never overwrites data, so this is
    // the knob that makes snapshot workflows sustainable.
    println!("== F2: snapshot GC under a rewrite loop (full rewrite x 12 rounds) ==");
    #[derive(serde::Serialize)]
    struct GcRow {
        label: String,
        rounds: usize,
        metadata_entries_mid: usize,
        metadata_entries_end: usize,
        provider_pages_mid: usize,
        provider_pages_end: usize,
        versions_retired: u64,
        nodes_removed: u64,
        pages_deleted: u64,
        tombstones_compacted: u64,
    }
    let footprint = |sys: &std::sync::Arc<BlobSeer>| -> (usize, usize) {
        let entries = sys.metadata().dht().stats().total_entries;
        let pages = sys
            .provider_manager()
            .providers()
            .iter()
            .map(|p| p.stats().pages)
            .sum::<usize>();
        (entries, pages)
    };
    let rounds = 12usize;
    let mut gc_rows = Vec::new();
    for (label, keep) in [("gc off   ", None), ("gc keep-2", Some(2))] {
        let mut config = BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(1024);
        if let Some(keep) = keep {
            config = config.with_gc_keep_last(keep);
        }
        let sys = BlobSeer::new(config);
        let client = sys.client();
        let blob = client.create(Some(1024)).unwrap();
        let mut report = blobseer::GcReport::default();
        let mut mid = (0, 0);
        for round in 0..rounds {
            let data = vec![b'a' + (round % 26) as u8; 32 * 1024];
            client.write(blob, 0, &data).unwrap();
            report.absorb(&sys.collect_garbage().unwrap());
            if round == rounds / 2 - 1 {
                mid = footprint(&sys);
            }
        }
        let end = footprint(&sys);
        println!(
            "{label}: metadata entries {} -> {}, provider pages {} -> {} \
             (mid-loop -> end); retired {} versions, removed {} nodes, \
             deleted {} pages, compacted {} tombstones",
            mid.0,
            end.0,
            mid.1,
            end.1,
            report.versions_retired,
            report.nodes_removed,
            report.pages_deleted,
            report.tombstones_compacted,
        );
        gc_rows.push(GcRow {
            label: label.trim().to_string(),
            rounds,
            metadata_entries_mid: mid.0,
            metadata_entries_end: end.0,
            provider_pages_mid: mid.1,
            provider_pages_end: end.1,
            versions_retired: report.versions_retired,
            nodes_removed: report.nodes_removed,
            pages_deleted: report.pages_deleted,
            tombstones_compacted: report.tombstones_compacted,
        });
    }
    assert!(
        gc_rows[0].metadata_entries_end > gc_rows[0].metadata_entries_mid
            && gc_rows[0].provider_pages_end > gc_rows[0].provider_pages_mid,
        "without GC the rewrite loop must keep growing the footprint"
    );
    assert!(
        gc_rows[1].metadata_entries_end == gc_rows[1].metadata_entries_mid
            && gc_rows[1].provider_pages_end == gc_rows[1].provider_pages_mid,
        "with keep-last-2 retention the footprint must be flat at steady state"
    );
    assert!(gc_rows[1].versions_retired > 0 && gc_rows[1].pages_deleted > 0);
    println!(
        "GC keeps the loop footprint flat ({} metadata entries, {} pages) where \
         the unbounded history reached {} entries and {} pages",
        gc_rows[1].metadata_entries_end,
        gc_rows[1].provider_pages_end,
        gc_rows[0].metadata_entries_end,
        gc_rows[0].provider_pages_end,
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        snapshot_markers_expected: usize,
        snapshot_markers_found: usize,
        gc_loop: Vec<GcRow>,
    }
    bench::emit_bench_json(
        "F2",
        &Snapshot {
            experiment: "F2",
            snapshot_markers_expected: expected_v1,
            snapshot_markers_found: snapshot_count,
            gc_loop: gc_rows,
        },
    );
}
