//! Tasktrackers, task attempts, and the execution of individual map/reduce
//! tasks.
//!
//! "The framework consists of a single master jobtracker, and multiple slave
//! tasktrackers, one per node. A MapReduce job is split into a set of tasks,
//! which are executed by the tasktrackers, as assigned by the jobtracker"
//! (paper §II-A). A [`TaskTracker`] here is the per-node executor descriptor
//! (which node, how many concurrent slots); the actual task bodies —
//! reading a split, applying the user's map function, partitioning the
//! intermediate pairs, applying reduce and writing output files — live in the
//! free functions of this module so the jobtracker's worker threads and the
//! tests can call them directly.
//!
//! The module also owns the **attempt state machine**, [`TaskBook`]: one
//! task may have several concurrent *attempts* (retries after failures, and
//! speculative clones of stragglers), identified by [`TaskAttemptId`]. Every
//! attempt moves `Running → Succeeded | Failed | Lost`:
//!
//! ```text
//!                claim_pending / claim_speculative
//!   PENDING  ------------------------------------->  RUNNING
//!      ^                                            /   |   \
//!      | retry (failed, no           finished first/    |    \ finished, but a
//!      | peer attempt running,       rename commits/    |     \ peer attempt had
//!      | attempts left)                            v    |      v already committed
//!      +------------------------------------- FAILED   |     LOST (wasted work)
//!        failures reach max_task_attempts -> job fails  v
//!                                                  SUCCEEDED (sole winner)
//! ```
//!
//! The book is pure bookkeeping driven by an external clock reading — it
//! performs no I/O and takes no locks — so unit tests can step it through
//! every speculation scenario deterministically with a
//! [`simcluster::clock::SimClock`].

use crate::error::MrResult;
use crate::fs::DistFs;
use crate::job::{format_output_record, Mapper, Partitioner, Reducer};
use crate::scheduler::{AttemptView, RuntimeHistory, SpeculationPolicy};
use crate::split::{read_records, InputSplit, SplitSource};
use simcluster::NodeId;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// A per-node task executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTracker {
    /// The cluster node the tracker runs on.
    pub node: NodeId,
    /// Concurrent map tasks the tracker can execute.
    pub map_slots: usize,
    /// Concurrent reduce tasks the tracker can execute.
    pub reduce_slots: usize,
}

impl TaskTracker {
    /// A tracker with Hadoop's classic defaults (2 map slots, 1 reduce slot).
    pub fn new(node: NodeId) -> Self {
        TaskTracker {
            node,
            map_slots: 2,
            reduce_slots: 1,
        }
    }

    /// Override the slot counts.
    pub fn with_slots(mut self, map_slots: usize, reduce_slots: usize) -> Self {
        self.map_slots = map_slots.max(1);
        self.reduce_slots = reduce_slots.max(1);
        self
    }
}

/// The output of one map task.
#[derive(Debug, Default, Clone)]
pub struct MapTaskOutput {
    /// Intermediate pairs, one bucket per reduce partition. Map-only jobs use
    /// a single bucket. Cleared once the task's spill file commits — the
    /// data then lives in storage, not RAM.
    pub partitions: Vec<Vec<(String, String)>>,
    /// Input records processed.
    pub records_read: u64,
    /// Intermediate pairs emitted.
    pub records_emitted: u64,
    /// Bytes read from the storage layer.
    pub bytes_read: u64,
    /// Bytes of the committed spill file (0 for map-only jobs).
    pub spilled_bytes: u64,
    /// Records written to the spill file (post-combine).
    pub spilled_records: u64,
    /// Records fed to the spill-time combiner (0 without a combiner).
    pub combine_input_records: u64,
    /// Records the spill-time combiner emitted.
    pub combine_output_records: u64,
}

/// Identifies one execution attempt of one task within a phase: `task` is
/// the task index (map split id / reduce partition), `attempt` a per-task
/// counter — retries and speculative clones get fresh attempt numbers, so
/// scratch paths (`_temporary/attempt-<task>-<attempt>`) never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskAttemptId {
    /// Index of the task within its phase.
    pub task: usize,
    /// Attempt number, starting at 0 for the first execution.
    pub attempt: usize,
}

/// Lifecycle state of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptState {
    /// Claimed by a worker slot and executing.
    Running,
    /// Finished first and committed its output (won the rename arbitration).
    Succeeded,
    /// Returned an error before committing.
    Failed,
    /// Finished its work, but a concurrent attempt of the same task had
    /// already committed — the output was discarded (wasted work).
    Lost,
}

/// Bookkeeping record of one attempt.
#[derive(Debug, Clone, Copy)]
pub struct AttemptRecord {
    /// Which attempt this is.
    pub id: TaskAttemptId,
    /// The node whose slot executes it.
    pub node: NodeId,
    /// Whether it was launched as a speculative clone of a running attempt.
    pub speculative: bool,
    /// Clock reading when the attempt was claimed.
    pub started_at: Duration,
    /// Current lifecycle state.
    pub state: AttemptState,
    /// Latest progress fraction the attempt reported (`0.0` until the first
    /// report). Feeds the LATE remaining-time estimator.
    pub progress: f64,
}

/// Speculation outcome counters, reported on
/// [`JobResult`](crate::jobtracker::JobResult).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationCounters {
    /// Speculative attempts launched.
    pub launched: u64,
    /// Tasks whose committing attempt was a speculative clone.
    pub wins: u64,
    /// Attempts (original or clone) whose work was thrown away because a
    /// peer attempt committed first, or that failed after the task had
    /// already committed.
    pub wasted_attempts: u64,
    /// Total runtime of those wasted attempts, in clock microseconds.
    pub wasted_micros: u64,
    /// Speculative clones aborted mid-flight because the scheduler owed
    /// their slot to a starved tenant (also counted in `wasted_attempts`).
    pub preempted: u64,
}

impl SpeculationCounters {
    /// Accumulate another phase's counters.
    pub fn merge(&mut self, other: &SpeculationCounters) {
        self.launched += other.launched;
        self.wins += other.wins;
        self.wasted_attempts += other.wasted_attempts;
        self.wasted_micros += other.wasted_micros;
        self.preempted += other.preempted;
    }
}

/// What [`TaskBook::record_failure`] decided about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureVerdict {
    /// The task was requeued for a fresh attempt.
    Retry,
    /// Another attempt of the task is still running; nothing was requeued
    /// (if that attempt also fails, *it* will trigger the retry or the
    /// fatal verdict).
    Waiting,
    /// The task had already committed — the failure is wasted work, not a
    /// retry, and must not fail the job.
    Wasted,
    /// The task exhausted `max_task_attempts` with no attempt left running:
    /// the job must fail. Carries the number of failed attempts.
    Fatal(usize),
}

struct TaskEntry {
    committed: bool,
    failures: usize,
    attempts: Vec<AttemptRecord>,
}

/// The per-phase attempt state machine: which tasks are pending, which
/// attempts are running where and since when, who committed, and what the
/// speculation policy is allowed to clone. The jobtracker keeps one book per
/// phase inside the phase mutex; everything here is pure state driven by
/// clock readings passed in by the caller, so tests can exercise every
/// transition deterministically.
pub struct TaskBook {
    tasks: Vec<TaskEntry>,
    pending: Vec<usize>,
    outstanding: usize,
    retries: usize,
    committed: usize,
    completed_runtimes: Vec<Duration>,
    history: RuntimeHistory,
    speculation: SpeculationCounters,
}

impl TaskBook {
    /// A book with `num_tasks` tasks, all pending.
    pub fn new(num_tasks: usize) -> Self {
        TaskBook {
            tasks: (0..num_tasks)
                .map(|_| TaskEntry {
                    committed: false,
                    failures: 0,
                    attempts: Vec::new(),
                })
                .collect(),
            pending: (0..num_tasks).collect(),
            outstanding: 0,
            retries: 0,
            committed: 0,
            completed_runtimes: Vec::new(),
            history: RuntimeHistory::new(),
            speculation: SpeculationCounters::default(),
        }
    }

    /// Tasks awaiting a (regular) attempt. Positions in this slice are what
    /// [`TaskBook::claim_pending`] consumes, so a locality-aware picker can
    /// choose among them.
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// Attempts currently running, over all tasks.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Failed attempts that led to a retry or are covered by a still-running
    /// peer attempt (the job-level `task_retries` counter).
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Speculation outcome counters so far.
    pub fn speculation(&self) -> SpeculationCounters {
        self.speculation
    }

    /// Has this task committed an attempt?
    pub fn is_committed(&self, task: usize) -> bool {
        self.tasks[task].committed
    }

    /// Have all tasks committed?
    pub fn all_committed(&self) -> bool {
        self.committed == self.tasks.len()
    }

    /// Full attempt history of one task, for tests and reporting.
    pub fn attempts(&self, task: usize) -> &[AttemptRecord] {
        &self.tasks[task].attempts
    }

    /// Runtimes of the committed tasks in commit order (for reporting; the
    /// speculation policies consult [`TaskBook::history`] instead).
    pub fn completed_runtimes(&self) -> &[Duration] {
        &self.completed_runtimes
    }

    /// The committed runtimes as an incrementally sorted [`RuntimeHistory`]
    /// — the speculation policy's baseline, median in O(1) per consult.
    pub fn history(&self) -> &RuntimeHistory {
        &self.history
    }

    /// Claim the pending entry at position `pos` (as chosen by the
    /// scheduler) for a regular attempt on `node` at time `now`.
    pub fn claim_pending(&mut self, pos: usize, node: NodeId, now: Duration) -> TaskAttemptId {
        let task = self.pending.swap_remove(pos);
        self.start_attempt(task, node, now, false)
    }

    /// Offer an idle slot on `node` a speculative clone: the longest-running
    /// task that is uncommitted, has never been speculated before (one clone
    /// per task for the job's lifetime, so a clone that fails cannot trigger
    /// an endless relaunch loop), has exactly one running attempt, runs on a
    /// *different* node (cloning onto the straggler's own node would inherit
    /// its slowness), and passes `policy` against the committed peers'
    /// runtimes. Returns the claimed attempt, or `None` if nothing
    /// qualifies.
    pub fn claim_speculative(
        &mut self,
        node: NodeId,
        now: Duration,
        policy: &dyn SpeculationPolicy,
    ) -> Option<TaskAttemptId> {
        // Rank the structural candidates by the policy's urgency score
        // (elapsed runtime by default, estimated remaining time for LATE),
        // then consult `should_speculate` once for the most urgent — idle
        // slots poll this under the phase lock every millisecond, so the
        // history consult must stay O(1) per poll.
        let mut candidate: Option<(usize, AttemptView, Duration)> = None;
        for (task, entry) in self.tasks.iter().enumerate() {
            if entry.committed || entry.attempts.iter().any(|a| a.speculative) {
                continue;
            }
            let mut running = entry
                .attempts
                .iter()
                .filter(|a| a.state == AttemptState::Running);
            let (Some(sole), None) = (running.next(), running.next()) else {
                continue;
            };
            if sole.node == node {
                continue;
            }
            let view = AttemptView {
                runtime: now.saturating_sub(sole.started_at),
                progress: sole.progress,
            };
            let urgency = policy.urgency(view);
            if candidate.is_none_or(|(_, _, best)| urgency > best) {
                candidate = Some((task, view, urgency));
            }
        }
        let (task, view, _) = candidate?;
        if !policy.should_speculate(view, &self.history) {
            return None;
        }
        self.speculation.launched += 1;
        Some(self.start_attempt(task, node, now, true))
    }

    /// Record a progress report from a running attempt (fraction of its
    /// input processed). Progress is clamped to `[0, 1]` and never moves
    /// backwards. Reports for attempts that already finished are ignored —
    /// a loser's late report must not touch the book.
    pub fn report_progress(&mut self, id: TaskAttemptId, progress: f64) {
        if let Some(record) = self.tasks[id.task]
            .attempts
            .iter_mut()
            .find(|a| a.id == id && a.state == AttemptState::Running)
        {
            record.progress = record.progress.max(progress.clamp(0.0, 1.0));
        }
    }

    fn start_attempt(
        &mut self,
        task: usize,
        node: NodeId,
        now: Duration,
        speculative: bool,
    ) -> TaskAttemptId {
        let entry = &mut self.tasks[task];
        let id = TaskAttemptId {
            task,
            attempt: entry.attempts.len(),
        };
        entry.attempts.push(AttemptRecord {
            id,
            node,
            speculative,
            started_at: now,
            state: AttemptState::Running,
            progress: 0.0,
        });
        self.outstanding += 1;
        id
    }

    fn finish(&mut self, id: TaskAttemptId, state: AttemptState) -> AttemptRecord {
        let record = self.tasks[id.task]
            .attempts
            .iter_mut()
            .find(|a| a.id == id && a.state == AttemptState::Running)
            .expect("finishing attempt is running");
        record.state = state;
        self.outstanding -= 1;
        *record
    }

    /// The attempt committed its output (the caller's rename into the final
    /// path succeeded while holding the book): mark the task done and feed
    /// its runtime to the speculation baseline. Counters of losing attempts
    /// never reach this path — only the winner's output and statistics are
    /// merged into the job.
    pub fn record_success(&mut self, id: TaskAttemptId, now: Duration) {
        debug_assert!(!self.tasks[id.task].committed, "two winners for a task");
        let record = self.finish(id, AttemptState::Succeeded);
        self.tasks[id.task].committed = true;
        self.committed += 1;
        let runtime = now.saturating_sub(record.started_at);
        self.completed_runtimes.push(runtime);
        self.history.record(runtime);
        if record.speculative {
            self.speculation.wins += 1;
        }
    }

    /// The attempt finished its work, but a peer attempt had already
    /// committed: all of it is wasted work.
    pub fn record_lost(&mut self, id: TaskAttemptId, now: Duration) {
        let record = self.finish(id, AttemptState::Lost);
        self.speculation.wasted_attempts += 1;
        self.speculation.wasted_micros += now.saturating_sub(record.started_at).as_micros() as u64;
    }

    /// The worker abandoned the attempt because the job is already failing
    /// (e.g. a reduce attempt aborting after a map-phase failure): close the
    /// attempt's bookkeeping without a retry, waste counters or a verdict,
    /// so no attempt is left `Running` after the workers exit.
    pub fn record_abandoned(&mut self, id: TaskAttemptId) {
        self.finish(id, AttemptState::Failed);
    }

    /// A speculative clone was preempted mid-flight: the fair-share
    /// scheduler owed its slot to a starved tenant, so the worker aborted
    /// the clone before it committed. Only speculative attempts may be
    /// preempted — the task's original attempt keeps running, so preemption
    /// can never lose a task or force a retry. The clone's work is counted
    /// as waste.
    pub fn record_preempted(&mut self, id: TaskAttemptId, now: Duration) {
        let record = self.finish(id, AttemptState::Lost);
        debug_assert!(record.speculative, "only speculative clones are preempted");
        self.speculation.preempted += 1;
        self.speculation.wasted_attempts += 1;
        self.speculation.wasted_micros += now.saturating_sub(record.started_at).as_micros() as u64;
    }

    /// The attempt failed with an error. Decides between retrying, waiting
    /// for a still-running peer attempt, counting pure waste (task already
    /// committed), and failing the job. Failed *speculative* attempts do not
    /// consume the task's `max_attempts` budget — a bad spare node must not
    /// be able to fail a task whose healthy original is still running.
    pub fn record_failure(
        &mut self,
        id: TaskAttemptId,
        now: Duration,
        max_attempts: usize,
    ) -> FailureVerdict {
        let record = self.finish(id, AttemptState::Failed);
        let entry = &mut self.tasks[id.task];
        if entry.committed {
            // A clone (or the original) already won; this failure is noise.
            self.speculation.wasted_attempts += 1;
            self.speculation.wasted_micros +=
                now.saturating_sub(record.started_at).as_micros() as u64;
            return FailureVerdict::Wasted;
        }
        if !record.speculative {
            entry.failures += 1;
        }
        self.retries += 1;
        let peer_running = entry
            .attempts
            .iter()
            .any(|a| a.state == AttemptState::Running);
        if peer_running {
            // The surviving attempt may still commit; if it fails too, that
            // failure will requeue or kill the job.
            FailureVerdict::Waiting
        } else if entry.failures >= max_attempts {
            FailureVerdict::Fatal(entry.failures)
        } else {
            self.pending.push(id.task);
            FailureVerdict::Retry
        }
    }
}

/// Hash-partition an intermediate key across `num_partitions` reducers
/// (Hadoop's default `HashPartitioner`).
pub fn partition_for(key: &str, num_partitions: usize) -> usize {
    if num_partitions <= 1 {
        return 0;
    }
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % num_partitions
}

/// Execute one map task: read the split's records, run the user's map
/// function on each (told which file the record came from, for multi-input
/// jobs), and partition the emitted pairs with the job's partitioner.
pub fn run_map_task(
    fs: &dyn DistFs,
    split: &InputSplit,
    mapper: &dyn Mapper,
    partitioner: &dyn Partitioner,
    num_partitions: usize,
) -> MrResult<MapTaskOutput> {
    let out =
        run_map_task_with_progress(fs, split, mapper, partitioner, num_partitions, &mut |_| {
            true
        })?;
    Ok(out.expect("an always-continue map task cannot be preempted"))
}

/// How many times per task the map loop reports progress (and offers the
/// caller a preemption point).
const MAP_PROGRESS_MILESTONES: u64 = 8;

/// [`run_map_task`] with progress reporting: `progress` is called with the
/// fraction of input records processed at ~[`MAP_PROGRESS_MILESTONES`]
/// evenly-spaced milestones. The callback's return value is a
/// continue/abort decision: returning `false` abandons the task immediately
/// and the function returns `Ok(None)` — how the jobtracker preempts a
/// speculative clone mid-flight without losing the original attempt.
pub fn run_map_task_with_progress(
    fs: &dyn DistFs,
    split: &InputSplit,
    mapper: &dyn Mapper,
    partitioner: &dyn Partitioner,
    num_partitions: usize,
    progress: &mut dyn FnMut(f64) -> bool,
) -> MrResult<Option<MapTaskOutput>> {
    let buckets = num_partitions.max(1);
    let mut out = MapTaskOutput {
        partitions: vec![Vec::new(); buckets],
        ..Default::default()
    };

    // Materialise the records for this split.
    let (source_path, records): (&str, Vec<(u64, String)>) = match &split.source {
        SplitSource::File { path, offset, len } => {
            let (records, bytes_read) = read_records(fs, path, *offset, *len)?;
            out.bytes_read = bytes_read;
            (path.as_str(), records)
        }
        SplitSource::Synthetic { records, .. } => {
            ("", (0..*records).map(|i| (i, String::new())).collect())
        }
    };

    let total = records.len() as u64;
    let stride = (total / MAP_PROGRESS_MILESTONES).max(1);
    for (offset, line) in &records {
        out.records_read += 1;
        let partitions = &mut out.partitions;
        let mut emitted = 0u64;
        mapper.map_with_source(source_path, *offset, line, &mut |k, v| {
            let p = partitioner.partition(&k, buckets);
            partitions[p].push((k, v));
            emitted += 1;
        })?;
        out.records_emitted += emitted;
        if out.records_read.is_multiple_of(stride)
            && !progress(out.records_read as f64 / total as f64)
        {
            return Ok(None);
        }
    }
    Ok(Some(out))
}

/// Group one reduce partition's pairs by key, preserving the per-key value
/// arrival order (Hadoop sorts keys; values keep shuffle order).
pub fn group_by_key(pairs: Vec<(String, String)>) -> BTreeMap<String, Vec<String>> {
    let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Execute one reduce task over its grouped input and return the output
/// records (already formatted ordering: ascending key).
pub fn run_reduce_task(
    groups: &BTreeMap<String, Vec<String>>,
    reducer: &dyn Reducer,
) -> MrResult<Vec<(String, String)>> {
    let mut output = Vec::new();
    for (key, values) in groups {
        reducer.reduce(key, values, &mut |k, v| output.push((k, v)))?;
    }
    Ok(output)
}

/// Write a task's output records to `path` through the storage layer, in
/// Hadoop's text output format. Returns the number of bytes written.
pub fn write_output_file(
    fs: &dyn DistFs,
    path: &str,
    records: &[(String, String)],
) -> MrResult<u64> {
    let mut writer = fs.create(path)?;
    let mut bytes = 0u64;
    for (k, v) in records {
        let line = format_output_record(k, v);
        bytes += line.len() as u64;
        writer.write(line.as_bytes())?;
    }
    writer.close()?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MrError;
    use crate::fs::BsfsFs;
    use crate::job::{HashPartitioner, SumReducer};
    use crate::scheduler::SlowestFactorPolicy;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use simcluster::clock::{Clock, SimClock};

    fn fs() -> BsfsFs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()))
    }

    struct WordCountMapper;
    impl Mapper for WordCountMapper {
        fn map(
            &self,
            _offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            for word in line.split_whitespace() {
                emit(word.to_string(), "1".to_string());
            }
            Ok(())
        }
    }

    struct FailingMapper;
    impl Mapper for FailingMapper {
        fn map(
            &self,
            _offset: u64,
            _line: &str,
            _emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            Err(MrError::Storage("synthetic failure".into()))
        }
    }

    #[test]
    fn tracker_defaults_and_overrides() {
        let t = TaskTracker::new(NodeId(3));
        assert_eq!(t.map_slots, 2);
        assert_eq!(t.reduce_slots, 1);
        let t = t.with_slots(0, 0);
        assert_eq!(t.map_slots, 1, "slot counts are clamped to at least one");
        assert_eq!(t.reduce_slots, 1);
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for key in ["a", "b", "the", "quick", "fox"] {
            let p = partition_for(key, 4);
            assert!(p < 4);
            assert_eq!(
                p,
                partition_for(key, 4),
                "same key must always map to the same partition"
            );
        }
        assert_eq!(partition_for("anything", 1), 0);
        assert_eq!(partition_for("anything", 0), 0);
    }

    #[test]
    fn map_task_reads_split_and_partitions_output() {
        let fs = fs();
        fs.write_file("/in", b"the quick fox\nthe lazy dog\n")
            .unwrap();
        let split = InputSplit {
            id: 0,
            source: SplitSource::File {
                path: "/in".into(),
                offset: 0,
                len: 27,
            },
            preferred_nodes: vec![],
        };
        let out = run_map_task(&fs, &split, &WordCountMapper, &HashPartitioner, 3).unwrap();
        assert_eq!(out.records_read, 2);
        assert_eq!(out.records_emitted, 6);
        assert_eq!(out.partitions.len(), 3);
        let all: Vec<&(String, String)> = out.partitions.iter().flatten().collect();
        assert_eq!(all.len(), 6);
        assert!(out.bytes_read >= 27);
        // Identical keys land in identical partitions.
        let the_parts: std::collections::HashSet<usize> = out
            .partitions
            .iter()
            .enumerate()
            .filter(|(_, bucket)| bucket.iter().any(|(k, _)| k == "the"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(the_parts.len(), 1);
    }

    #[test]
    fn synthetic_split_generates_empty_records() {
        let fs = fs();
        let split = InputSplit {
            id: 0,
            source: SplitSource::Synthetic {
                index: 0,
                records: 5,
            },
            preferred_nodes: vec![],
        };
        struct CountingMapper;
        impl Mapper for CountingMapper {
            fn map(
                &self,
                offset: u64,
                line: &str,
                emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                assert!(line.is_empty());
                emit(format!("record-{offset}"), String::new());
                Ok(())
            }
        }
        let out = run_map_task(&fs, &split, &CountingMapper, &HashPartitioner, 0).unwrap();
        assert_eq!(out.records_read, 5);
        assert_eq!(out.records_emitted, 5);
        assert_eq!(out.partitions.len(), 1);
        assert_eq!(out.bytes_read, 0);
    }

    #[test]
    fn failing_mapper_propagates_the_error() {
        let fs = fs();
        fs.write_file("/in", b"line\n").unwrap();
        let split = InputSplit {
            id: 0,
            source: SplitSource::File {
                path: "/in".into(),
                offset: 0,
                len: 5,
            },
            preferred_nodes: vec![],
        };
        assert!(run_map_task(&fs, &split, &FailingMapper, &HashPartitioner, 1).is_err());
    }

    #[test]
    fn grouping_and_reducing() {
        let pairs = vec![
            ("b".to_string(), "1".to_string()),
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "1".to_string()),
            ("c".to_string(), "2".to_string()),
        ];
        let groups = group_by_key(pairs);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups["b"], vec!["1", "1"]);
        let out = run_reduce_task(&groups, &SumReducer).unwrap();
        // BTreeMap iteration gives ascending key order.
        assert_eq!(
            out,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
                ("c".to_string(), "2".to_string()),
            ]
        );
    }

    // -----------------------------------------------------------------
    // TaskBook: the attempt state machine, stepped deterministically on a
    // manually advanced SimClock (no threads, no wall-clock time).
    // -----------------------------------------------------------------

    fn policy() -> SlowestFactorPolicy {
        SlowestFactorPolicy {
            slowest_factor: 2.0,
            min_runtime: Duration::from_secs(1),
            min_completed: 1,
        }
    }

    /// A policy that clones any attempt that has run at all, history or not
    /// — for exercising the failure paths of single-task books.
    fn eager_policy() -> SlowestFactorPolicy {
        SlowestFactorPolicy {
            slowest_factor: 1.0,
            min_runtime: Duration::ZERO,
            min_completed: 0,
        }
    }

    #[test]
    fn straggler_is_cloned_and_the_clone_wins_deterministically() {
        let clock = SimClock::new();
        let mut book = TaskBook::new(2);

        // t=0: both tasks start, on different nodes.
        let fast = book.claim_pending(0, NodeId(0), clock.now());
        let slow = book.claim_pending(0, NodeId(1), clock.now());
        assert_eq!((fast.task, fast.attempt), (0, 0));
        assert_eq!((slow.task, slow.attempt), (1, 0));
        assert_eq!(book.outstanding(), 2);

        // t=2s: the fast task commits (runtime 2s becomes the median).
        clock.advance(Duration::from_secs(2));
        book.record_success(fast, clock.now());
        assert_eq!(book.completed_runtimes(), &[Duration::from_secs(2)]);

        // t=4s: straggler runtime 4s <= 2 x median — no clone yet. The
        // straggler's own node is never offered the clone either.
        clock.advance(Duration::from_secs(2));
        assert!(book
            .claim_speculative(NodeId(2), clock.now(), &policy())
            .is_none());

        // t=5s: 5s > 4s threshold — an idle slot on node 2 gets the clone,
        // but node 1 (the straggler's node) still does not.
        clock.advance(Duration::from_secs(1));
        assert!(book
            .claim_speculative(NodeId(1), clock.now(), &policy())
            .is_none());
        let clone = book
            .claim_speculative(NodeId(2), clock.now(), &policy())
            .expect("straggler must be cloned");
        assert_eq!((clone.task, clone.attempt), (1, 1));
        assert_eq!(book.speculation().launched, 1);
        // With two attempts running, no further clone of the same task.
        assert!(book
            .claim_speculative(NodeId(3), clock.now(), &policy())
            .is_none());

        // t=6s: the clone commits; the original finishes at t=60 and loses.
        clock.advance(Duration::from_secs(1));
        assert!(!book.is_committed(1));
        book.record_success(clone, clock.now());
        assert!(book.is_committed(1) && book.all_committed());
        clock.advance(Duration::from_secs(54));
        book.record_lost(slow, clock.now());

        let s = book.speculation();
        assert_eq!((s.launched, s.wins, s.wasted_attempts), (1, 1, 1));
        assert_eq!(s.wasted_micros, 60_000_000, "the original ran 0s..60s");
        // Lost attempts must not pollute the job's statistics: no retry was
        // recorded and the speculation baseline only holds the two winners.
        assert_eq!(book.retries(), 0);
        assert_eq!(
            book.completed_runtimes(),
            &[Duration::from_secs(2), Duration::from_secs(1)]
        );
        assert_eq!(book.attempts(1)[0].state, AttemptState::Lost);
        assert_eq!(book.attempts(1)[1].state, AttemptState::Succeeded);
    }

    #[test]
    fn original_wins_and_the_clone_is_wasted() {
        let clock = SimClock::new();
        let mut book = TaskBook::new(2);
        let a = book.claim_pending(0, NodeId(0), clock.now());
        let b = book.claim_pending(0, NodeId(1), clock.now());
        clock.advance(Duration::from_secs(1));
        book.record_success(a, clock.now());
        clock.advance(Duration::from_secs(4));
        let clone = book
            .claim_speculative(NodeId(2), clock.now(), &policy())
            .unwrap();
        // t=8s: the *original* commits first; the clone loses at t=9.
        clock.advance(Duration::from_secs(3));
        book.record_success(b, clock.now());
        clock.advance(Duration::from_secs(1));
        book.record_lost(clone, clock.now());
        let s = book.speculation();
        assert_eq!((s.launched, s.wins, s.wasted_attempts), (1, 0, 1));
        assert_eq!(s.wasted_micros, 4_000_000, "the clone ran 5s..9s");
    }

    #[test]
    fn failure_verdicts_cover_retry_waiting_wasted_and_fatal() {
        let clock = SimClock::new();
        let mut book = TaskBook::new(1);
        let max = 3;

        // Attempt 0 fails alone -> Retry, task requeued.
        let a0 = book.claim_pending(0, NodeId(0), clock.now());
        assert_eq!(
            book.record_failure(a0, clock.now(), max),
            FailureVerdict::Retry
        );
        assert_eq!(book.pending(), &[0]);
        assert_eq!(book.retries(), 1);

        // Attempt 1 runs, gets a clone; attempt 1 fails while the clone is
        // still running -> Waiting (nothing requeued).
        let a1 = book.claim_pending(0, NodeId(0), clock.now());
        clock.advance(Duration::from_secs(10));
        let clone = book
            .claim_speculative(NodeId(1), clock.now(), &eager_policy())
            .unwrap();
        assert_eq!(
            book.record_failure(a1, clock.now(), max),
            FailureVerdict::Waiting
        );
        assert!(book.pending().is_empty());

        // The clone fails too. Speculative failures never burn the task's
        // max_attempts budget (a bad spare node must not fail the job), so
        // this requeues instead of counting toward Fatal...
        assert_eq!(
            book.record_failure(clone, clock.now(), max),
            FailureVerdict::Retry
        );
        assert_eq!(book.pending(), &[0]);
        // ...and the task is never speculated twice: even with an eligible
        // sole running attempt, no second clone is offered.
        let a2 = book.claim_pending(0, NodeId(0), clock.now());
        clock.advance(Duration::from_secs(10));
        assert!(book
            .claim_speculative(NodeId(1), clock.now(), &eager_policy())
            .is_none());
        // The third *regular* failure exhausts the budget -> Fatal.
        assert_eq!(
            book.record_failure(a2, clock.now(), max),
            FailureVerdict::Fatal(3)
        );

        // A failure after the task committed is Wasted, not a retry.
        let mut book = TaskBook::new(1);
        let a0 = book.claim_pending(0, NodeId(0), clock.now());
        clock.advance(Duration::from_secs(5));
        let clone = book
            .claim_speculative(NodeId(1), clock.now(), &eager_policy())
            .unwrap();
        book.record_success(clone, clock.now());
        let retries_before = book.retries();
        assert_eq!(
            book.record_failure(a0, clock.now(), max),
            FailureVerdict::Wasted
        );
        assert_eq!(book.retries(), retries_before, "waste is not a retry");
        assert_eq!(book.speculation().wasted_attempts, 1);
    }

    #[test]
    fn both_attempts_failing_leaves_attempts_for_a_retry() {
        // max_attempts large enough: original + clone both fail, the task
        // requeues, a third attempt succeeds.
        let clock = SimClock::new();
        let mut book = TaskBook::new(1);
        let a0 = book.claim_pending(0, NodeId(0), clock.now());
        clock.advance(Duration::from_secs(5));
        let a1 = book
            .claim_speculative(NodeId(1), clock.now(), &eager_policy())
            .unwrap();
        assert_eq!(
            book.record_failure(a1, clock.now(), 4),
            FailureVerdict::Waiting
        );
        assert_eq!(
            book.record_failure(a0, clock.now(), 4),
            FailureVerdict::Retry
        );
        let a2 = book.claim_pending(0, NodeId(2), clock.now());
        assert_eq!(a2.attempt, 2);
        book.record_success(a2, clock.now());
        assert!(book.all_committed());
        assert_eq!(book.retries(), 2);
    }

    #[test]
    fn progress_reports_are_clamped_monotonic_and_ignored_after_finish() {
        let clock = SimClock::new();
        let mut book = TaskBook::new(1);
        let a = book.claim_pending(0, NodeId(0), clock.now());
        book.report_progress(a, 0.5);
        assert_eq!(book.attempts(0)[0].progress, 0.5);
        // Backwards and out-of-range reports are ignored/clamped.
        book.report_progress(a, 0.2);
        assert_eq!(book.attempts(0)[0].progress, 0.5);
        book.report_progress(a, 7.0);
        assert_eq!(book.attempts(0)[0].progress, 1.0);
        // After the attempt finishes, late reports must not resurrect it.
        book.record_success(a, clock.now());
        book.report_progress(a, 0.1);
        assert_eq!(book.attempts(0)[0].progress, 1.0);
    }

    #[test]
    fn preempted_clone_is_pure_waste_and_the_original_still_commits() {
        let clock = SimClock::new();
        let mut book = TaskBook::new(2);
        let fast = book.claim_pending(0, NodeId(0), clock.now());
        let slow = book.claim_pending(0, NodeId(1), clock.now());
        clock.advance(Duration::from_secs(1));
        book.record_success(fast, clock.now());
        clock.advance(Duration::from_secs(4));
        let clone = book
            .claim_speculative(NodeId(2), clock.now(), &policy())
            .unwrap();

        // The scheduler owes the clone's slot to a starved tenant: preempt.
        clock.advance(Duration::from_secs(2));
        book.record_preempted(clone, clock.now());
        let s = book.speculation();
        assert_eq!((s.launched, s.preempted, s.wasted_attempts), (1, 1, 1));
        assert_eq!(s.wasted_micros, 2_000_000, "the clone ran 5s..7s");

        // Nothing is lost: the original attempt is still running, commits,
        // and no retry was ever recorded.
        assert!(!book.is_committed(1));
        assert_eq!(book.outstanding(), 1);
        book.record_success(slow, clock.now());
        assert!(book.all_committed());
        assert_eq!(book.retries(), 0);
        assert_eq!(book.attempts(1)[1].state, AttemptState::Lost);
    }

    #[test]
    fn late_urgency_ranks_candidates_by_remaining_time() {
        use crate::scheduler::LatePolicy;
        // Two stragglers: task 1 has run 10s at 90% progress (~1.1s left),
        // task 2 has run 6s at 10% progress (54s left). LATE must clone
        // task 2 even though task 1 has run longer.
        let clock = SimClock::new();
        let mut book = TaskBook::new(3);
        let fast = book.claim_pending(0, NodeId(0), clock.now());
        let near_done = book.claim_pending(0, NodeId(1), clock.now());
        clock.advance(Duration::from_secs(4));
        let barely_started = book.claim_pending(0, NodeId(2), clock.now());
        clock.advance(Duration::from_secs(1));
        book.record_success(fast, clock.now());
        clock.advance(Duration::from_secs(5));
        book.report_progress(near_done, 0.9);
        book.report_progress(barely_started, 0.1);
        let clone = book
            .claim_speculative(NodeId(3), clock.now(), &LatePolicy::default())
            .expect("the slow-progress task must be cloned");
        assert_eq!(clone.task, barely_started.task);
    }

    #[test]
    fn map_task_progress_callback_can_abort_the_task() {
        let fs = fs();
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("line {i}\n"));
        }
        fs.write_file("/in", text.as_bytes()).unwrap();
        let split = InputSplit {
            id: 0,
            source: SplitSource::File {
                path: "/in".into(),
                offset: 0,
                len: text.len() as u64,
            },
            preferred_nodes: vec![],
        };
        // Continue-everywhere reports monotonically increasing fractions and
        // completes.
        let mut seen = Vec::new();
        let out = run_map_task_with_progress(
            &fs,
            &split,
            &WordCountMapper,
            &HashPartitioner,
            2,
            &mut |f| {
                seen.push(f);
                true
            },
        )
        .unwrap()
        .expect("not preempted");
        assert_eq!(out.records_read, 40);
        assert!(seen.len() >= 2, "several milestones expected: {seen:?}");
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seen.last().unwrap(), 1.0);

        // Aborting at the first milestone yields Ok(None), not an error.
        let out = run_map_task_with_progress(
            &fs,
            &split,
            &WordCountMapper,
            &HashPartitioner,
            2,
            &mut |_| false,
        )
        .unwrap();
        assert!(out.is_none(), "callback returning false preempts the task");
    }

    #[test]
    fn output_file_is_written_in_text_format() {
        let fs = fs();
        let records = vec![
            ("alpha".to_string(), "1".to_string()),
            ("beta".to_string(), String::new()),
        ];
        let bytes = write_output_file(&fs, "/out/part-r-00000", &records).unwrap();
        let content = fs.read_file("/out/part-r-00000").unwrap();
        assert_eq!(&content[..], b"alpha\t1\nbeta\n");
        assert_eq!(bytes, content.len() as u64);
    }
}
