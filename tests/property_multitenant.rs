//! Property tests of multi-tenant scheduling.
//!
//! 1. Whatever the scheduler (FIFO / fair-share / capacity), the backend
//!    (BSFS / HDFS), and the mix of tenants and job shapes, N jobs running
//!    *concurrently* over one shared `DistFs` produce part files
//!    byte-identical to the sequential in-memory oracle — scheduling is
//!    performance policy, never visible in job output.
//! 2. Preempting a speculative clone is always safe at the attempt state
//!    machine level: the preempted clone is accounted as waste, the task is
//!    never lost (the incumbent still commits it) and never committed twice
//!    (a clone that wins instead turns the incumbent into a recorded loss).

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use mapreduce::{
    AttemptView, CapacityScheduler, FairScheduler, FifoScheduler, Job, JobScheduler,
    RuntimeHistory, SpeculationPolicy, TaskBook,
};
use proptest::prelude::*;
use simcluster::{ClusterTopology, NodeId};
use std::sync::Arc;
use std::time::Duration;
use workloads::{distributed_grep_job, word_count_job, word_count_job_combining};

fn make_fs(use_hdfs: bool, topo: &ClusterTopology) -> Box<dyn DistFs> {
    let nodes: Vec<_> = topo.all_nodes().collect();
    if use_hdfs {
        Box::new(HdfsFs::new(Hdfs::with_topology(
            HdfsConfig {
                chunk_size: 512,
                datanodes: nodes.len(),
                replication: 1,
                seed: 1,
            },
            topo,
            &nodes,
        )))
    } else {
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(nodes.len())
                .with_page_size(512),
            topo,
            &nodes,
        );
        Box::new(BsfsFs::new(Bsfs::new(
            storage,
            BsfsConfig::default().with_block_size(512),
        )))
    }
}

fn make_job(shape: usize, tenant: &str, out: &str) -> Job {
    let input = vec!["/in/text.txt".to_string()];
    let mut job = match shape {
        0 => word_count_job(input, out, 2, 300),
        1 => word_count_job_combining(input, out, 3, 300),
        _ => distributed_grep_job(input, out, "a", 300),
    };
    job.config.tenant = tenant.to_string();
    job
}

fn word_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'f'), 1..8).prop_map(|cs| cs.into_iter().collect())
}

/// A policy that clones any running attempt unconditionally, so the book
/// test controls speculation purely through claim order.
struct AlwaysClone;
impl SpeculationPolicy for AlwaysClone {
    fn should_speculate(&self, _attempt: AttemptView, _history: &RuntimeHistory) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_jobs_match_the_sequential_oracle(
        words in prop::collection::vec(word_strategy(), 10..120),
        // scheduler (fifo / fair / capacity) x backend (bsfs / hdfs).
        scheduler_and_backend in 0usize..6,
        njobs in 2usize..5,
        shapes in prop::collection::vec(0usize..3, 3..5),
    ) {
        let use_hdfs = scheduler_and_backend >= 3;
        let scheduler: Arc<dyn JobScheduler> = match scheduler_and_backend % 3 {
            0 => Arc::new(FifoScheduler),
            1 => Arc::new(FairScheduler::new().with_weight("t0", 3.0)),
            _ => Arc::new(CapacityScheduler::new()),
        };
        let mut text = String::new();
        for line in words.chunks(5) {
            text.push_str(&line.join(" "));
            text.push('\n');
        }
        let topo = ClusterTopology::flat(4);
        let fs: Arc<dyn DistFs> = Arc::from(make_fs(use_hdfs, &topo));
        fs.write_file("/in/text.txt", text.as_bytes()).unwrap();
        let jt = JobTracker::new(&topo)
            .with_scheduler(scheduler)
            .with_max_concurrent_jobs(njobs);

        let handles: Vec<_> = (0..njobs)
            .map(|i| {
                let tenant = format!("t{}", i % 2);
                let job = make_job(shapes[i % shapes.len()], &tenant, &format!("/out-{i}"));
                jt.submit(fs.clone(), job).unwrap()
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().unwrap())
            .collect();

        for (i, result) in results.iter().enumerate() {
            let out = format!("/out-{i}");
            let oracle_out = format!("/oracle-{i}");
            let tenant = format!("t{}", i % 2);
            let oracle = jt
                .run_inmem(&*fs, &make_job(shapes[i % shapes.len()], &tenant, &oracle_out))
                .unwrap();
            prop_assert_eq!(result.output_files.len(), oracle.output_files.len());
            for (d, o) in result.output_files.iter().zip(&oracle.output_files) {
                prop_assert_eq!(d.strip_prefix(out.as_str()), o.strip_prefix(oracle_out.as_str()));
                prop_assert!(
                    fs.read_file(d).unwrap() == fs.read_file(o).unwrap(),
                    "job {} diverges from its oracle (sched/backend={}, njobs={})",
                    i, scheduler_and_backend, njobs
                );
            }
            prop_assert_eq!(result.output_records, oracle.output_records);
            // No cross-job contamination: the output dir holds exactly this
            // job's part files, no other job's scoped scratch or spills.
            let mut listed = fs.list(&out).unwrap();
            listed.sort();
            prop_assert_eq!(&listed, &result.output_files);
        }
    }

    #[test]
    fn preempting_clones_never_loses_a_task_or_double_commits(
        // Per task: 0 = primary commits unchallenged, 1 = clone launched
        // then preempted (primary commits), 2 = clone wins (primary loses).
        modes in prop::collection::vec(0usize..3, 1..8),
    ) {
        let n = modes.len();
        let mut book = TaskBook::new(n);
        let policy = AlwaysClone;
        let primary_node = NodeId(0);
        let clone_node = NodeId(1);
        let mut now = Duration::ZERO;
        let mut preempted = 0u64;
        let mut clone_wins = 0u64;

        for mode in &modes {
            // One task in flight at a time, so the clone target is
            // unambiguous (claim_speculative picks the slowest *running*).
            now += Duration::from_secs(1);
            let primary = book.claim_pending(0, primary_node, now);
            match mode {
                0 => {
                    now += Duration::from_secs(1);
                    book.record_success(primary, now);
                }
                1 => {
                    let clone = book
                        .claim_speculative(clone_node, now, &policy)
                        .expect("a sole running attempt must be clonable");
                    prop_assert_eq!(clone.task, primary.task);
                    // Preempt the clone mid-flight: the task must survive
                    // through its incumbent.
                    now += Duration::from_secs(1);
                    book.record_preempted(clone, now);
                    preempted += 1;
                    prop_assert!(!book.is_committed(primary.task));
                    book.record_success(primary, now);
                }
                _ => {
                    let clone = book
                        .claim_speculative(clone_node, now, &policy)
                        .expect("a sole running attempt must be clonable");
                    now += Duration::from_secs(1);
                    // The clone commits first; the incumbent's late finish
                    // must be recorded as a loss, never a second commit.
                    book.record_success(clone, now);
                    clone_wins += 1;
                    prop_assert!(book.is_committed(primary.task));
                    book.record_lost(primary, now);
                }
            }
            prop_assert!(book.is_committed(primary.task), "task may never be lost");
        }

        prop_assert!(book.all_committed());
        prop_assert!(book.pending().is_empty());
        // Nothing left to clone once everything is committed.
        prop_assert!(book.claim_speculative(clone_node, now, &policy).is_none());
        let spec = book.speculation();
        prop_assert_eq!(spec.preempted, preempted);
        prop_assert_eq!(spec.launched, preempted + clone_wins);
        prop_assert_eq!(spec.wins, clone_wins);
        // Every preempted clone and every beaten incumbent is waste.
        prop_assert_eq!(spec.wasted_attempts, preempted + clone_wins);
    }
}
