//! E8 — the storage-tier optimization bundle, measured end to end: merge-spill
//! compaction (fewer positioned reads per reduce task), sequential metadata
//! read-ahead (fewer DHT round trips on sequential scans), and snapshot GC
//! (bounded footprint under a rewrite loop).
//!
//! Unlike E1–E7, which compare BSFS against HDFS, this experiment compares
//! BSFS against itself with each optimization off and on, and *asserts* the
//! headline numbers instead of just printing them. CI runs it with
//! `BENCH_SMOKE=1` as the storage-tier regression gate.

use blobseer::{BlobSeer, BlobSeerConfig};
use mapreduce::DistFs;
use workloads::microbench::AccessPattern;
use workloads::TextGenerator;

#[derive(serde::Serialize)]
struct CompactionSection {
    maps: usize,
    reducers: usize,
    positioned_reads_off: u64,
    positioned_reads_on: u64,
    reduction_percent: f64,
    compaction_runs: u64,
    compaction_merged_spills: u64,
}

#[derive(serde::Serialize)]
struct GcSection {
    rounds: usize,
    metadata_entries_flat: usize,
    provider_pages_flat: usize,
    metadata_entries_unbounded: usize,
    provider_pages_unbounded: usize,
    versions_retired: u64,
    nodes_removed: u64,
    pages_deleted: u64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    experiment: &'static str,
    smoke: bool,
    compaction: CompactionSection,
    read_path: Vec<bench::ReadPathRecord>,
    gc: GcSection,
}

fn compaction_section(smoke: bool) -> CompactionSection {
    let (lines, reducers, split_size) = if smoke {
        (1_000, 2, 4 * 1024)
    } else {
        (20_000, 4, 64 * 1024)
    };
    let (bsfs, _) = bench::app_backends(1 << 20);
    let mut generator = TextGenerator::new(42);
    bsfs.write_file("/input/unsorted.txt", generator.sentences(lines).as_bytes())
        .unwrap();

    let mut outputs: Vec<Vec<u8>> = Vec::new();
    let mut per_reduce = Vec::new();
    let mut raw = Vec::new();
    let mut compaction = (0u64, 0u64);
    for (label, threshold) in [("off", None), ("on", Some(0))] {
        let mut job = workloads::distributed_sort_job(
            &bsfs,
            vec!["/input/unsorted.txt".into()],
            &format!("/sort-compaction-{label}"),
            reducers,
            split_size,
        )
        .expect("sampling the sort input");
        job.config.compaction_threshold = threshold;
        let (result, _) = bench::run_job_on(&bsfs, &bench::app_topology(), &job);
        let mut merged = Vec::new();
        for part in &result.output_files {
            merged.extend_from_slice(&bsfs.read_file(part).unwrap());
        }
        outputs.push(merged);
        let s = &result.shuffle;
        raw.push((
            result.map_tasks,
            result.reduce_tasks,
            s.shuffle_read_round_trips,
        ));
        per_reduce.push(s.shuffle_read_round_trips as f64 / result.reduce_tasks as f64);
        if threshold.is_some() {
            compaction = (s.compaction_runs, s.compaction_merged_spills);
        }
        println!(
            "compaction {label}: {} positioned reads ({:.1}/reduce)",
            s.shuffle_read_round_trips,
            per_reduce.last().unwrap()
        );
    }
    assert_eq!(
        outputs[0], outputs[1],
        "compaction must not change the job output"
    );
    assert!(
        per_reduce[1] <= 0.5 * per_reduce[0],
        "compaction must at least halve the positioned reads per reduce task \
         ({:.1} -> {:.1})",
        per_reduce[0],
        per_reduce[1],
    );
    let reduction = 100.0 * (1.0 - per_reduce[1] / per_reduce[0]);
    println!("compaction cut positioned reads per reduce task by {reduction:.1}%");
    CompactionSection {
        maps: raw[0].0,
        reducers: raw[0].1,
        positioned_reads_off: raw[0].2,
        positioned_reads_on: raw[1].2,
        reduction_percent: reduction,
        compaction_runs: compaction.0,
        compaction_merged_spills: compaction.1,
    }
}

fn read_path(smoke: bool) -> Vec<bench::ReadPathRecord> {
    let (clients, bytes_per_client) = if smoke { (2, 256 * 1024) } else { (4, 2 << 20) };
    let records =
        bench::read_path_section(AccessPattern::ReadSharedFile, clients, bytes_per_client);
    let cache_on = records
        .iter()
        .find(|r| r.label == "cache on")
        .expect("cache-on row");
    let readahead = records
        .iter()
        .find(|r| r.label.starts_with("read-ahead"))
        .expect("read-ahead row");
    assert!(
        readahead.prefetch_hits > 0,
        "sequential scans must hit the read-ahead window"
    );
    assert!(
        readahead.dht_read_round_trips <= cache_on.dht_read_round_trips,
        "read-ahead must not add metadata round trips to a sequential scan \
         ({} vs {})",
        readahead.dht_read_round_trips,
        cache_on.dht_read_round_trips,
    );
    println!(
        "read-ahead: {} -> {} demand round trips, {} prefetch hits",
        cache_on.dht_read_round_trips, readahead.dht_read_round_trips, readahead.prefetch_hits
    );
    records
}

fn gc_section(smoke: bool) -> GcSection {
    let rounds = if smoke { 8 } else { 16 };
    let footprint = |sys: &std::sync::Arc<BlobSeer>| -> (usize, usize) {
        let entries = sys.metadata().dht().stats().total_entries;
        let pages = sys
            .provider_manager()
            .providers()
            .iter()
            .map(|p| p.stats().pages)
            .sum::<usize>();
        (entries, pages)
    };
    let mut flat = (0, 0);
    let mut unbounded = (0, 0);
    let mut totals = blobseer::GcReport::default();
    for keep in [None, Some(2)] {
        let mut config = BlobSeerConfig::default()
            .with_providers(4)
            .with_page_size(1024);
        if let Some(keep) = keep {
            config = config.with_gc_keep_last(keep);
        }
        let sys = BlobSeer::new(config);
        let client = sys.client();
        let blob = client.create(Some(1024)).unwrap();
        let mut steady: Option<(usize, usize)> = None;
        for round in 0..rounds {
            let data = vec![b'a' + (round % 26) as u8; 16 * 1024];
            client.write(blob, 0, &data).unwrap();
            totals.absorb(&sys.collect_garbage().unwrap());
            if keep.is_some() && round >= rounds / 2 {
                let now = footprint(&sys);
                match steady {
                    None => steady = Some(now),
                    Some(expected) => assert_eq!(
                        now, expected,
                        "with retention the rewrite-loop footprint must be flat"
                    ),
                }
            }
        }
        if keep.is_some() {
            flat = footprint(&sys);
        } else {
            unbounded = footprint(&sys);
        }
    }
    assert!(
        totals.versions_retired > 0 && totals.nodes_removed > 0 && totals.pages_deleted > 0,
        "GC must reclaim the dead versions of the rewrite loop"
    );
    assert!(
        flat.0 < unbounded.0 && flat.1 < unbounded.1,
        "retention must beat the unbounded history on both footprint axes"
    );
    println!(
        "gc: flat at {} metadata entries / {} pages (unbounded history: {} / {}); \
         retired {} versions",
        flat.0, flat.1, unbounded.0, unbounded.1, totals.versions_retired
    );
    GcSection {
        rounds,
        metadata_entries_flat: flat.0,
        provider_pages_flat: flat.1,
        metadata_entries_unbounded: unbounded.0,
        provider_pages_unbounded: unbounded.1,
        versions_retired: totals.versions_retired,
        nodes_removed: totals.nodes_removed,
        pages_deleted: totals.pages_deleted,
    }
}

fn main() {
    let smoke = bench::smoke_mode();

    println!("== E8: storage-tier optimizations (BSFS vs itself) ==");
    println!();
    println!("-- merge-spill compaction (distributed sort) --");
    let compaction = compaction_section(smoke);
    println!();
    println!("-- sequential metadata read-ahead --");
    let read_path = read_path(smoke);
    println!("-- snapshot GC (rewrite loop) --");
    let gc = gc_section(smoke);
    println!();
    println!("all storage-tier assertions held");

    bench::emit_bench_json(
        "E8",
        &Snapshot {
            experiment: "E8",
            smoke,
            compaction,
            read_path,
            gc,
        },
    );
}
