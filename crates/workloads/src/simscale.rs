//! Paper-scale experiments: the §IV-B microbenchmarks replayed at the size of
//! the Grid'5000 deployment (270 nodes, up to 250 concurrent clients, ~1 GiB
//! per client) through the flow-level network simulator.
//!
//! The *placement decisions* come from the real storage code paths — the
//! BlobSeer provider manager's load-balanced allocation and the HDFS
//! namenode's rack-aware, local-first policy — and only the data movement is
//! modelled (who sends how many bytes to whom, over which links, with which
//! contention). That is exactly the substitution documented in DESIGN.md: the
//! paper's comparative results are driven by placement-induced contention,
//! which the max-min-fair flow model reproduces, not by packet-level effects.
//!
//! Three experiment builders mirror the three microbenchmarks:
//!
//! * [`sim_write_distinct`] — E3, concurrent writes to different files;
//! * [`sim_read_distinct`] — E1, concurrent reads from different files
//!   (pre-loaded by other nodes);
//! * [`sim_read_shared`]   — E2, concurrent reads of disjoint parts of one
//!   huge file (pre-loaded by a single loader node).

use blobseer::{PlacementStrategy, ProviderManager};
use hdfs_sim::{Datanode, DatanodeId, PlacementPolicy};
use simcluster::flowsim::{ClientProcess, Flow, FlowSimulator, SimReport, Step};
use simcluster::netmodel::NetworkModel;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::sync::Arc;

/// Which storage system's placement logic drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageSystem {
    /// BSFS over BlobSeer: pages distributed over all providers by the
    /// load-balancing provider manager.
    Bsfs,
    /// HDFS: chunks placed local-first with rack-aware replicas.
    Hdfs,
}

impl StorageSystem {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            StorageSystem::Bsfs => "BSFS",
            StorageSystem::Hdfs => "HDFS",
        }
    }
}

/// Parameters of a paper-scale run.
///
/// As in the paper's deployment, the cluster is split between **storage
/// nodes** (which host the BlobSeer providers / HDFS datanodes) and **client
/// nodes** (which run the benchmark processes). Keeping the two roles on
/// separate machines is what exposes the placement difference the paper
/// measures: an HDFS client that is not itself a datanode gets its whole file
/// placed on one (randomly chosen) datanode, while BlobSeer stripes every
/// file over all providers.
#[derive(Debug, Clone)]
pub struct SimScaleConfig {
    /// Cluster topology (defaults to the 270-node Grid'5000 shape).
    pub topology: ClusterTopology,
    /// Network parameters.
    pub network: NetworkModel,
    /// How many of the topology's nodes host storage daemons; the first
    /// `storage_nodes` node ids are storage, the rest run clients.
    pub storage_nodes: usize,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Bytes processed per client (1 GiB in the paper).
    pub bytes_per_client: u64,
    /// Block/chunk/page size (64 MiB in the paper).
    pub block_size: u64,
    /// Replication factor applied by both systems (1 isolates the placement
    /// effect, matching the throughput-oriented microbenchmarks).
    pub replication: usize,
    /// How many pages a BlobSeer block is striped into. BlobSeer's page is
    /// its data-management unit and is configured smaller than the Hadoop
    /// block, so a 64 MiB block is written to — and later read from — several
    /// providers in parallel. HDFS always moves whole chunks.
    pub pages_per_block: usize,
}

impl SimScaleConfig {
    /// The paper's setup: a 270-node Grid'5000 cluster reservation (single
    /// site, 18 racks of 15 nodes behind non-blocking GbE switching) in the
    /// standard co-located Hadoop layout (every node hosts a storage daemon
    /// and can run a client), 64 MiB blocks, 1 GiB per client, replication 1,
    /// and the requested number of concurrent clients.
    pub fn paper(clients: usize) -> Self {
        let topology = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(18)
            .nodes_per_rack(15)
            .build();
        let storage_nodes = topology.num_nodes();
        SimScaleConfig {
            topology,
            network: NetworkModel::grid5000_like(),
            storage_nodes,
            clients,
            bytes_per_client: 1 << 30,
            block_size: 64 << 20,
            replication: 1,
            pages_per_block: 4,
        }
    }

    /// A small co-located configuration for unit tests (16 nodes, 4 MiB per
    /// client).
    pub fn small(clients: usize) -> Self {
        SimScaleConfig {
            topology: ClusterTopology::builder()
                .sites(1)
                .racks_per_site(4)
                .nodes_per_rack(4)
                .build(),
            network: NetworkModel::grid5000_like(),
            storage_nodes: 16,
            clients,
            bytes_per_client: 4 << 20,
            block_size: 1 << 20,
            replication: 1,
            pages_per_block: 4,
        }
    }

    /// A co-located deployment (every node runs both a storage daemon and a
    /// client), the standard Hadoop layout. Used by the A1 placement ablation,
    /// where "write the first copy locally" only means something if the writer
    /// actually hosts a storage daemon.
    pub fn paper_colocated(clients: usize) -> Self {
        Self::paper(clients)
    }

    #[doc(hidden)]
    pub fn paper_colocated_multisite(clients: usize) -> Self {
        let topology = ClusterTopology::grid5000_270();
        let storage_nodes = topology.num_nodes();
        SimScaleConfig {
            topology,
            network: NetworkModel::grid5000_like(),
            storage_nodes,
            clients,
            bytes_per_client: 1 << 30,
            block_size: 64 << 20,
            replication: 1,
            pages_per_block: 4,
        }
    }

    /// A small co-located configuration for unit tests.
    pub fn small_colocated(clients: usize) -> Self {
        let mut config = Self::small(clients);
        config.storage_nodes = config.topology.num_nodes();
        config
    }

    /// Number of blocks each client moves.
    pub fn blocks_per_client(&self) -> u64 {
        self.bytes_per_client.div_ceil(self.block_size)
    }

    /// The nodes hosting providers / datanodes.
    pub fn storage_node_ids(&self) -> Vec<NodeId> {
        (0..self.storage_nodes as u32)
            .map(|i| self.topology.node(i))
            .collect()
    }

    /// The node client `i` runs on. In a split deployment clients are spread
    /// one per non-storage node (wrapping around when there are more clients
    /// than client nodes); in a co-located deployment they are spread over
    /// all nodes.
    pub fn client_node(&self, i: usize) -> NodeId {
        let client_nodes = self.topology.num_nodes() - self.storage_nodes;
        if client_nodes == 0 {
            // Co-located: stride by a constant coprime with typical cluster
            // sizes so that any prefix of clients is spread over racks and
            // sites instead of filling the first rack (which is how real
            // multi-site reservations hand out nodes).
            let n = self.topology.num_nodes();
            self.topology.node(((i * 53) % n) as u32)
        } else {
            self.topology
                .node((self.storage_nodes + i % client_nodes) as u32)
        }
    }

    /// The node that pre-loaded item `i` (a whole file in E1, one block of
    /// the shared file in E2) during the ingestion phase that precedes the
    /// measurement. The scatter is a deterministic hash: real load phases do
    /// not carefully round-robin their tasks, so some nodes end up holding
    /// the data of several files — the collisions that hurt HDFS's
    /// whole-chunk reads under concurrency.
    pub fn loader_node(&self, i: usize) -> NodeId {
        // splitmix64 finalizer: a well-mixed deterministic hash of the index.
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let hashed = z ^ (z >> 31);
        let client_nodes = self.topology.num_nodes() - self.storage_nodes;
        if client_nodes == 0 {
            self.topology
                .node((hashed % self.topology.num_nodes() as u64) as u32)
        } else {
            self.topology
                .node((self.storage_nodes as u64 + hashed % client_nodes as u64) as u32)
        }
    }
}

/// Back-compatible helper used by tests: client `i`'s node under `config`.
pub fn client_node(topology: &ClusterTopology, i: usize) -> NodeId {
    topology.node((i % topology.num_nodes()) as u32)
}

/// Back-compatible helper used by tests: loader node for file `i`.
pub fn loader_node(topology: &ClusterTopology, i: usize) -> NodeId {
    topology.node(((i * 7 + 13) % topology.num_nodes()) as u32)
}

/// Layout of one block: the parallel transfers that move it, each entry being
/// `(replica nodes, bytes)`. A BSFS block is striped into `pages_per_block`
/// pages living on distinct providers; an HDFS block is one whole-chunk
/// transfer (replicated as a unit).
type BlockLayout = Vec<(Vec<NodeId>, u64)>;

/// Per client, per block: the block's layout.
type Placements = Vec<Vec<BlockLayout>>;

/// Fisher-Yates shuffle driven by a seeded xorshift generator, so experiment
/// placements are reproducible run to run.
fn deterministic_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed.max(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() as usize) % (i + 1);
        items.swap(i, j);
    }
}

/// Compute placements using the real placement logic of the selected system,
/// as if client `i`'s blocks were written from `writer_nodes[i]`. Blocks are
/// allocated round-robin across clients to mimic interleaved concurrent
/// writers.
fn compute_placements(
    system: StorageSystem,
    config: &SimScaleConfig,
    writer_nodes: &[NodeId],
) -> Placements {
    let topo = &config.topology;
    let blocks = config.blocks_per_client();
    let mut placements: Placements = vec![vec![Vec::new(); blocks as usize]; writer_nodes.len()];

    let storage_nodes = config.storage_node_ids();
    match system {
        StorageSystem::Bsfs => {
            let manager = ProviderManager::new_in_memory(
                topo,
                &storage_nodes,
                PlacementStrategy::LoadBalanced,
            );
            let pages = config.pages_per_block.max(1) as u64;
            let page_bytes = config.block_size / pages;
            // Allocation requests reach the provider manager in whatever
            // order the concurrent producer tasks happened to issue them, not
            // neatly file-by-file. Replay them in a deterministic shuffled
            // order so the page->provider assignment reflects that
            // interleaving; the load-balanced strategy keeps the global
            // distribution even regardless of order, but a block-sequential
            // replay would create artificial provider "sets" that lock-step
            // readers then hit in unison.
            let mut requests: Vec<(usize, u64, u64)> = Vec::new();
            for block in 0..blocks {
                for client in 0..writer_nodes.len() {
                    for page in 0..pages {
                        requests.push((client, block, page));
                    }
                }
            }
            deterministic_shuffle(&mut requests, 0x5EED_2010);
            for placement in placements.iter_mut() {
                for block in placement.iter_mut() {
                    *block = vec![(Vec::new(), page_bytes); pages as usize];
                }
            }
            for (client, block, page) in requests {
                let allocation = manager.allocate(1, config.replication, writer_nodes[client]);
                let nodes: Vec<NodeId> = allocation[0]
                    .iter()
                    .filter_map(|p| manager.node_of(*p))
                    .collect();
                placements[client][block as usize][page as usize] = (nodes, page_bytes);
            }
        }
        StorageSystem::Hdfs => {
            let datanodes: Vec<Arc<Datanode>> = storage_nodes
                .iter()
                .enumerate()
                .map(|(i, n)| Arc::new(Datanode::in_memory(DatanodeId(i as u32), *n)))
                .collect();
            let policy = PlacementPolicy::new(topo, 2010);
            for block in 0..blocks {
                for (client, writer) in writer_nodes.iter().enumerate() {
                    let chosen = policy.choose(&datanodes, config.replication, *writer);
                    let nodes: Vec<NodeId> = chosen
                        .iter()
                        .map(|d| datanodes[d.0 as usize].node())
                        .collect();
                    placements[client][block as usize] = vec![(nodes, config.block_size)];
                }
            }
        }
    }
    placements
}

/// The replica of `replicas` closest to `reader` (HDFS clients read from the
/// nearest replica; BSFS readers fetch from the page's providers, preferring
/// a close one when the page is replicated).
fn closest_replica(topology: &ClusterTopology, reader: NodeId, replicas: &[NodeId]) -> NodeId {
    *replicas
        .iter()
        .min_by_key(|n| topology.proximity(reader, **n))
        .expect("every block has at least one replica")
}

/// E3 — concurrent writes to different files. Each client streams its blocks
/// to the replicas chosen by the system's placement policy.
pub fn sim_write_distinct(system: StorageSystem, config: &SimScaleConfig) -> SimReport {
    let writer_nodes: Vec<NodeId> = (0..config.clients).map(|i| config.client_node(i)).collect();
    let placements = compute_placements(system, config, &writer_nodes);
    // Durability differs by design: an HDFS datanode writes each chunk to its
    // local file system synchronously in the write path, whereas BlobSeer
    // providers absorb pages in memory and persist them asynchronously
    // (through the BerkeleyDB layer), so only HDFS pays the disk on the
    // critical path. This, combined with the local-first placement, is what
    // bounds an HDFS writer at local-disk speed while a BSFS writer streams
    // at NIC speed across many providers.
    let durable = matches!(system, StorageSystem::Hdfs);
    run_write_processes(config, &writer_nodes, &placements, durable)
}

/// A1 ablation — the write pattern driven by an arbitrary BlobSeer placement
/// strategy (load-balanced, local-first, random), so the effect of the
/// placement policy can be isolated from everything else.
pub fn sim_write_with_strategy(strategy: PlacementStrategy, config: &SimScaleConfig) -> SimReport {
    let topo = &config.topology;
    let writer_nodes: Vec<NodeId> = (0..config.clients).map(|i| config.client_node(i)).collect();
    let storage_nodes = config.storage_node_ids();
    let manager = ProviderManager::new_in_memory(topo, &storage_nodes, strategy);
    let blocks = config.blocks_per_client();
    let pages = config.pages_per_block.max(1) as u64;
    let page_bytes = config.block_size / pages;
    let mut placements: Placements = vec![vec![Vec::new(); blocks as usize]; writer_nodes.len()];
    for block in 0..blocks {
        for (client, writer) in writer_nodes.iter().enumerate() {
            let allocation = manager.allocate(pages, config.replication, *writer);
            placements[client][block as usize] = allocation
                .iter()
                .map(|replicas| {
                    let nodes = replicas
                        .iter()
                        .filter_map(|p| manager.node_of(*p))
                        .collect();
                    (nodes, page_bytes)
                })
                .collect();
        }
    }
    // The ablation isolates the durable-write path: every copy must reach its
    // provider's disk, which is what makes the local-first concentration
    // expensive.
    run_write_processes(config, &writer_nodes, &placements, true)
}

/// Build and run the writer processes for a precomputed placement: one step
/// per block, whose parallel flows push every stripe to every one of its
/// replicas.
fn run_write_processes(
    config: &SimScaleConfig,
    writer_nodes: &[NodeId],
    placements: &Placements,
    durable: bool,
) -> SimReport {
    let processes: Vec<ClientProcess> = (0..writer_nodes.len())
        .map(|i| {
            let me = writer_nodes[i];
            let steps = placements[i].iter().map(|layout| {
                Step::parallel(
                    layout
                        .iter()
                        .flat_map(|(replicas, bytes)| {
                            replicas.iter().map(move |r| {
                                if durable {
                                    Flow::write_to_storage(me, *r, *bytes)
                                } else {
                                    Flow::new(me, *r, *bytes)
                                }
                            })
                        })
                        .collect(),
                )
            });
            ClientProcess::new(me)
                .labelled(format!("writer-{i}"))
                .then_all(steps)
        })
        .collect();
    FlowSimulator::new(&config.topology, config.network.clone()).run(processes)
}

/// Reader process for one client over a sequence of block layouts: one step
/// per block, fetching each stripe in parallel from its closest replica.
fn reader_process(
    config: &SimScaleConfig,
    me: NodeId,
    label: String,
    blocks: &[BlockLayout],
) -> ClientProcess {
    let steps = blocks.iter().map(|layout| {
        Step::parallel(
            layout
                .iter()
                .map(|(replicas, bytes)| {
                    let source = closest_replica(&config.topology, me, replicas);
                    // Reads are served from the storage nodes' page cache in
                    // the paper's regime, so only the network path is modelled.
                    Flow::new(source, me, *bytes)
                })
                .collect(),
        )
    });
    ClientProcess::new(me).labelled(label).then_all(steps)
}

/// E1 — concurrent reads from different files. Client `i` reads back a file
/// that was pre-loaded from `loader_node(i)`, block by block, each block's
/// stripes fetched in parallel from the closest replicas.
pub fn sim_read_distinct(system: StorageSystem, config: &SimScaleConfig) -> SimReport {
    // Each client reads a file produced earlier by some other node's task
    // (the measured case; a reader co-located with its file would just hit
    // its local page cache and measure nothing interesting).
    let loader_nodes: Vec<NodeId> = (0..config.clients)
        .map(|i| {
            let loader = config.loader_node(i);
            if loader == config.client_node(i) {
                config.loader_node(i + config.clients)
            } else {
                loader
            }
        })
        .collect();
    let placements = compute_placements(system, config, &loader_nodes);

    let processes: Vec<ClientProcess> = (0..config.clients)
        .map(|i| {
            let me = config.client_node(i);
            reader_process(config, me, format!("reader-{i}"), &placements[i])
        })
        .collect();

    FlowSimulator::new(&config.topology, config.network.clone()).run(processes)
}

/// E2 — concurrent reads of non-overlapping parts of one huge file. The file
/// (clients × bytes_per_client) was pre-loaded by a single loader client,
/// which is exactly what concentrates HDFS's placement choices while BlobSeer
/// still stripes it over every provider.
pub fn sim_read_shared(system: StorageSystem, config: &SimScaleConfig) -> SimReport {
    // The huge shared input was produced by an earlier distributed job (e.g.
    // a random-text-writer run): block `c` was written by a task on
    // `loader_node(c)`. Under HDFS's local-first policy each block therefore
    // sits wherever its producing task happened to run; BlobSeer stripes the
    // same blocks evenly over all providers regardless of the producers.
    let total_blocks = (config.blocks_per_client() * config.clients as u64) as usize;
    let block_writers: Vec<NodeId> = (0..total_blocks).map(|c| config.loader_node(c)).collect();
    let one_block_config = SimScaleConfig {
        bytes_per_client: config.block_size,
        ..config.clone()
    };
    let per_block = compute_placements(system, &one_block_config, &block_writers);
    let file_blocks: Vec<BlockLayout> = per_block
        .into_iter()
        .map(|mut blocks| blocks.remove(0))
        .collect();

    let blocks_per_client = config.blocks_per_client() as usize;
    let processes: Vec<ClientProcess> = (0..config.clients)
        .map(|i| {
            let me = config.client_node(i);
            let start = i * blocks_per_client;
            reader_process(
                config,
                me,
                format!("shared-reader-{i}"),
                &file_blocks[start..start + blocks_per_client],
            )
        })
        .collect();

    FlowSimulator::new(&config.topology, config.network.clone()).run(processes)
}

/// Run one microbenchmark pattern for one system at one client count and
/// return `(aggregate bytes/s, mean per-client bytes/s)` — the two numbers
/// the paper's figures plot.
pub fn run_pattern(
    system: StorageSystem,
    pattern: crate::microbench::AccessPattern,
    config: &SimScaleConfig,
) -> (f64, f64) {
    let report = match pattern {
        crate::microbench::AccessPattern::ReadDistinctFiles => sim_read_distinct(system, config),
        crate::microbench::AccessPattern::ReadSharedFile => sim_read_shared(system, config),
        crate::microbench::AccessPattern::WriteDistinctFiles => sim_write_distinct(system, config),
    };
    (
        report.aggregate_throughput(),
        report.mean_client_throughput(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::AccessPattern;

    #[test]
    fn write_distinct_bsfs_outperforms_hdfs() {
        let config = SimScaleConfig::small(8);
        let bsfs = sim_write_distinct(StorageSystem::Bsfs, &config);
        let hdfs = sim_write_distinct(StorageSystem::Hdfs, &config);
        assert_eq!(bsfs.total_bytes(), hdfs.total_bytes());
        assert!(
            bsfs.aggregate_throughput() > hdfs.aggregate_throughput(),
            "BSFS ({:.1} MB/s) should beat HDFS ({:.1} MB/s) on concurrent writes",
            bsfs.aggregate_throughput() / 1e6,
            hdfs.aggregate_throughput() / 1e6
        );
    }

    #[test]
    fn read_shared_bsfs_scales_much_better_than_hdfs() {
        let config = SimScaleConfig::small(12);
        let bsfs = sim_read_shared(StorageSystem::Bsfs, &config);
        let hdfs = sim_read_shared(StorageSystem::Hdfs, &config);
        // The single-loader file leaves HDFS with whole-chunk placements
        // (and their collisions) while BlobSeer stripes pages evenly; BSFS
        // must come out ahead. The gap widens with scale; at this toy size we
        // only assert a clear ordering.
        assert!(
            bsfs.aggregate_throughput() > 1.05 * hdfs.aggregate_throughput(),
            "BSFS {:.1} MB/s vs HDFS {:.1} MB/s",
            bsfs.aggregate_throughput() / 1e6,
            hdfs.aggregate_throughput() / 1e6
        );
    }

    #[test]
    fn read_distinct_bsfs_at_least_matches_hdfs() {
        let config = SimScaleConfig::small(8);
        let bsfs = sim_read_distinct(StorageSystem::Bsfs, &config);
        let hdfs = sim_read_distinct(StorageSystem::Hdfs, &config);
        assert!(bsfs.aggregate_throughput() >= 0.95 * hdfs.aggregate_throughput());
    }

    #[test]
    fn bsfs_per_client_throughput_stays_roughly_flat_with_more_clients() {
        let few = SimScaleConfig::small(2);
        let many = SimScaleConfig::small(12);
        let t_few = sim_write_distinct(StorageSystem::Bsfs, &few).mean_client_throughput();
        let t_many = sim_write_distinct(StorageSystem::Bsfs, &many).mean_client_throughput();
        assert!(
            t_many > 0.5 * t_few,
            "per-client throughput collapsed: {t_few:.0} -> {t_many:.0}"
        );
    }

    #[test]
    fn all_bytes_are_accounted_for() {
        let config = SimScaleConfig::small(4);
        // Writes move block_size * blocks * replication bytes per client.
        let report = sim_write_distinct(StorageSystem::Bsfs, &config);
        let expected =
            config.blocks_per_client() * config.block_size * config.replication as u64 * 4;
        assert_eq!(report.total_bytes(), expected);
        // Reads move exactly bytes_per_client per client (single copy).
        let report = sim_read_distinct(StorageSystem::Hdfs, &config);
        assert_eq!(report.total_bytes(), config.bytes_per_client * 4);
    }

    #[test]
    fn run_pattern_dispatches_all_three() {
        let config = SimScaleConfig::small(3);
        for pattern in [
            AccessPattern::ReadDistinctFiles,
            AccessPattern::ReadSharedFile,
            AccessPattern::WriteDistinctFiles,
        ] {
            let (agg, per_client) = run_pattern(StorageSystem::Bsfs, pattern, &config);
            assert!(agg > 0.0);
            assert!(per_client > 0.0);
            assert!(agg >= per_client);
        }
    }

    #[test]
    fn helper_node_mappings_are_deterministic_and_in_range() {
        let topo = ClusterTopology::flat(10);
        for i in 0..50 {
            assert!(client_node(&topo, i).0 < 10);
            assert!(loader_node(&topo, i).0 < 10);
            assert_eq!(client_node(&topo, i), client_node(&topo, i));
        }
        // Clients wrap around the node count.
        assert_eq!(client_node(&topo, 0), client_node(&topo, 10));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn load_balanced_placement_beats_local_first_for_writes() {
        let config = SimScaleConfig::small_colocated(8);
        let balanced = sim_write_with_strategy(PlacementStrategy::LoadBalanced, &config);
        let local = sim_write_with_strategy(PlacementStrategy::LocalFirst, &config);
        assert!(
            balanced.aggregate_throughput() > local.aggregate_throughput(),
            "load-balanced {:.1} MB/s should beat local-first {:.1} MB/s",
            balanced.aggregate_throughput() / 1e6,
            local.aggregate_throughput() / 1e6
        );
    }

    #[test]
    fn random_placement_does_not_beat_load_balancing() {
        // Random placement spreads load but without the least-loaded feedback
        // it cannot do better than the balanced policy; depending on the
        // replication factor it can even lose to local-first (whose first
        // copy avoids the network entirely), so no ordering against
        // local-first is asserted here.
        let config = SimScaleConfig::small_colocated(8);
        let balanced = sim_write_with_strategy(PlacementStrategy::LoadBalanced, &config);
        let random = sim_write_with_strategy(PlacementStrategy::Random, &config);
        assert!(random.aggregate_throughput() > 0.0);
        assert!(random.aggregate_throughput() <= balanced.aggregate_throughput() * 1.05);
    }
}
