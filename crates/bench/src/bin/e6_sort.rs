//! E6 — shuffle-heavy workloads through the storage layer: Distributed Sort
//! (TeraSort-style) and word count with/without a combiner, BSFS vs HDFS.
//!
//! Unlike E4/E5 (whose jobs only touch storage for input and output), every
//! input byte of the sort crosses the shuffle: map tasks spill sorted,
//! partition-bucketed files through `DistFs`, and reducers pull their
//! partition's segment from every map file with positioned reads. The
//! shuffle counters reported here are therefore a *storage* workload
//! comparison — lots of concurrent small files and positioned reads, the
//! access pattern the paper's BlobSeer layer is built for.
//!
//! `BENCH_SMOKE=1` shrinks everything to a does-it-run configuration (CI).

use mapreduce::DistFs;
use simcluster::metrics::completion_table;
use workloads::TextGenerator;

fn main() {
    let smoke = bench::smoke_mode();
    let (lines, reducers, split_size) = if smoke {
        (1_000, 2, 4 * 1024)
    } else {
        (50_000, 4, 256 * 1024)
    };
    let block = 1u64 << 20;
    let (bsfs, hdfs) = bench::app_backends(block);

    let mut generator = TextGenerator::new(2026);
    let text = generator.sentences(lines);

    println!("== E6: Distributed Sort ({lines} lines, {reducers} reducers) ==");
    let mut records = Vec::new();
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        fs.write_file("/input/unsorted.txt", text.as_bytes())
            .unwrap();
        let job = workloads::distributed_sort_job(
            fs,
            vec!["/input/unsorted.txt".into()],
            "/sort-out",
            reducers,
            split_size,
        )
        .expect("sampling the sort input");
        let (result, rec) = bench::run_job_on(fs, &bench::app_topology(), &job);

        // Verify the total order before reporting anything.
        let mut merged = Vec::new();
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            merged.extend(
                String::from_utf8_lossy(&content)
                    .lines()
                    .map(str::to_string),
            );
        }
        assert!(
            merged.windows(2).all(|w| w[0] <= w[1]),
            "{}: concatenated partitions must be globally sorted",
            rec.system
        );
        assert_eq!(merged.len(), text.lines().count());

        println!("{}", bench::shuffle_report(&result));
        records.push(rec);
    }
    println!();
    print!("{}", completion_table(&records));
    println!();

    println!("== E6: word count combiner ablation (shuffle bytes, BSFS vs HDFS) ==");
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        for (label, combining) in [("plain    ", false), ("combining", true)] {
            let out = format!("/wc-{label}", label = label.trim());
            let input = vec!["/input/unsorted.txt".to_string()];
            let job = if combining {
                workloads::word_count_job_combining(input, &out, reducers, split_size)
            } else {
                workloads::word_count_job(input, &out, reducers, split_size)
            };
            let (result, _) = bench::run_job_on(fs, &bench::app_topology(), &job);
            println!("{label} {}", bench::shuffle_report(&result));
        }
    }
}
