//! Deployment configuration for a BlobSeer instance.

use crate::provider_manager::PlacementStrategy;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of an in-process BlobSeer deployment.
///
/// The defaults mirror the deployments used in the paper's evaluation: 64 MiB
/// pages (matching Hadoop's chunk size so that one Hadoop block maps to one
/// BlobSeer page), a handful of metadata providers, and page-level
/// replication disabled (the microbenchmarks compare raw throughput; the
/// fault-tolerance experiments turn it up).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlobSeerConfig {
    /// Default page size (bytes) for blobs that do not override it.
    pub default_page_size: u64,
    /// Number of data providers to create.
    pub providers: usize,
    /// Number of metadata provider nodes in the DHT.
    pub metadata_providers: usize,
    /// Replication factor for metadata records in the DHT.
    pub metadata_replication: usize,
    /// Page-level replication factor (1 = no replication).
    pub page_replication: usize,
    /// Placement strategy used by the provider manager.
    pub placement: PlacementStrategy,
    /// Number of version-manager shards (independent lock + condvar each).
    pub version_manager_shards: usize,
    /// Whether clients keep a cache of segment-tree nodes in front of the
    /// metadata DHT. Tree nodes are versioned and immutable, so the cache
    /// never needs invalidation; disabling it sends every node lookup to the
    /// DHT (the configuration used for the read-path ablation).
    pub metadata_cache: bool,
    /// Capacity (in tree nodes) of the client-side metadata cache.
    pub metadata_cache_capacity: usize,
    /// Upper bound on the threads a single read or write operation fans its
    /// per-page provider I/O out over (1 = fully sequential page transfers).
    pub io_parallelism: usize,
    /// Sequential read-ahead window (in pages) for the metadata read path.
    /// When non-zero, a read's segment-tree descent also fetches the subtrees
    /// covering up to this many pages past the requested range in the same
    /// `get_many` round trips, pre-warming the metadata cache for the next
    /// sequential read. 0 disables read-ahead. Only effective when the
    /// metadata cache is enabled (prefetching into no cache is pure waste).
    pub metadata_readahead: usize,
    /// Snapshot retention policy: keep only the newest K published versions of
    /// each blob eligible for reads, letting [`crate::BlobSeer::collect_garbage`]
    /// reclaim metadata nodes and pages reachable only from older versions.
    /// `None` retains every version forever (the classic BlobSeer model).
    /// Pinned snapshots survive regardless of K.
    pub gc_keep_last: Option<usize>,
    /// Background GC cadence in milliseconds (of the instance's `Clock`, so
    /// tests drive it with `SimClock`). When set, the write path checks the
    /// clock after each commit and, once this much time has elapsed since the
    /// last collection, schedules [`crate::BlobSeer::collect_garbage`] as a
    /// background task on the executor pool. `None` keeps GC purely
    /// caller-driven. Only meaningful together with `gc_keep_last`.
    pub gc_interval_ms: Option<u64>,
    /// When true, the metadata read-ahead window self-tunes from the
    /// prefetch counters: it is halved whenever a window wasted prefetched
    /// nodes (evicted untouched) and grown additively after all-hit windows,
    /// bounded above by `metadata_readahead`. When false the window is the
    /// fixed `metadata_readahead` knob.
    pub adaptive_readahead: bool,
    /// Background repair cadence in milliseconds (of the instance's `Clock`,
    /// so tests drive it with `SimClock`). When set, the deployment attaches
    /// heartbeat failure detectors to the metadata DHT and the provider
    /// registry, and the write path — after each commit, like the GC
    /// cadence — schedules a repair pass (heartbeat probes + active
    /// re-replication of under-replicated metadata keys and provider pages)
    /// as a background task on the executor pool. `None` disables failure
    /// detection and repair entirely (callers can still run
    /// [`crate::BlobSeer::repair`] by hand).
    pub repair_interval_ms: Option<u64>,
    /// Total tries per DHT data operation and per page fetch/push (1 =
    /// fail fast). Retries back off exponentially from `retry_backoff_ms`,
    /// giving a concurrent repair pass a window to restore replicas.
    pub retry_attempts: u32,
    /// Backoff (wall milliseconds) before the first retry; doubles on each
    /// further retry.
    pub retry_backoff_ms: u64,
    /// When true, sub-page reads ask providers for only the byte window they
    /// need (`Download(key, offset, len)`), instead of fetching the whole
    /// page and slicing locally. Whole-page reads are unaffected. Disabling
    /// it restores the whole-page fetch (the ranged-vs-whole ablation arm).
    pub ranged_reads: bool,
    /// When true, a read's demand page fetches bound for the same provider
    /// are folded into one `DownloadMany` message — one wire exchange (one
    /// latency charge) per destination per read instead of one per page.
    /// Disabling it issues one message per page (the coalescing ablation
    /// arm).
    pub coalesce_reads: bool,
}

impl Default for BlobSeerConfig {
    fn default() -> Self {
        BlobSeerConfig {
            default_page_size: 64 * 1024 * 1024,
            providers: 8,
            metadata_providers: 4,
            metadata_replication: 2,
            page_replication: 1,
            placement: PlacementStrategy::LoadBalanced,
            version_manager_shards: crate::version_manager::DEFAULT_SHARDS,
            metadata_cache: true,
            metadata_cache_capacity: 64 * 1024,
            io_parallelism: 8,
            metadata_readahead: 0,
            gc_keep_last: None,
            gc_interval_ms: None,
            adaptive_readahead: false,
            repair_interval_ms: None,
            retry_attempts: 1,
            retry_backoff_ms: 1,
            ranged_reads: true,
            coalesce_reads: true,
        }
    }
}

impl BlobSeerConfig {
    /// A configuration sized for unit tests: small pages, a few providers.
    pub fn for_tests() -> Self {
        BlobSeerConfig {
            default_page_size: 1024,
            providers: 4,
            metadata_providers: 3,
            metadata_replication: 2,
            page_replication: 1,
            placement: PlacementStrategy::LoadBalanced,
            version_manager_shards: 4,
            metadata_cache: true,
            metadata_cache_capacity: 1024,
            io_parallelism: 4,
            metadata_readahead: 0,
            gc_keep_last: None,
            gc_interval_ms: None,
            adaptive_readahead: false,
            repair_interval_ms: None,
            retry_attempts: 1,
            retry_backoff_ms: 1,
            ranged_reads: true,
            coalesce_reads: true,
        }
    }

    /// Builder-style override of the page size.
    pub fn with_page_size(mut self, page_size: u64) -> Self {
        self.default_page_size = page_size;
        self
    }

    /// Builder-style override of the provider count.
    pub fn with_providers(mut self, providers: usize) -> Self {
        self.providers = providers;
        self
    }

    /// Builder-style override of the page replication factor.
    pub fn with_page_replication(mut self, replication: usize) -> Self {
        self.page_replication = replication;
        self
    }

    /// Builder-style override of the placement strategy.
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style override of the version-manager shard count.
    pub fn with_version_manager_shards(mut self, shards: usize) -> Self {
        self.version_manager_shards = shards;
        self
    }

    /// Builder-style toggle of the client-side metadata node cache.
    pub fn with_metadata_cache(mut self, enabled: bool) -> Self {
        self.metadata_cache = enabled;
        self
    }

    /// Builder-style override of the metadata cache capacity (in nodes).
    pub fn with_metadata_cache_capacity(mut self, capacity: usize) -> Self {
        self.metadata_cache_capacity = capacity;
        self
    }

    /// Builder-style override of the per-operation page I/O fan-out.
    pub fn with_io_parallelism(mut self, threads: usize) -> Self {
        self.io_parallelism = threads;
        self
    }

    /// Builder-style override of the metadata read-ahead window (in pages).
    pub fn with_metadata_readahead(mut self, pages: usize) -> Self {
        self.metadata_readahead = pages;
        self
    }

    /// Builder-style override of the snapshot retention policy (keep-last-K).
    pub fn with_gc_keep_last(mut self, keep: usize) -> Self {
        self.gc_keep_last = Some(keep);
        self
    }

    /// Builder-style override of the background GC cadence. The interval is
    /// measured on the instance's `Clock` (so `SimClock` tests control it)
    /// and rounded down to whole milliseconds.
    pub fn with_gc_interval(mut self, interval: Duration) -> Self {
        self.gc_interval_ms = Some(interval.as_millis() as u64);
        self
    }

    /// Builder-style toggle of the self-tuning metadata read-ahead window.
    pub fn with_adaptive_readahead(mut self, enabled: bool) -> Self {
        self.adaptive_readahead = enabled;
        self
    }

    /// Builder-style override of the background repair cadence. The interval
    /// is measured on the instance's `Clock` (so `SimClock` tests control
    /// it) and rounded down to whole milliseconds. Setting it also attaches
    /// heartbeat failure detectors to both storage tiers.
    pub fn with_repair_interval(mut self, interval: Duration) -> Self {
        self.repair_interval_ms = Some(interval.as_millis() as u64);
        self
    }

    /// Builder-style override of the client retry policy for DHT operations
    /// and page I/O: total `attempts` per operation, exponential backoff
    /// starting at `backoff`.
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.retry_attempts = attempts;
        self.retry_backoff_ms = backoff.as_millis() as u64;
        self
    }

    /// Builder-style toggle of ranged (sub-page) provider reads.
    pub fn with_ranged_reads(mut self, enabled: bool) -> Self {
        self.ranged_reads = enabled;
        self
    }

    /// Builder-style toggle of per-destination read coalescing.
    pub fn with_coalesced_reads(mut self, enabled: bool) -> Self {
        self.coalesce_reads = enabled;
        self
    }

    /// Validate invariants, panicking with a clear message if violated. Called
    /// by [`crate::BlobSeer::new`].
    pub fn validate(&self) {
        assert!(self.default_page_size > 0, "page size must be non-zero");
        assert!(self.providers > 0, "at least one data provider is required");
        assert!(
            self.metadata_providers > 0,
            "at least one metadata provider is required"
        );
        assert!(
            self.metadata_replication >= 1,
            "metadata replication must be >= 1"
        );
        assert!(self.page_replication >= 1, "page replication must be >= 1");
        assert!(
            self.page_replication <= self.providers,
            "page replication ({}) cannot exceed the number of providers ({})",
            self.page_replication,
            self.providers
        );
        assert!(
            self.version_manager_shards >= 1,
            "at least one version-manager shard is required"
        );
        assert!(
            !self.metadata_cache || self.metadata_cache_capacity >= 1,
            "an enabled metadata cache needs a non-zero capacity"
        );
        assert!(
            self.io_parallelism >= 1,
            "page I/O parallelism must be at least 1"
        );
        assert!(
            self.gc_keep_last != Some(0),
            "snapshot retention must keep at least one version"
        );
        assert!(
            self.gc_interval_ms != Some(0),
            "a background GC interval must be non-zero"
        );
        assert!(
            self.gc_interval_ms.is_none() || self.gc_keep_last.is_some(),
            "a background GC interval needs a retention policy (gc_keep_last) to enforce"
        );
        assert!(
            !self.adaptive_readahead || self.metadata_readahead >= 1,
            "adaptive read-ahead needs a non-zero metadata_readahead as its upper bound"
        );
        assert!(
            self.repair_interval_ms != Some(0),
            "a background repair interval must be non-zero"
        );
        assert!(
            self.retry_attempts >= 1,
            "at least one attempt per operation is required"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        BlobSeerConfig::default().validate();
        BlobSeerConfig::for_tests().validate();
    }

    #[test]
    fn builder_overrides() {
        let c = BlobSeerConfig::for_tests()
            .with_page_size(4096)
            .with_providers(10)
            .with_page_replication(3)
            .with_placement(PlacementStrategy::Random)
            .with_metadata_cache(false)
            .with_metadata_cache_capacity(128)
            .with_io_parallelism(2)
            .with_metadata_readahead(16)
            .with_gc_keep_last(3)
            .with_gc_interval(Duration::from_secs(30))
            .with_adaptive_readahead(true)
            .with_repair_interval(Duration::from_secs(2))
            .with_retry(4, Duration::from_millis(5))
            .with_ranged_reads(false)
            .with_coalesced_reads(false);
        assert_eq!(c.default_page_size, 4096);
        assert_eq!(c.providers, 10);
        assert_eq!(c.page_replication, 3);
        assert_eq!(c.placement, PlacementStrategy::Random);
        assert!(!c.metadata_cache);
        assert_eq!(c.metadata_cache_capacity, 128);
        assert_eq!(c.io_parallelism, 2);
        assert_eq!(c.metadata_readahead, 16);
        assert_eq!(c.gc_keep_last, Some(3));
        assert_eq!(c.gc_interval_ms, Some(30_000));
        assert!(c.adaptive_readahead);
        assert_eq!(c.repair_interval_ms, Some(2_000));
        assert_eq!(c.retry_attempts, 4);
        assert_eq!(c.retry_backoff_ms, 5);
        assert!(!c.ranged_reads);
        assert!(!c.coalesce_reads);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "repair interval must be non-zero")]
    fn zero_repair_interval_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_repair_interval(Duration::from_millis(0))
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_retry_attempts_are_rejected() {
        BlobSeerConfig::for_tests()
            .with_retry(0, Duration::from_millis(1))
            .validate();
    }

    #[test]
    #[should_panic(expected = "keep at least one version")]
    fn zero_retention_is_rejected() {
        BlobSeerConfig::for_tests().with_gc_keep_last(0).validate();
    }

    #[test]
    #[should_panic(expected = "needs a retention policy")]
    fn gc_interval_without_retention_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_gc_interval(Duration::from_secs(1))
            .validate();
    }

    #[test]
    #[should_panic(expected = "non-zero metadata_readahead")]
    fn adaptive_readahead_without_a_window_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_adaptive_readahead(true)
            .validate();
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn enabled_cache_with_zero_capacity_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_metadata_cache_capacity(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_io_parallelism_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_io_parallelism(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "cannot exceed the number of providers")]
    fn replication_beyond_providers_is_rejected() {
        BlobSeerConfig::for_tests()
            .with_providers(2)
            .with_page_replication(3)
            .validate();
    }

    #[test]
    #[should_panic(expected = "page size must be non-zero")]
    fn zero_page_size_is_rejected() {
        BlobSeerConfig::for_tests().with_page_size(0).validate();
    }
}
