//! Error type for the HDFS-like baseline file system.

use std::fmt;

/// Result alias for HDFS operations.
pub type HdfsResult<T> = Result<T, HdfsError>;

/// Errors surfaced by the HDFS baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    /// The path does not name an existing file.
    FileNotFound(String),
    /// The path already exists.
    AlreadyExists(String),
    /// The path is a directory where a file was expected.
    IsADirectory(String),
    /// The path is a file where a directory was expected.
    NotADirectory(String),
    /// The parent directory does not exist.
    ParentMissing(String),
    /// A path was syntactically invalid.
    InvalidPath(String),
    /// HDFS files are write-once: the file is still being written (not yet
    /// closed) and cannot be read, or it is closed and cannot be written.
    WrongFileState {
        path: String,
        expected: &'static str,
    },
    /// A read past the end of a file.
    OutOfBounds {
        path: String,
        requested_end: u64,
        size: u64,
    },
    /// The directory is not empty and recursive deletion was not requested.
    DirectoryNotEmpty(String),
    /// No datanode is available to hold a chunk replica.
    NoDatanodes,
    /// A chunk could not be read from any replica.
    ChunkUnavailable { path: String, chunk_index: usize },
    /// The writer was already closed.
    WriterClosed,
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            HdfsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            HdfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            HdfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            HdfsError::ParentMissing(p) => write!(f, "parent directory does not exist: {p}"),
            HdfsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            HdfsError::WrongFileState { path, expected } => {
                write!(f, "file {path} is not in the required state ({expected})")
            }
            HdfsError::OutOfBounds {
                path,
                requested_end,
                size,
            } => {
                write!(
                    f,
                    "read past end of {path}: requested byte {requested_end}, size {size}"
                )
            }
            HdfsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            HdfsError::NoDatanodes => write!(f, "no datanodes available"),
            HdfsError::ChunkUnavailable { path, chunk_index } => {
                write!(
                    f,
                    "chunk {chunk_index} of {path} unavailable from any replica"
                )
            }
            HdfsError::WriterClosed => write!(f, "writer already closed"),
        }
    }
}

impl std::error::Error for HdfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HdfsError::FileNotFound("/x".into())
            .to_string()
            .contains("/x"));
        assert!(HdfsError::NoDatanodes.to_string().contains("datanodes"));
        assert!(HdfsError::WrongFileState {
            path: "/f".into(),
            expected: "closed"
        }
        .to_string()
        .contains("closed"));
        assert!(HdfsError::ChunkUnavailable {
            path: "/f".into(),
            chunk_index: 3
        }
        .to_string()
        .contains("chunk 3"));
        let e = HdfsError::OutOfBounds {
            path: "/f".into(),
            requested_end: 9,
            size: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
