//! The centralized version manager.
//!
//! "Versions are assigned by a centralized version manager, which is also
//! responsible for ensuring consistency when concurrent writes to the same
//! blob are issued" (paper §III-A). This module implements that entity:
//!
//! * it creates blobs and hands out their ids,
//! * it *reserves* a version number (and, for appends, the offset at which
//!   the append will land) before the writer starts pushing pages, so that
//!   concurrent writers to the same blob never collide,
//! * it *commits* versions in order: a version becomes visible (published)
//!   only after every earlier version of the same blob has been published,
//!   which gives readers a totally ordered, gap-free version history,
//! * it answers "what is the latest published version?" and "what are the
//!   root/size of version v?" queries for readers.
//!
//! Only the version-number assignment and the publication step are
//! centralized and serialized — and even those are serialized *per blob*, not
//! globally: the manager is sharded by blob id, so commits and waits on
//! different blobs touch independent locks and condition variables. Notify
//! storms on a hot blob stay inside its shard instead of waking every waiter
//! in the system. Per-shard contention counters expose how often threads
//! actually collided, which the bench harness reports.

use crate::error::{BlobResult, BlobSeerError};
use crate::metadata::NodeKey;
use crate::types::{BlobId, ByteRange, Version};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of shards used by [`VersionManager::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// What a writer intends to do; used by [`VersionManager::reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteIntent {
    /// Overwrite (or sparsely extend) the blob at a fixed offset.
    WriteAt { offset: u64, len: u64 },
    /// Append `len` bytes at the current end of the blob; the actual offset is
    /// chosen at reservation time so concurrent appends serialize correctly.
    Append { len: u64 },
}

/// A reservation handed to a writer. The writer pushes its pages to
/// providers, builds the metadata tree, and then commits the ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteTicket {
    /// Blob being written.
    pub blob: BlobId,
    /// The version this write will become.
    pub version: Version,
    /// Byte range the write covers (offset is resolved for appends).
    pub range: ByteRange,
    /// Size of the blob once this version is published.
    pub new_size: u64,
    /// Size of the blob at the predecessor version (used for boundary
    /// read-modify-write decisions).
    pub prev_size: u64,
}

/// Descriptor of a published version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    /// The version number.
    pub version: Version,
    /// Root of its segment tree (`None` for the empty version 0).
    pub root: Option<NodeKey>,
    /// Blob size in bytes at this version.
    pub size: u64,
}

/// Lock/condvar traffic counters for one shard (or, summed, for the whole
/// manager). All counters are monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Times the shard lock was taken.
    pub lock_acquisitions: u64,
    /// Lock acquisitions that found the lock held and had to block.
    pub contended_acquisitions: u64,
    /// Condition-variable wait episodes (a waiter can wake and re-wait
    /// several times for one predecessor; each sleep counts).
    pub cond_waits: u64,
    /// `notify_all` calls issued by commits, aborts and deletes.
    pub notifies: u64,
}

impl ShardStats {
    fn add(&mut self, other: &ShardStats) {
        self.lock_acquisitions += other.lock_acquisitions;
        self.contended_acquisitions += other.contended_acquisitions;
        self.cond_waits += other.cond_waits;
        self.notifies += other.notifies;
    }
}

/// Per-blob bookkeeping.
struct BlobState {
    /// Next version number to hand out.
    next_version: u64,
    /// Size the blob will have once all reserved writes commit (used to place
    /// concurrent appends one after another).
    reserved_size: u64,
    /// Published versions: version -> (root, size). Version 0 is always here.
    published: BTreeMap<u64, (Option<NodeKey>, u64)>,
    /// Highest version v such that every version <= v is published.
    published_up_to: u64,
    /// Committed but not yet publishable versions (a predecessor is missing).
    pending: BTreeMap<u64, (Option<NodeKey>, u64)>,
    /// Tickets that have been reserved but not yet committed/aborted.
    outstanding: HashMap<u64, WriteTicket>,
    /// Aborted tickets whose size reservation has not been reclaimed yet:
    /// version -> (prev_size, new_size).
    aborted: BTreeMap<u64, (u64, u64)>,
    /// Versions pinned against retention: [`VersionManager::retire_expired`]
    /// never retires them regardless of the keep-last-K policy.
    pinned: BTreeSet<u64>,
}

impl BlobState {
    fn new() -> Self {
        let mut published = BTreeMap::new();
        published.insert(0, (None, 0));
        BlobState {
            next_version: 1,
            reserved_size: 0,
            published,
            published_up_to: 0,
            pending: BTreeMap::new(),
            outstanding: HashMap::new(),
            aborted: BTreeMap::new(),
            pinned: BTreeSet::new(),
        }
    }

    /// Move consecutive pending versions into the published map.
    fn advance(&mut self) {
        while let Some(entry) = self.pending.remove(&(self.published_up_to + 1)) {
            self.published_up_to += 1;
            self.published.insert(self.published_up_to, entry);
        }
    }

    /// Unwind the size reservations of aborted tickets sitting at the top of
    /// the reservation stack (newest version downwards, through consecutive
    /// aborts only). A reservation below a committed or still-outstanding
    /// version can never be reclaimed: the later version's placement — and,
    /// once published, its recorded blob size — already builds on it, so
    /// rolling it back would regress published sizes.
    fn reclaim_aborted(&mut self) {
        let mut top = self.next_version - 1;
        while let Some(&(prev_size, new_size)) = self.aborted.get(&top) {
            // Consecutive reservations always chain (prev of k == new of
            // k-1), so this equality holds for every popped entry.
            if self.reserved_size == new_size {
                self.reserved_size = prev_size;
            }
            self.aborted.remove(&top);
            if top == 0 {
                break;
            }
            top -= 1;
        }
    }
}

/// One shard: an independent lock + condvar over a slice of the blob space.
struct Shard {
    blobs: Mutex<HashMap<BlobId, BlobState>>,
    /// Notified whenever a version of a blob in this shard is published (or
    /// the blob is deleted), so waiters can re-check.
    published_cond: Condvar,
    lock_acquisitions: AtomicU64,
    contended_acquisitions: AtomicU64,
    cond_waits: AtomicU64,
    notifies: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            blobs: Mutex::new(HashMap::new()),
            published_cond: Condvar::new(),
            lock_acquisitions: AtomicU64::new(0),
            contended_acquisitions: AtomicU64::new(0),
            cond_waits: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
        }
    }

    /// Lock the shard, counting whether we had to block to get it.
    fn lock(&self) -> MutexGuard<'_, HashMap<BlobId, BlobState>> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.blobs.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended_acquisitions.fetch_add(1, Ordering::Relaxed);
                self.blobs.lock()
            }
        }
    }

    fn notify_published(&self) {
        self.notifies.fetch_add(1, Ordering::Relaxed);
        self.published_cond.notify_all();
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            contended_acquisitions: self.contended_acquisitions.load(Ordering::Relaxed),
            cond_waits: self.cond_waits.load(Ordering::Relaxed),
            notifies: self.notifies.load(Ordering::Relaxed),
        }
    }
}

/// The centralized version manager, sharded by blob id.
pub struct VersionManager {
    shards: Box<[Shard]>,
    next_blob_id: AtomicU64,
    /// Monotonic counters for instrumentation.
    reservations: AtomicU64,
    commits: AtomicU64,
}

impl Default for VersionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionManager {
    /// Create an empty version manager with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create an empty version manager with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        VersionManager {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            next_blob_id: AtomicU64::new(0),
            reservations: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, blob: BlobId) -> &Shard {
        // Blob ids are dense (a monotone counter), so modulo spreads them
        // uniformly without hashing.
        &self.shards[(blob.0 as usize) % self.shards.len()]
    }

    /// Create a new blob and return its id. The blob starts at version 0 with
    /// size 0.
    pub fn create_blob(&self) -> BlobId {
        let id = BlobId(self.next_blob_id.fetch_add(1, Ordering::Relaxed));
        self.shard_of(id).lock().insert(id, BlobState::new());
        id
    }

    /// Does the blob exist?
    pub fn blob_exists(&self, blob: BlobId) -> bool {
        self.shard_of(blob).lock().contains_key(&blob)
    }

    /// All blob ids currently known, sorted.
    pub fn blob_ids(&self) -> Vec<BlobId> {
        let mut ids: Vec<BlobId> = Vec::new();
        for shard in self.shards.iter() {
            ids.extend(shard.lock().keys().copied());
        }
        ids.sort();
        ids
    }

    /// Delete a blob entirely (BSFS uses this for file deletion). Outstanding
    /// tickets are invalidated, and any writer blocked in
    /// [`VersionManager::wait_for_predecessor`] on this blob is woken so its
    /// `UnknownBlob` re-check can fire instead of hanging forever.
    pub fn delete_blob(&self, blob: BlobId) -> BlobResult<()> {
        let shard = self.shard_of(blob);
        let removed = shard.lock().remove(&blob);
        match removed {
            Some(_) => {
                shard.notify_published();
                Ok(())
            }
            None => Err(BlobSeerError::UnknownBlob(blob)),
        }
    }

    /// Reserve a version (and offset, for appends) for an upcoming write.
    pub fn reserve(&self, blob: BlobId, intent: WriteIntent) -> BlobResult<WriteTicket> {
        let mut blobs = self.shard_of(blob).lock();
        let state = blobs
            .get_mut(&blob)
            .ok_or(BlobSeerError::UnknownBlob(blob))?;

        let (offset, len) = match intent {
            WriteIntent::WriteAt { offset, len } => (offset, len),
            WriteIntent::Append { len } => (state.reserved_size, len),
        };
        if len == 0 {
            return Err(BlobSeerError::InvalidArgument("zero-length write".into()));
        }
        // `checked_add`: a huge offset must be rejected here, before any
        // state changes, instead of wrapping in release builds (which would
        // reserve a bogus tiny size and crash the writer mid-build).
        let new_end = offset.checked_add(len).ok_or_else(|| {
            BlobSeerError::InvalidArgument(format!(
                "write range [{offset}, {offset} + {len}) overflows the blob address space"
            ))
        })?;

        let version = Version(state.next_version);
        state.next_version += 1;
        let prev_size = state.reserved_size;
        let new_size = state.reserved_size.max(new_end);
        state.reserved_size = new_size;

        let ticket = WriteTicket {
            blob,
            version,
            range: ByteRange::new(offset, len),
            new_size,
            prev_size,
        };
        state.outstanding.insert(version.0, ticket);
        self.reservations.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Wait until version `ticket.version - 1` of the blob is published, and
    /// return its descriptor. Writers call this before building their
    /// metadata tree so they can share subtrees with their predecessor.
    ///
    /// A writer running *on* the executor pool must not idle a worker here:
    /// the predecessor it waits for may have its own page pushes queued
    /// behind this very thread. On a pool worker the wait is a help-or-nap
    /// loop (`poll_wait`, lock dropped each pass); off the pool it stays a
    /// plain condvar wait.
    pub fn wait_for_predecessor(&self, ticket: &WriteTicket) -> BlobResult<VersionInfo> {
        let prev = ticket.version.0 - 1;
        let shard = self.shard_of(ticket.blob);
        loop {
            let mut blobs = shard.lock();
            let state = blobs
                .get(&ticket.blob)
                .ok_or(BlobSeerError::UnknownBlob(ticket.blob))?;
            if let Some((root, size)) = state.published.get(&prev) {
                return Ok(VersionInfo {
                    version: Version(prev),
                    root: *root,
                    size: *size,
                });
            }
            shard.cond_waits.fetch_add(1, Ordering::Relaxed);
            if miniexec::on_worker_thread() {
                drop(blobs);
                miniexec::poll_wait(std::time::Duration::from_micros(200));
            } else {
                shard.published_cond.wait(&mut blobs);
            }
        }
    }

    /// Publish a committed version: record its tree root and size, and make
    /// it (and any consecutive successors already committed) visible.
    pub fn commit(&self, ticket: &WriteTicket, root: Option<NodeKey>) -> BlobResult<VersionInfo> {
        let shard = self.shard_of(ticket.blob);
        let mut blobs = shard.lock();
        let state = blobs
            .get_mut(&ticket.blob)
            .ok_or(BlobSeerError::UnknownBlob(ticket.blob))?;
        if state.outstanding.remove(&ticket.version.0).is_none() {
            return Err(BlobSeerError::InvalidTicket {
                blob: ticket.blob,
                version: ticket.version,
            });
        }
        state
            .pending
            .insert(ticket.version.0, (root, ticket.new_size));
        // Aborted reservations below a committed version are dead: the
        // unwind in `reclaim_aborted` can never reach past this commit.
        let committed = ticket.version.0;
        state.aborted.retain(|&v, _| v > committed);
        state.advance();
        drop(blobs);
        self.commits.fetch_add(1, Ordering::Relaxed);
        shard.notify_published();
        Ok(VersionInfo {
            version: ticket.version,
            root,
            size: ticket.new_size,
        })
    }

    /// Abandon a reservation. The version still needs to exist so that later
    /// versions can publish; it becomes an alias of its predecessor (same
    /// root, same size). When the aborted ticket is the newest reservation
    /// (or completes a fully-aborted suffix of reservations), its size
    /// contribution is also reclaimed, so the next append lands at the end of
    /// the data that was actually written instead of leaving a phantom hole
    /// covered by the published blob size.
    pub fn abort(&self, ticket: &WriteTicket) -> BlobResult<()> {
        // Wait for the predecessor so we can alias it.
        let prev = self.wait_for_predecessor(ticket)?;
        let shard = self.shard_of(ticket.blob);
        let mut blobs = shard.lock();
        let state = blobs
            .get_mut(&ticket.blob)
            .ok_or(BlobSeerError::UnknownBlob(ticket.blob))?;
        if state.outstanding.remove(&ticket.version.0).is_none() {
            return Err(BlobSeerError::InvalidTicket {
                blob: ticket.blob,
                version: ticket.version,
            });
        }
        state
            .aborted
            .insert(ticket.version.0, (ticket.prev_size, ticket.new_size));
        state.reclaim_aborted();
        state
            .pending
            .insert(ticket.version.0, (prev.root, prev.size));
        state.advance();
        drop(blobs);
        shard.notify_published();
        Ok(())
    }

    /// Latest published version of a blob.
    pub fn latest(&self, blob: BlobId) -> BlobResult<VersionInfo> {
        let blobs = self.shard_of(blob).lock();
        let state = blobs.get(&blob).ok_or(BlobSeerError::UnknownBlob(blob))?;
        let v = state.published_up_to;
        let (root, size) = state.published[&v];
        Ok(VersionInfo {
            version: Version(v),
            root,
            size,
        })
    }

    /// Descriptor of a specific published version.
    pub fn get_version(&self, blob: BlobId, version: Version) -> BlobResult<VersionInfo> {
        let blobs = self.shard_of(blob).lock();
        let state = blobs.get(&blob).ok_or(BlobSeerError::UnknownBlob(blob))?;
        match state.published.get(&version.0) {
            Some((root, size)) if version.0 <= state.published_up_to => Ok(VersionInfo {
                version,
                root: *root,
                size: *size,
            }),
            _ => Err(BlobSeerError::UnknownVersion { blob, version }),
        }
    }

    /// All published versions of a blob, oldest first.
    pub fn published_versions(&self, blob: BlobId) -> BlobResult<Vec<VersionInfo>> {
        let blobs = self.shard_of(blob).lock();
        let state = blobs.get(&blob).ok_or(BlobSeerError::UnknownBlob(blob))?;
        Ok(state
            .published
            .iter()
            .filter(|(v, _)| **v <= state.published_up_to)
            .map(|(v, (root, size))| VersionInfo {
                version: Version(*v),
                root: *root,
                size: *size,
            })
            .collect())
    }

    /// Pin a published version: it survives [`VersionManager::retire_expired`]
    /// regardless of the retention policy (a long-lived snapshot a consumer
    /// still reads, e.g. the input version of a running MapReduce job).
    pub fn pin_version(&self, blob: BlobId, version: Version) -> BlobResult<()> {
        let mut blobs = self.shard_of(blob).lock();
        let state = blobs
            .get_mut(&blob)
            .ok_or(BlobSeerError::UnknownBlob(blob))?;
        if !state.published.contains_key(&version.0) || version.0 > state.published_up_to {
            return Err(BlobSeerError::UnknownVersion { blob, version });
        }
        state.pinned.insert(version.0);
        Ok(())
    }

    /// Drop a pin; returns whether the version was pinned. The version
    /// becomes eligible for retention again at the next GC cycle.
    pub fn unpin_version(&self, blob: BlobId, version: Version) -> BlobResult<bool> {
        let mut blobs = self.shard_of(blob).lock();
        let state = blobs
            .get_mut(&blob)
            .ok_or(BlobSeerError::UnknownBlob(blob))?;
        Ok(state.pinned.remove(&version.0))
    }

    /// Currently pinned versions of a blob, oldest first.
    pub fn pinned_versions(&self, blob: BlobId) -> BlobResult<Vec<Version>> {
        let blobs = self.shard_of(blob).lock();
        let state = blobs.get(&blob).ok_or(BlobSeerError::UnknownBlob(blob))?;
        Ok(state.pinned.iter().map(|&v| Version(v)).collect())
    }

    /// Apply the keep-last-`keep` retention policy to a blob: atomically
    /// remove every published version except the newest `keep`, the pinned
    /// ones, and anything not yet fully published. Retired versions become
    /// unreadable immediately ([`VersionManager::get_version`] reports
    /// `UnknownVersion`); their descriptors are returned so the caller can
    /// reclaim the metadata nodes and pages only they referenced.
    ///
    /// Retirement never touches a version an in-flight write could still
    /// alias or wait on: an outstanding ticket's predecessor is at least
    /// `published_up_to`, which the policy always keeps (`keep >= 1`).
    pub fn retire_expired(&self, blob: BlobId, keep: usize) -> BlobResult<Vec<VersionInfo>> {
        assert!(keep >= 1, "retention must keep at least one version");
        let mut blobs = self.shard_of(blob).lock();
        let state = blobs
            .get_mut(&blob)
            .ok_or(BlobSeerError::UnknownBlob(blob))?;
        let visible: Vec<u64> = state
            .published
            .keys()
            .copied()
            .filter(|&v| v <= state.published_up_to)
            .collect();
        if visible.len() <= keep {
            return Ok(Vec::new());
        }
        let cutoff = visible[visible.len() - keep];
        let mut retired = Vec::new();
        for v in visible {
            if v >= cutoff || state.pinned.contains(&v) {
                continue;
            }
            let (root, size) = state.published.remove(&v).expect("version was visible");
            retired.push(VersionInfo {
                version: Version(v),
                root,
                size,
            });
        }
        Ok(retired)
    }

    /// Number of reservations handed out (instrumentation).
    pub fn reservation_count(&self) -> u64 {
        self.reservations.load(Ordering::Relaxed)
    }

    /// Number of commits performed (instrumentation).
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Lock/condvar traffic summed over all shards.
    pub fn contention_stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for shard in self.shards.iter() {
            total.add(&shard.stats());
        }
        total
    }

    /// Lock/condvar traffic per shard, indexed by shard number.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn leaf_key(blob: BlobId, v: u64) -> NodeKey {
        NodeKey {
            blob,
            version: Version(v),
            offset: 0,
            span: 1,
        }
    }

    #[test]
    fn create_blob_starts_at_version_zero() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        assert!(vm.blob_exists(blob));
        let latest = vm.latest(blob).unwrap();
        assert_eq!(latest.version, Version::ZERO);
        assert_eq!(latest.size, 0);
        assert!(latest.root.is_none());
        assert_eq!(vm.blob_ids(), vec![blob]);
    }

    #[test]
    fn unknown_blob_errors() {
        let vm = VersionManager::new();
        let bogus = BlobId(77);
        assert!(matches!(
            vm.latest(bogus),
            Err(BlobSeerError::UnknownBlob(_))
        ));
        assert!(matches!(
            vm.reserve(bogus, WriteIntent::Append { len: 1 }),
            Err(BlobSeerError::UnknownBlob(_))
        ));
        assert!(matches!(
            vm.delete_blob(bogus),
            Err(BlobSeerError::UnknownBlob(_))
        ));
    }

    #[test]
    fn write_reserve_and_commit_publishes_in_order() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm
            .reserve(
                blob,
                WriteIntent::WriteAt {
                    offset: 0,
                    len: 100,
                },
            )
            .unwrap();
        assert_eq!(t1.version, Version(1));
        assert_eq!(t1.new_size, 100);
        let info = vm.commit(&t1, Some(leaf_key(blob, 1))).unwrap();
        assert_eq!(info.version, Version(1));
        assert_eq!(vm.latest(blob).unwrap().size, 100);
        assert_eq!(vm.commit_count(), 1);
        assert_eq!(vm.reservation_count(), 1);
    }

    #[test]
    fn appends_are_placed_back_to_back() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 50 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 30 }).unwrap();
        // The second append is placed after the first even though neither has
        // committed yet.
        assert_eq!(t1.range.offset, 0);
        assert_eq!(t2.range.offset, 50);
        assert_eq!(t2.new_size, 80);
    }

    #[test]
    fn out_of_order_commits_become_visible_in_order() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        // Commit v2 first: it must NOT become visible yet.
        vm.commit(&t2, Some(leaf_key(blob, 2))).unwrap();
        assert_eq!(vm.latest(blob).unwrap().version, Version::ZERO);
        assert!(vm.get_version(blob, Version(2)).is_err());
        // Now commit v1: both become visible, v2 is the latest.
        vm.commit(&t1, Some(leaf_key(blob, 1))).unwrap();
        let latest = vm.latest(blob).unwrap();
        assert_eq!(latest.version, Version(2));
        assert_eq!(latest.size, 20);
        assert!(vm.get_version(blob, Version(1)).is_ok());
    }

    #[test]
    fn double_commit_is_rejected() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        vm.commit(&t, None).unwrap();
        assert!(matches!(
            vm.commit(&t, None),
            Err(BlobSeerError::InvalidTicket { .. })
        ));
    }

    #[test]
    fn zero_length_write_is_rejected() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        assert!(matches!(
            vm.reserve(blob, WriteIntent::Append { len: 0 }),
            Err(BlobSeerError::InvalidArgument(_))
        ));
    }

    #[test]
    fn abort_aliases_the_predecessor() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let root1 = Some(leaf_key(blob, 1));
        vm.commit(&t1, root1).unwrap();
        vm.abort(&t2).unwrap();
        // Version 2 exists but is identical to version 1.
        let v2 = vm.get_version(blob, Version(2)).unwrap();
        assert_eq!(v2.root, root1);
        assert_eq!(v2.size, 10);
        assert_eq!(vm.latest(blob).unwrap().version, Version(2));
    }

    #[test]
    fn abort_of_newest_append_reclaims_the_reservation() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        vm.commit(&t1, Some(leaf_key(blob, 1))).unwrap();
        // Reserve an append, then abort it before writing anything.
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 100 }).unwrap();
        assert_eq!(t2.range.offset, 10);
        vm.abort(&t2).unwrap();
        // The next append must land where the aborted one would have started,
        // not after its phantom range.
        let t3 = vm.reserve(blob, WriteIntent::Append { len: 5 }).unwrap();
        assert_eq!(t3.range.offset, 10, "aborted reservation leaked its size");
        assert_eq!(t3.new_size, 15);
        vm.commit(&t3, Some(leaf_key(blob, 3))).unwrap();
        assert_eq!(vm.latest(blob).unwrap().size, 15);
    }

    #[test]
    fn chained_aborts_unwind_the_reservation_completely() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 8 }).unwrap();
        vm.commit(&t1, None).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 16 }).unwrap();
        let t3 = vm.reserve(blob, WriteIntent::Append { len: 32 }).unwrap();
        // Abort both (in version order — abort waits for the predecessor to
        // publish): once the newest goes, the whole aborted suffix unwinds.
        vm.abort(&t2).unwrap();
        vm.abort(&t3).unwrap();
        let t4 = vm.reserve(blob, WriteIntent::Append { len: 4 }).unwrap();
        assert_eq!(t4.range.offset, 8);
        assert_eq!(t4.new_size, 12);
    }

    #[test]
    fn abort_in_the_middle_keeps_later_reservations_intact() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 8 }).unwrap();
        vm.commit(&t1, None).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 16 }).unwrap();
        let t3 = vm.reserve(blob, WriteIntent::Append { len: 32 }).unwrap();
        // t2 is not the newest reservation: its range cannot be reclaimed
        // (t3 was already placed after it).
        vm.abort(&t2).unwrap();
        vm.commit(&t3, None).unwrap();
        assert_eq!(vm.latest(blob).unwrap().size, 8 + 16 + 32);
    }

    #[test]
    fn published_versions_lists_full_history() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        for i in 0..5 {
            let t = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
            vm.commit(&t, Some(leaf_key(blob, i + 1))).unwrap();
        }
        let versions = vm.published_versions(blob).unwrap();
        assert_eq!(versions.len(), 6); // v0 .. v5
        assert_eq!(versions[0].version, Version::ZERO);
        assert_eq!(versions[5].size, 50);
    }

    #[test]
    fn wait_for_predecessor_blocks_until_commit() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();

        let vm2 = Arc::clone(&vm);
        let waiter = std::thread::spawn(move || {
            // This blocks until t1 commits.
            let prev = vm2.wait_for_predecessor(&t2).unwrap();
            assert_eq!(prev.version, Version(1));
            assert_eq!(prev.size, 10);
        });
        // Give the waiter a moment to block, then commit v1.
        std::thread::sleep(std::time::Duration::from_millis(50));
        vm.commit(&t1, Some(leaf_key(blob, 1))).unwrap();
        waiter.join().unwrap();
    }

    #[test]
    fn delete_wakes_a_blocked_predecessor_waiter() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob();
        let _t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();

        let vm2 = Arc::clone(&vm);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            // v1 never commits; the blob is deleted instead. Pre-fix this
            // waiter hung forever because delete_blob never notified.
            tx.send(vm2.wait_for_predecessor(&t2)).ok();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        vm.delete_blob(blob).unwrap();
        let result = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("waiter must be woken by delete_blob, not hang");
        assert!(matches!(result, Err(BlobSeerError::UnknownBlob(_))));
    }

    #[test]
    fn concurrent_appends_from_many_threads_serialize_correctly() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let vm = Arc::clone(&vm);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let t = vm.reserve(blob, WriteIntent::Append { len: 4 }).unwrap();
                        // Simulate data transfer latency out of order.
                        std::thread::yield_now();
                        vm.commit(&t, None).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let latest = vm.latest(blob).unwrap();
        assert_eq!(latest.version, Version(8 * 25));
        assert_eq!(latest.size, 8 * 25 * 4);
        // Every intermediate version is published and has a monotone size.
        let versions = vm.published_versions(blob).unwrap();
        assert_eq!(versions.len(), 8 * 25 + 1);
        for pair in versions.windows(2) {
            assert!(pair[1].size >= pair[0].size);
        }
    }

    #[test]
    fn delete_blob_removes_state() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        vm.delete_blob(blob).unwrap();
        assert!(!vm.blob_exists(blob));
        assert!(vm.latest(blob).is_err());
    }

    #[test]
    fn blobs_spread_over_shards() {
        let vm = VersionManager::with_shards(4);
        assert_eq!(vm.shard_count(), 4);
        let blobs: Vec<BlobId> = (0..16).map(|_| vm.create_blob()).collect();
        assert_eq!(vm.blob_ids(), blobs);
        for blob in &blobs {
            let t = vm.reserve(*blob, WriteIntent::Append { len: 1 }).unwrap();
            vm.commit(&t, None).unwrap();
        }
        // Every shard saw traffic: 16 sequential blob ids over 4 shards.
        let per_shard = vm.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(per_shard.iter().all(|s| s.lock_acquisitions > 0));
        let total = vm.contention_stats();
        assert_eq!(
            total.lock_acquisitions,
            per_shard.iter().map(|s| s.lock_acquisitions).sum::<u64>()
        );
        // 16 commits notified their shards.
        assert_eq!(total.notifies, 16);
    }

    #[test]
    fn single_shard_manager_still_works() {
        let vm = VersionManager::with_shards(1);
        let a = vm.create_blob();
        let b = vm.create_blob();
        let ta = vm.reserve(a, WriteIntent::Append { len: 3 }).unwrap();
        let tb = vm.reserve(b, WriteIntent::Append { len: 5 }).unwrap();
        vm.commit(&tb, None).unwrap();
        vm.commit(&ta, None).unwrap();
        assert_eq!(vm.latest(a).unwrap().size, 3);
        assert_eq!(vm.latest(b).unwrap().size, 5);
    }

    #[test]
    fn cond_waits_are_counted() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 1 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 1 }).unwrap();
        let vm2 = Arc::clone(&vm);
        let waiter = std::thread::spawn(move || vm2.wait_for_predecessor(&t2).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(50));
        vm.commit(&t1, None).unwrap();
        waiter.join().unwrap();
        assert!(vm.contention_stats().cond_waits >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = VersionManager::with_shards(0);
    }

    #[test]
    fn retention_retires_old_versions_but_keeps_pinned_and_newest() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        for i in 0..6 {
            let t = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
            vm.commit(&t, Some(leaf_key(blob, i + 1))).unwrap();
        }
        vm.pin_version(blob, Version(2)).unwrap();
        assert_eq!(vm.pinned_versions(blob).unwrap(), vec![Version(2)]);

        // Visible history is v0..v6; keep the newest 2 plus the pin.
        let retired = vm.retire_expired(blob, 2).unwrap();
        let retired_vs: Vec<u64> = retired.iter().map(|i| i.version.0).collect();
        assert_eq!(retired_vs, vec![0, 1, 3, 4]);
        assert!(vm.get_version(blob, Version(1)).is_err());
        assert!(vm.get_version(blob, Version(2)).is_ok());
        assert!(vm.get_version(blob, Version(5)).is_ok());
        assert_eq!(vm.latest(blob).unwrap().version, Version(6));
        assert_eq!(vm.published_versions(blob).unwrap().len(), 3);

        // Retention is idempotent until history grows again.
        assert!(vm.retire_expired(blob, 2).unwrap().is_empty());

        // Dropping the pin frees the version at the next cycle.
        assert!(vm.unpin_version(blob, Version(2)).unwrap());
        let retired2 = vm.retire_expired(blob, 2).unwrap();
        assert_eq!(retired2.len(), 1);
        assert_eq!(retired2[0].version, Version(2));
        assert_eq!(retired2[0].root, Some(leaf_key(blob, 2)));
    }

    #[test]
    fn retention_never_touches_unpublished_versions() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        let t1 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        let t2 = vm.reserve(blob, WriteIntent::Append { len: 10 }).unwrap();
        // v2 committed out of order: it is pending, not visible, and must not
        // be counted by (or retired through) the retention policy.
        vm.commit(&t2, Some(leaf_key(blob, 2))).unwrap();
        assert!(vm.retire_expired(blob, 1).unwrap().is_empty());
        vm.commit(&t1, Some(leaf_key(blob, 1))).unwrap();
        let retired = vm.retire_expired(blob, 1).unwrap();
        let retired_vs: Vec<u64> = retired.iter().map(|i| i.version.0).collect();
        assert_eq!(retired_vs, vec![0, 1]);
        assert_eq!(vm.latest(blob).unwrap().version, Version(2));
    }

    #[test]
    fn pinning_an_unpublished_version_is_rejected() {
        let vm = VersionManager::new();
        let blob = vm.create_blob();
        assert!(matches!(
            vm.pin_version(blob, Version(3)),
            Err(BlobSeerError::UnknownVersion { .. })
        ));
        assert!(!vm.unpin_version(blob, Version(3)).unwrap());
    }
}
