//! A1 — ablation: how much of BSFS's advantage comes from the provider
//! manager's load-balanced placement? The write microbenchmark is replayed
//! with the three placement strategies the provider manager supports.

use blobseer::PlacementStrategy;
use workloads::simscale::{sim_write_with_strategy, SimScaleConfig};

fn main() {
    println!("== A1: placement-strategy ablation (write pattern, paper scale) ==");
    println!();
    println!(
        "{:<16} {:>8} {:>22} {:>22}",
        "strategy", "clients", "aggregate MiB/s", "per-client MiB/s"
    );
    for &clients in &[50usize, 150, 250] {
        let config = SimScaleConfig::paper(clients);
        for (label, strategy) in [
            ("load-balanced", PlacementStrategy::LoadBalanced),
            ("random", PlacementStrategy::Random),
            ("local-first", PlacementStrategy::LocalFirst),
        ] {
            let report = sim_write_with_strategy(strategy, &config);
            println!(
                "{:<16} {:>8} {:>22.1} {:>22.1}",
                label,
                clients,
                report.aggregate_throughput() / (1024.0 * 1024.0),
                report.mean_client_throughput() / (1024.0 * 1024.0)
            );
        }
    }
}
