//! Workspace smoke test: the paper's core claim in miniature.
//!
//! Runs one tiny end-to-end distributed-grep job through the `DistFs`
//! abstraction of `mapreduce::fs` on both storage backends — BSFS (BlobSeer
//! underneath) and the HDFS baseline — and asserts that the unchanged
//! MapReduce framework produces byte-identical output on both. This is the
//! minimal check that the whole workspace is wired: every crate in the
//! dependency DAG (simcluster → dht/kvstore → blobseer/hdfs → bsfs →
//! mapreduce → workloads) participates in this one job.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use simcluster::ClusterTopology;
use workloads::distributed_grep_job;

const BLOCK: u64 = 4 * 1024;

fn tiny_corpus() -> String {
    let mut text = String::new();
    for i in 0..200 {
        if i % 7 == 0 {
            text.push_str("blobseer keeps versioned data under mapreduce\n");
        } else {
            text.push_str("padding line without the interesting token\n");
        }
    }
    text
}

fn grep_through(fs: &dyn DistFs, topo: &ClusterTopology, corpus: &str) -> (String, u64) {
    fs.write_file("/smoke/input.txt", corpus.as_bytes())
        .unwrap();
    let job = distributed_grep_job(
        vec!["/smoke/input.txt".into()],
        "/smoke/out",
        "blobseer",
        BLOCK,
    );
    let result = JobTracker::new(topo).run(fs, &job).unwrap();
    let mut lines = Vec::new();
    for file in &result.output_files {
        let content = fs.read_file(file).unwrap();
        lines.extend(
            String::from_utf8_lossy(&content)
                .lines()
                .map(str::to_string),
        );
    }
    lines.sort();
    (lines.join("\n"), result.input_records)
}

#[test]
fn bsfs_and_hdfs_grep_outputs_are_identical() {
    let topo = ClusterTopology::flat(4);
    let nodes: Vec<_> = topo.all_nodes().collect();
    let corpus = tiny_corpus();

    let bsfs = BsfsFs::new(Bsfs::new(
        BlobSeer::with_topology(
            BlobSeerConfig::default()
                .with_providers(nodes.len())
                .with_page_size(BLOCK),
            &topo,
            &nodes,
        ),
        BsfsConfig::default().with_block_size(BLOCK),
    ));
    let hdfs = HdfsFs::new(Hdfs::with_topology(
        HdfsConfig {
            chunk_size: BLOCK,
            datanodes: nodes.len(),
            replication: 2,
            seed: 1,
        },
        &topo,
        &nodes,
    ));

    let (bsfs_out, bsfs_records) = grep_through(&bsfs as &dyn DistFs, &topo, &corpus);
    let (hdfs_out, hdfs_records) = grep_through(&hdfs as &dyn DistFs, &topo, &corpus);

    // Both backends saw the same input and must emit the same grep counts.
    assert_eq!(bsfs_records, hdfs_records);
    assert_eq!(bsfs_out, hdfs_out);
    // The token appears on every 7th of 200 lines: ceil(200/7) = 29 matches.
    assert_eq!(bsfs_out, "blobseer\t29");
}
