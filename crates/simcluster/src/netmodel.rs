//! Network cost model: links, capacities, latencies and path computation.
//!
//! The model is deliberately simple but captures the effects that matter for
//! the paper's experiments:
//!
//! * every node has a NIC with separate uplink (egress) and downlink (ingress)
//!   capacity — a storage node serving many concurrent readers saturates its
//!   *uplink*, which is exactly the bottleneck the BlobSeer load-balancing
//!   placement avoids and the HDFS local-first placement runs into;
//! * every rack has a top-of-rack switch whose uplink to the site aggregation
//!   layer is shared by all nodes in the rack (over-subscription);
//! * sites are connected by a backbone link pair (in/out), much slower per
//!   byte than the local network — crossing sites is expensive, as on
//!   Grid'5000.
//!
//! A transfer between two nodes uses the sequence of [`LinkId`]s returned by
//! [`NetworkModel::path`]; the flow simulator then shares each link's capacity
//! between all flows traversing it (max-min fairness, progressive filling).

use crate::time::SimDuration;
use crate::topology::{ClusterTopology, NodeId, Proximity};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a directed link in the modelled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkId {
    /// Egress NIC of a node (node -> top-of-rack switch).
    NodeUp(u32),
    /// Ingress NIC of a node (top-of-rack switch -> node).
    NodeDown(u32),
    /// Rack uplink (top-of-rack switch -> site aggregation).
    RackUp(u32),
    /// Rack downlink (site aggregation -> top-of-rack switch).
    RackDown(u32),
    /// Site egress to the backbone.
    SiteUp(u32),
    /// Site ingress from the backbone.
    SiteDown(u32),
    /// The loopback / memory path inside a single node. Modelled with a very
    /// high capacity so that local transfers are effectively free compared to
    /// network transfers, but still take non-zero time.
    Loopback(u32),
    /// The storage device of a node. Flows that persist data on (or read
    /// durable data from) a storage server traverse this link in addition to
    /// the network path, so a node's disk becomes a shared bottleneck when
    /// many chunks land on it — the effect behind HDFS's local-first write
    /// penalty in the paper's §IV-B comparison.
    Disk(u32),
}

/// Bandwidth/latency parameters of the modelled hardware.
///
/// All bandwidths are bytes per second; latency is the fixed per-transfer
/// setup cost along the path (one latency per proximity class, not per hop,
/// which is enough for the coarse-grained transfers of MapReduce workloads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Node NIC bandwidth (each direction), bytes/s.
    pub nic_bw: f64,
    /// Rack uplink/downlink bandwidth, bytes/s.
    pub rack_uplink_bw: f64,
    /// Site backbone bandwidth (each direction), bytes/s.
    pub backbone_bw: f64,
    /// Intra-node (loopback/memory) bandwidth, bytes/s.
    pub loopback_bw: f64,
    /// Disk bandwidth of a storage node, bytes/s. Applied as an additional
    /// per-endpoint cost term by higher layers when persistence is enabled.
    pub disk_bw: f64,
    /// Latency for a transfer that stays within one node.
    pub local_latency: SimDuration,
    /// Latency for a transfer within one rack.
    pub rack_latency: SimDuration,
    /// Latency for a transfer within one site.
    pub site_latency: SimDuration,
    /// Latency for a transfer crossing sites.
    pub wan_latency: SimDuration,
}

impl NetworkModel {
    /// Parameters resembling the Grid'5000 clusters used in the paper's era:
    /// GbE NICs (~117 MiB/s usable) behind effectively non-blocking cluster
    /// switching (the large per-site switches of the time), a 10 Gb/s
    /// inter-site interconnect, fast local memory path and ~60 MB/s commodity
    /// disks.
    pub fn grid5000_like() -> Self {
        NetworkModel {
            nic_bw: 117.0 * 1024.0 * 1024.0,
            rack_uplink_bw: 2400.0 * 1024.0 * 1024.0,
            backbone_bw: 1170.0 * 1024.0 * 1024.0,
            loopback_bw: 4.0 * 1024.0 * 1024.0 * 1024.0,
            disk_bw: 60.0 * 1024.0 * 1024.0,
            local_latency: SimDuration::from_micros(20),
            rack_latency: SimDuration::from_micros(120),
            site_latency: SimDuration::from_micros(300),
            wan_latency: SimDuration::from_millis(10),
        }
    }

    /// A uniform model where every path has the same bandwidth and latency.
    /// Useful in unit tests where topology effects would be noise.
    pub fn uniform(bw: f64, latency: SimDuration) -> Self {
        NetworkModel {
            nic_bw: bw,
            rack_uplink_bw: bw * 1e3,
            backbone_bw: bw * 1e3,
            loopback_bw: bw,
            disk_bw: bw,
            local_latency: latency,
            rack_latency: latency,
            site_latency: latency,
            wan_latency: latency,
        }
    }

    /// Capacity of a link in bytes/s.
    pub fn capacity(&self, link: LinkId) -> f64 {
        match link {
            LinkId::NodeUp(_) | LinkId::NodeDown(_) => self.nic_bw,
            LinkId::RackUp(_) | LinkId::RackDown(_) => self.rack_uplink_bw,
            LinkId::SiteUp(_) | LinkId::SiteDown(_) => self.backbone_bw,
            LinkId::Loopback(_) => self.loopback_bw,
            LinkId::Disk(_) => self.disk_bw,
        }
    }

    /// Fixed latency for a transfer between two nodes of the given proximity.
    pub fn latency(&self, prox: Proximity) -> SimDuration {
        match prox {
            Proximity::SameNode => self.local_latency,
            Proximity::SameRack => self.rack_latency,
            Proximity::SameSite => self.site_latency,
            Proximity::Remote => self.wan_latency,
        }
    }

    /// The narrowest capacity along a path — the bandwidth a single
    /// uncontended flow over those links can sustain. Empty paths are
    /// unconstrained (infinite capacity).
    pub fn path_capacity(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|l| self.capacity(*l))
            .fold(f64::INFINITY, f64::min)
    }

    /// The ordered list of links a transfer from `src` to `dst` traverses.
    pub fn path(&self, topo: &ClusterTopology, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        match topo.proximity(src, dst) {
            Proximity::SameNode => vec![LinkId::Loopback(src.0)],
            Proximity::SameRack => vec![LinkId::NodeUp(src.0), LinkId::NodeDown(dst.0)],
            Proximity::SameSite => vec![
                LinkId::NodeUp(src.0),
                LinkId::RackUp(topo.rack_of(src).0),
                LinkId::RackDown(topo.rack_of(dst).0),
                LinkId::NodeDown(dst.0),
            ],
            Proximity::Remote => vec![
                LinkId::NodeUp(src.0),
                LinkId::RackUp(topo.rack_of(src).0),
                LinkId::SiteUp(topo.site_of(src).0),
                LinkId::SiteDown(topo.site_of(dst).0),
                LinkId::RackDown(topo.rack_of(dst).0),
                LinkId::NodeDown(dst.0),
            ],
        }
    }

    /// Lower bound on the time to move `bytes` between two nodes with *no*
    /// competing traffic: path bottleneck bandwidth plus the proximity
    /// latency. The flow simulator produces larger values under contention.
    pub fn isolated_transfer_time(
        &self,
        topo: &ClusterTopology,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> SimDuration {
        let bottleneck = self.path_capacity(&self.path(topo, src, dst));
        self.latency(topo.proximity(src, dst)) + crate::time::transfer_time(bytes, bottleneck)
    }
}

/// A mutable view of per-link utilisation, used by schedulers that want to
/// estimate load (for example when choosing the least-loaded provider).
#[derive(Debug, Default, Clone)]
pub struct LinkLoadTracker {
    active_flows: HashMap<LinkId, usize>,
}

impl LinkLoadTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a flow now traverses each link of `path`.
    pub fn add_path(&mut self, path: &[LinkId]) {
        for l in path {
            *self.active_flows.entry(*l).or_insert(0) += 1;
        }
    }

    /// Record that a flow finished on each link of `path`.
    pub fn remove_path(&mut self, path: &[LinkId]) {
        for l in path {
            if let Some(c) = self.active_flows.get_mut(l) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.active_flows.remove(l);
                }
            }
        }
    }

    /// Number of flows currently traversing `link`.
    pub fn flows_on(&self, link: LinkId) -> usize {
        self.active_flows.get(&link).copied().unwrap_or(0)
    }

    /// The maximum flow count along a path — a cheap congestion estimate.
    pub fn max_flows_on_path(&self, path: &[LinkId]) -> usize {
        path.iter().map(|l| self.flows_on(*l)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterTopology;

    fn two_site_topo() -> ClusterTopology {
        ClusterTopology::builder()
            .sites(2)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build()
    }

    #[test]
    fn path_lengths_grow_with_distance() {
        let t = two_site_topo();
        let m = NetworkModel::grid5000_like();
        assert_eq!(m.path(&t, t.node(0), t.node(0)).len(), 1);
        assert_eq!(m.path(&t, t.node(0), t.node(1)).len(), 2);
        assert_eq!(m.path(&t, t.node(0), t.node(2)).len(), 4);
        assert_eq!(m.path(&t, t.node(0), t.node(4)).len(), 6);
    }

    #[test]
    fn isolated_transfer_time_ordering() {
        let t = two_site_topo();
        let m = NetworkModel::grid5000_like();
        let bytes = 64 << 20;
        let local = m.isolated_transfer_time(&t, t.node(0), t.node(0), bytes);
        let rack = m.isolated_transfer_time(&t, t.node(0), t.node(1), bytes);
        let site = m.isolated_transfer_time(&t, t.node(0), t.node(2), bytes);
        let wan = m.isolated_transfer_time(&t, t.node(0), t.node(4), bytes);
        assert!(local < rack, "local {local} should beat same-rack {rack}");
        assert!(rack <= site);
        assert!(site < wan, "same-site {site} should beat cross-site {wan}");
    }

    #[test]
    fn capacity_lookup_matches_parameters() {
        let m = NetworkModel::grid5000_like();
        assert_eq!(m.capacity(LinkId::NodeUp(3)), m.nic_bw);
        assert_eq!(m.capacity(LinkId::RackDown(1)), m.rack_uplink_bw);
        assert_eq!(m.capacity(LinkId::SiteUp(0)), m.backbone_bw);
        assert_eq!(m.capacity(LinkId::Loopback(9)), m.loopback_bw);
    }

    #[test]
    fn path_capacity_is_the_bottleneck() {
        let t = two_site_topo();
        let m = NetworkModel::grid5000_like();
        let wan = m.path(&t, t.node(0), t.node(4));
        // NICs are the narrowest hop of the grid5000-like model.
        assert_eq!(m.path_capacity(&wan), m.nic_bw);
        assert_eq!(m.path_capacity(&[LinkId::SiteUp(0)]), m.backbone_bw);
        assert_eq!(m.path_capacity(&[]), f64::INFINITY);
    }

    #[test]
    fn uniform_model_is_flat() {
        let t = two_site_topo();
        let m = NetworkModel::uniform(1e8, SimDuration::ZERO);
        let a = m.isolated_transfer_time(&t, t.node(0), t.node(1), 1 << 20);
        let b = m.isolated_transfer_time(&t, t.node(0), t.node(4), 1 << 20);
        // Bottleneck is the NIC in both cases; latency identical.
        assert_eq!(a, b);
    }

    #[test]
    fn load_tracker_counts_flows() {
        let t = two_site_topo();
        let m = NetworkModel::grid5000_like();
        let p1 = m.path(&t, t.node(0), t.node(2));
        let p2 = m.path(&t, t.node(1), t.node(2));
        let mut tracker = LinkLoadTracker::new();
        tracker.add_path(&p1);
        tracker.add_path(&p2);
        // Both flows end at node 2, so its downlink carries 2 flows.
        assert_eq!(tracker.flows_on(LinkId::NodeDown(2)), 2);
        assert_eq!(tracker.max_flows_on_path(&p1), 2);
        tracker.remove_path(&p1);
        assert_eq!(tracker.flows_on(LinkId::NodeDown(2)), 1);
        tracker.remove_path(&p2);
        assert_eq!(tracker.flows_on(LinkId::NodeDown(2)), 0);
        // Removing again is harmless.
        tracker.remove_path(&p2);
        assert_eq!(tracker.max_flows_on_path(&p2), 0);
    }
}
