//! Versioned, DHT-backed metadata: the distributed segment tree.
//!
//! BlobSeer keeps "the information concerning the location of the pages for
//! each blob version [...] in a Distributed HashTable, managed by several
//! metadata providers" (paper §III-A). The data structure stored in that DHT
//! is a *segment tree per blob version*, organised so that consecutive
//! versions share the subtrees they have in common — writing a range creates
//! only the leaves for the written pages plus the inner nodes on the paths
//! from those leaves to the new root (path copying, as in any persistent
//! balanced structure). Old versions therefore remain readable forever at no
//! extra space cost beyond the nodes that actually changed.
//!
//! * [`NodeKey`] names a tree node: `(blob, version-created, offset, span)` in
//!   page units. The key doubles as the DHT key.
//! * [`TreeNode`] is the stored payload: an inner node holding the keys of its
//!   two children (either may be absent, representing a hole of zeroes), or a
//!   leaf holding the replica providers of one page.
//! * [`store::MetadataStore`] is the thin typed wrapper around the DHT.
//! * [`segment_tree`] holds the build (write path) and lookup (read path)
//!   algorithms.

pub mod cache;
pub mod segment_tree;
pub mod store;

use crate::types::{BlobId, ProviderId, Version};

/// Identity of one segment-tree node. Also its DHT key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeKey {
    /// Blob the node belongs to.
    pub blob: BlobId,
    /// Version that *created* this node (shared subtrees keep the version of
    /// the write that created them).
    pub version: Version,
    /// First page covered by the node.
    pub offset: u64,
    /// Number of pages covered (a power of two; 1 for leaves).
    pub span: u64,
}

impl NodeKey {
    /// Render the DHT key for this node.
    pub fn dht_key(&self) -> Vec<u8> {
        format!(
            "meta/{}/{}/{}/{}",
            self.blob.0, self.version.0, self.offset, self.span
        )
        .into_bytes()
    }
}

/// Payload of a segment-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// An inner node covering `span` pages, split into two halves. A `None`
    /// child means that half has never been written (reads return zeroes).
    Inner {
        left: Option<NodeKey>,
        right: Option<NodeKey>,
    },
    /// A leaf describing one page: the providers holding its replicas, in
    /// preference order. An empty provider list also denotes a hole.
    Leaf {
        page: u64,
        providers: Vec<ProviderId>,
    },
}

impl TreeNode {
    /// Serialize to a compact binary representation for the DHT.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(80);
        match self {
            TreeNode::Inner { left, right } => {
                out.push(0u8);
                encode_opt_key(&mut out, left);
                encode_opt_key(&mut out, right);
            }
            TreeNode::Leaf { page, providers } => {
                out.push(1u8);
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&(providers.len() as u32).to_le_bytes());
                for p in providers {
                    out.extend_from_slice(&p.0.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode a node previously produced by [`TreeNode::encode`]. Returns
    /// `None` when the bytes are malformed.
    pub fn decode(data: &[u8]) -> Option<TreeNode> {
        let (&tag, rest) = data.split_first()?;
        match tag {
            0 => {
                let (left, rest) = decode_opt_key(rest)?;
                let (right, rest) = decode_opt_key(rest)?;
                if !rest.is_empty() {
                    return None;
                }
                Some(TreeNode::Inner { left, right })
            }
            1 => {
                if rest.len() < 12 {
                    return None;
                }
                let page = u64::from_le_bytes(rest[0..8].try_into().ok()?);
                let count = u32::from_le_bytes(rest[8..12].try_into().ok()?) as usize;
                let rest = &rest[12..];
                if rest.len() != count * 4 {
                    return None;
                }
                let providers = rest
                    .chunks_exact(4)
                    .map(|c| ProviderId(u32::from_le_bytes(c.try_into().unwrap())))
                    .collect();
                Some(TreeNode::Leaf { page, providers })
            }
            _ => None,
        }
    }
}

fn encode_opt_key(out: &mut Vec<u8>, key: &Option<NodeKey>) {
    match key {
        Some(k) => {
            out.push(1u8);
            out.extend_from_slice(&k.blob.0.to_le_bytes());
            out.extend_from_slice(&k.version.0.to_le_bytes());
            out.extend_from_slice(&k.offset.to_le_bytes());
            out.extend_from_slice(&k.span.to_le_bytes());
        }
        None => out.push(0u8),
    }
}

fn decode_opt_key(data: &[u8]) -> Option<(Option<NodeKey>, &[u8])> {
    let (&tag, rest) = data.split_first()?;
    match tag {
        0 => Some((None, rest)),
        1 => {
            if rest.len() < 32 {
                return None;
            }
            let blob = BlobId(u64::from_le_bytes(rest[0..8].try_into().ok()?));
            let version = Version(u64::from_le_bytes(rest[8..16].try_into().ok()?));
            let offset = u64::from_le_bytes(rest[16..24].try_into().ok()?);
            let span = u64::from_le_bytes(rest[24..32].try_into().ok()?);
            Some((
                Some(NodeKey {
                    blob,
                    version,
                    offset,
                    span,
                }),
                &rest[32..],
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64, o: u64, s: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(7),
            version: Version(v),
            offset: o,
            span: s,
        }
    }

    #[test]
    fn dht_key_is_unique() {
        assert_ne!(key(1, 0, 4).dht_key(), key(1, 0, 2).dht_key());
        assert_ne!(key(1, 0, 4).dht_key(), key(2, 0, 4).dht_key());
        assert_eq!(
            String::from_utf8(key(3, 8, 4).dht_key()).unwrap(),
            "meta/7/3/8/4"
        );
    }

    #[test]
    fn inner_node_roundtrip() {
        let cases = vec![
            TreeNode::Inner {
                left: Some(key(1, 0, 2)),
                right: Some(key(2, 2, 2)),
            },
            TreeNode::Inner {
                left: None,
                right: Some(key(5, 4, 4)),
            },
            TreeNode::Inner {
                left: Some(key(9, 0, 1)),
                right: None,
            },
            TreeNode::Inner {
                left: None,
                right: None,
            },
        ];
        for node in cases {
            let decoded = TreeNode::decode(&node.encode()).unwrap();
            assert_eq!(decoded, node);
        }
    }

    #[test]
    fn leaf_node_roundtrip() {
        let cases = vec![
            TreeNode::Leaf {
                page: 0,
                providers: vec![],
            },
            TreeNode::Leaf {
                page: 42,
                providers: vec![ProviderId(3)],
            },
            TreeNode::Leaf {
                page: 7,
                providers: vec![ProviderId(0), ProviderId(5), ProviderId(9)],
            },
        ];
        for node in cases {
            let decoded = TreeNode::decode(&node.encode()).unwrap();
            assert_eq!(decoded, node);
        }
    }

    #[test]
    fn malformed_data_is_rejected() {
        assert!(TreeNode::decode(&[]).is_none());
        assert!(TreeNode::decode(&[9]).is_none());
        assert!(TreeNode::decode(&[1, 0, 0]).is_none());
        // Truncated inner node.
        let good = TreeNode::Inner {
            left: Some(key(1, 0, 2)),
            right: None,
        }
        .encode();
        assert!(TreeNode::decode(&good[..good.len() - 1]).is_none());
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert!(TreeNode::decode(&padded).is_none());
        // Leaf with inconsistent provider count.
        let mut leaf = TreeNode::Leaf {
            page: 1,
            providers: vec![ProviderId(1)],
        }
        .encode();
        leaf.truncate(leaf.len() - 2);
        assert!(TreeNode::decode(&leaf).is_none());
    }
}
