//! Client-side caching: prefetch-on-read and write-back-on-full-block.
//!
//! "We also implemented a caching mechanism for read/write operations, as
//! MapReduce applications usually process data in small records (4KB, whereas
//! Hadoop is concerned). This mechanism prefetches a whole block when the
//! requested data is not already cached, and delays committing writes until a
//! whole block has been filled in the cache." (paper §III-B)
//!
//! Two small, single-owner helpers implement exactly that:
//!
//! * [`ReadCache`] — holds up to `capacity` most-recently-used whole blocks;
//!   a miss triggers a whole-block fetch through the supplied loader.
//! * [`WriteBuffer`] — accumulates sequential writes and hands back a full
//!   block every time one fills up; the owner commits it as a single
//!   BlobSeer append.
//!
//! Both are deliberately *not* thread-safe: each MapReduce task owns its own
//! reader/writer, matching how the Hadoop client library behaves.

use bytes::Bytes;
use std::collections::VecDeque;

/// Statistics kept by [`ReadCache`] (exposed for the A2 cache ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served entirely from cached blocks.
    pub hits: u64,
    /// Requests that had to load at least one block.
    pub misses: u64,
    /// Whole blocks fetched from storage.
    pub blocks_loaded: u64,
    /// Bytes fetched from storage (block granularity).
    pub bytes_loaded: u64,
}

/// A most-recently-used cache of whole blocks of one file.
#[derive(Debug)]
pub struct ReadCache {
    block_size: u64,
    capacity: usize,
    /// (block index, block contents), most recently used last.
    blocks: VecDeque<(u64, Bytes)>,
    stats: CacheStats,
}

impl ReadCache {
    /// Create a cache holding up to `capacity` blocks of `block_size` bytes.
    pub fn new(block_size: u64, capacity: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        assert!(capacity > 0, "cache capacity must be at least one block");
        ReadCache {
            block_size,
            capacity,
            blocks: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Read `len` bytes at `offset` of a file of `file_size` bytes, loading
    /// whole blocks through `load` on misses. `load(block_index, block_len)`
    /// must return exactly `block_len` bytes.
    pub fn read<E>(
        &mut self,
        offset: u64,
        len: u64,
        file_size: u64,
        mut load: impl FnMut(u64, u64) -> Result<Bytes, E>,
    ) -> Result<Bytes, E> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        debug_assert!(offset + len <= file_size, "caller enforces bounds");
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        let mut any_miss = false;
        while pos < end {
            let block = pos / self.block_size;
            let block_start = block * self.block_size;
            let block_len = (file_size - block_start).min(self.block_size);
            let data = match self.lookup(block) {
                Some(b) => b,
                None => {
                    any_miss = true;
                    let loaded = load(block, block_len)?;
                    debug_assert_eq!(loaded.len() as u64, block_len);
                    self.stats.blocks_loaded += 1;
                    self.stats.bytes_loaded += loaded.len() as u64;
                    self.insert(block, loaded.clone());
                    loaded
                }
            };
            let from = (pos - block_start) as usize;
            let to = ((end.min(block_start + block_len)) - block_start) as usize;
            out.extend_from_slice(&data[from..to]);
            pos = block_start + to as u64;
        }
        if any_miss {
            self.stats.misses += 1;
        } else {
            self.stats.hits += 1;
        }
        Ok(Bytes::from(out))
    }

    fn lookup(&mut self, block: u64) -> Option<Bytes> {
        if let Some(idx) = self.blocks.iter().position(|(b, _)| *b == block) {
            // Move to the back (most recently used).
            let entry = self.blocks.remove(idx).expect("index valid");
            let data = entry.1.clone();
            self.blocks.push_back(entry);
            Some(data)
        } else {
            None
        }
    }

    fn insert(&mut self, block: u64, data: Bytes) {
        if self.blocks.len() == self.capacity {
            self.blocks.pop_front();
        }
        self.blocks.push_back((block, data));
    }

    /// Drop all cached blocks (e.g. after the file grew).
    pub fn invalidate(&mut self) {
        self.blocks.clear();
    }
}

/// A write-back buffer that releases full blocks.
#[derive(Debug)]
pub struct WriteBuffer {
    block_size: usize,
    buffer: Vec<u8>,
    /// Total bytes accepted (buffered + already released).
    total: u64,
}

impl WriteBuffer {
    /// Create a buffer that releases blocks of `block_size` bytes.
    pub fn new(block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        let block_size = block_size as usize;
        WriteBuffer {
            block_size,
            buffer: Vec::with_capacity(block_size),
            total: 0,
        }
    }

    /// Append `data`, returning every full block that became available (in
    /// order). The caller commits each returned block as one storage write.
    pub fn push(&mut self, data: &[u8]) -> Vec<Bytes> {
        self.total += data.len() as u64;
        self.buffer.extend_from_slice(data);
        let mut out = Vec::new();
        while self.buffer.len() >= self.block_size {
            let rest = self.buffer.split_off(self.block_size);
            let full = std::mem::replace(&mut self.buffer, rest);
            out.push(Bytes::from(full));
        }
        out
    }

    /// Take whatever partial block remains (used on close/flush). Returns
    /// `None` when nothing is buffered.
    pub fn flush(&mut self) -> Option<Bytes> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(Bytes::from(std::mem::take(&mut self.buffer)))
        }
    }

    /// Bytes currently sitting in the buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Total bytes pushed through the buffer so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::convert::Infallible;
    use std::rc::Rc;

    /// A loader that serves from a backing vector and records which blocks it
    /// was asked for.
    fn loader(
        backing: &[u8],
        block_size: u64,
        calls: Rc<RefCell<Vec<u64>>>,
    ) -> impl FnMut(u64, u64) -> Result<Bytes, Infallible> {
        let backing = backing.to_vec();
        move |block, block_len| {
            calls.borrow_mut().push(block);
            let start = (block * block_size) as usize;
            Ok(Bytes::from(
                backing[start..start + block_len as usize].to_vec(),
            ))
        }
    }

    #[test]
    fn small_reads_within_one_block_hit_after_first_miss() {
        let data: Vec<u8> = (0..200u8).collect();
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut cache = ReadCache::new(64, 2);
        {
            let mut load = loader(&data, 64, Rc::clone(&calls));
            // 16 sequential 4-byte reads inside block 0: one load only.
            for i in 0..16u64 {
                let got = cache.read(i * 4, 4, 200, &mut load).unwrap();
                assert_eq!(&got[..], &data[(i * 4) as usize..(i * 4 + 4) as usize]);
            }
        }
        assert_eq!(*calls.borrow(), vec![0]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 15);
        assert_eq!(stats.blocks_loaded, 1);
        assert_eq!(stats.bytes_loaded, 64);
    }

    #[test]
    fn read_crossing_blocks_loads_both() {
        let data: Vec<u8> = (0..=255u8).collect();
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut cache = ReadCache::new(100, 4);
        {
            let mut load = loader(&data, 100, Rc::clone(&calls));
            let got = cache.read(90, 20, 256, &mut load).unwrap();
            assert_eq!(&got[..], &data[90..110]);
        }
        assert_eq!(*calls.borrow(), vec![0, 1]);
    }

    #[test]
    fn last_partial_block_is_loaded_with_its_true_length() {
        let data: Vec<u8> = (0..130u8).collect();
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut cache = ReadCache::new(100, 2);
        {
            let mut load = loader(&data, 100, Rc::clone(&calls));
            let got = cache.read(100, 30, 130, &mut load).unwrap();
            assert_eq!(&got[..], &data[100..130]);
        }
        assert_eq!(*calls.borrow(), vec![1]);
        assert_eq!(cache.stats().bytes_loaded, 30);
    }

    #[test]
    fn lru_eviction_refetches_oldest_block() {
        let data = vec![7u8; 400];
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut cache = ReadCache::new(100, 2);
        {
            let mut load = loader(&data, 100, Rc::clone(&calls));
            cache.read(0, 10, 400, &mut load).unwrap(); // block 0
            cache.read(100, 10, 400, &mut load).unwrap(); // block 1
            cache.read(200, 10, 400, &mut load).unwrap(); // block 2 evicts 0
            cache.read(0, 10, 400, &mut load).unwrap(); // block 0 again: refetch
        }
        assert_eq!(*calls.borrow(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn invalidate_clears_cached_blocks() {
        let data = vec![1u8; 100];
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut cache = ReadCache::new(100, 2);
        {
            let mut load = loader(&data, 100, Rc::clone(&calls));
            cache.read(0, 10, 100, &mut load).unwrap();
            cache.invalidate();
            cache.read(0, 10, 100, &mut load).unwrap();
        }
        assert_eq!(*calls.borrow(), vec![0, 0]);
    }

    #[test]
    fn zero_length_read_is_free() {
        let mut cache = ReadCache::new(100, 1);
        let got = cache
            .read(0, 0, 100, |_, _| -> Result<Bytes, Infallible> {
                panic!("must not load")
            })
            .unwrap();
        assert!(got.is_empty());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    #[should_panic(expected = "block size must be non-zero")]
    fn zero_block_size_rejected() {
        let _ = ReadCache::new(0, 1);
    }

    #[test]
    fn write_buffer_releases_full_blocks_in_order() {
        let mut buf = WriteBuffer::new(10);
        assert!(buf.push(b"12345").is_empty());
        assert_eq!(buf.buffered(), 5);
        let blocks = buf.push(b"6789012345678");
        assert_eq!(blocks.len(), 1);
        assert_eq!(&blocks[0][..], b"1234567890");
        assert_eq!(buf.buffered(), 8);
        // A huge push can release several blocks at once.
        let blocks = buf.push(&[b'x'; 32]);
        assert_eq!(blocks.len(), 4);
        assert_eq!(buf.total_bytes(), 5 + 13 + 32);
    }

    #[test]
    fn write_buffer_flush_returns_partial_tail() {
        let mut buf = WriteBuffer::new(8);
        buf.push(b"abcdefgh");
        buf.push(b"ij");
        let blocks = buf.push(b"");
        assert!(blocks.is_empty());
        let tail = buf.flush().unwrap();
        assert_eq!(&tail[..], b"ij");
        assert!(buf.flush().is_none());
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn write_buffer_exact_multiple_leaves_nothing() {
        let mut buf = WriteBuffer::new(4);
        let blocks = buf.push(b"abcdefgh");
        assert_eq!(blocks.len(), 2);
        assert!(buf.flush().is_none());
    }
}
