//! The paper's §V future-work scenario: "a storage layer that supports
//! versioning enables complex MapReduce workflows to run in parallel, on
//! different snapshots of the same original dataset."
//!
//! A dataset blob is written (snapshot v1), then a writer keeps appending new
//! records while an analysis scans snapshot v1 concurrently — and sees exactly
//! the snapshot it asked for.
//!
//! ```bash
//! cargo run --example versioned_workflows
//! ```

use blobseer::{BlobSeer, BlobSeerConfig};
use workloads::TextGenerator;

fn main() {
    let sys = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(32 * 1024),
    );
    let client = sys.client();
    let blob = client.create(None).unwrap();

    // Snapshot v1: the original dataset.
    let mut generator = TextGenerator::new(1);
    let original = generator.sentences(2_000);
    let v1 = client.append(blob, original.as_bytes()).unwrap();
    let v1_size = client.size(blob).unwrap();
    println!(
        "dataset snapshot {v1}: {v1_size} bytes, {} records",
        original.lines().count()
    );

    // Concurrently: ingest more data (new versions) while analysing v1.
    let ingest_client = sys.client_on(sys.topology().node(1));
    let analyse_client = sys.client_on(sys.topology().node(2));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut generator = TextGenerator::new(2);
            for batch in 0..10 {
                let extra = generator.sentences(200);
                let v = ingest_client.append(blob, extra.as_bytes()).unwrap();
                println!("  ingest: batch {batch} published as {v}");
            }
        });
        scope.spawn(move || {
            // A "workflow" counting words in snapshot v1 only.
            let data = analyse_client.read(blob, v1, 0, v1_size).unwrap();
            let words = String::from_utf8_lossy(&data).split_whitespace().count();
            println!("  analysis over {v1}: {words} words (unaffected by concurrent ingest)");
        });
    });

    let latest = client.latest_version(blob).unwrap();
    println!(
        "after the run: latest version is {} with {} bytes; {} snapshots remain readable",
        latest.version,
        latest.size,
        client.versions(blob).unwrap().len()
    );
}
