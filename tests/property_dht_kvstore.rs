//! Property-based tests for the DHT and the durable page store: both must
//! behave exactly like an in-memory map under arbitrary operation sequences,
//! and the log store must additionally survive a close/reopen cycle.

use bytes::Bytes;
use dht::{Dht, DhtConfig};
use kvstore::{LogStore, LogStoreConfig, PageStore};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DHT agrees with a plain HashMap for any operation sequence, even
    /// with a node killed halfway through (replication covers it).
    #[test]
    fn dht_matches_hashmap_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        kill_at in 0usize..60,
    ) {
        let dht = Dht::new(DhtConfig { nodes: 5, replication: 3, virtual_nodes: 32 });
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if i == kill_at {
                dht.kill(dht.node_ids()[0]).unwrap();
            }
            match op {
                Op::Put(k, v) => {
                    dht.put(&[*k], Bytes::from(v.clone())).unwrap();
                    model.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    dht.remove(&[*k]).unwrap();
                    model.remove(k);
                }
            }
        }
        for k in 0u8..=255 {
            match model.get(&k) {
                Some(v) => prop_assert_eq!(dht.get(&[k]).unwrap().to_vec(), v.clone()),
                None => prop_assert!(dht.get(&[k]).is_err()),
            }
        }
    }

    /// Batch `put_many`/`get_many` are observationally equivalent to loops of
    /// the single-key operations: same stored values, same missing keys —
    /// only the round-trip count differs.
    #[test]
    fn dht_batch_ops_match_single_op_loops(
        entries in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..32)),
            1..80,
        ),
        extra_keys in prop::collection::vec(any::<u8>(), 0..20),
        kill_one in any::<bool>(),
    ) {
        let batched = Dht::new(DhtConfig { nodes: 5, replication: 3, virtual_nodes: 32 });
        let single = Dht::new(DhtConfig { nodes: 5, replication: 3, virtual_nodes: 32 });
        let batch: Vec<(Vec<u8>, Bytes)> = entries
            .iter()
            .map(|(k, v)| (vec![*k], Bytes::from(v.clone())))
            .collect();
        batched.put_many(&batch).unwrap();
        for (k, v) in &batch {
            single.put(k, v.clone()).unwrap();
        }
        if kill_one {
            // Replication covers one dead node; equivalence must survive it.
            batched.kill(batched.node_ids()[0]).unwrap();
            single.kill(single.node_ids()[0]).unwrap();
        }
        // Compare on every written key (duplicates included: later entries
        // win in both worlds) plus keys that may never have been written.
        let mut keys: Vec<Vec<u8>> = batch.iter().map(|(k, _)| k.clone()).collect();
        keys.extend(extra_keys.iter().map(|k| vec![*k]));
        let got = batched.get_many(&keys).unwrap();
        prop_assert_eq!(got.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            match single.get(k) {
                Ok(v) => {
                    prop_assert_eq!(got[i].clone().expect("batched get missing a key"), v.clone());
                    prop_assert_eq!(batched.get(k).unwrap(), v);
                }
                Err(_) => prop_assert!(got[i].is_none()),
            }
        }
    }

    /// The log-structured store agrees with a HashMap model, both live and
    /// after a crash-recovery style reopen (optionally with a compaction in
    /// between).
    #[test]
    fn logstore_matches_hashmap_model_across_reopen(
        ops in prop::collection::vec(op_strategy(), 1..80),
        segment_max in 128u64..2_048,
        compact in any::<bool>(),
    ) {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("logstore-prop-{}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = LogStoreConfig { segment_max_bytes: segment_max, ..Default::default() };
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        {
            let store = LogStore::open(&dir, config.clone()).unwrap();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        store.put(&[*k], Bytes::from(v.clone())).unwrap();
                        model.insert(*k, v.clone());
                    }
                    Op::Delete(k) => {
                        store.delete(&[*k]).unwrap();
                        model.remove(k);
                    }
                }
            }
            if compact {
                store.compact().unwrap();
            }
            prop_assert_eq!(store.len(), model.len());
            store.sync().unwrap();
        }
        // Reopen from disk and compare against the model.
        let store = LogStore::open(&dir, config).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(&[*k]).unwrap().unwrap().to_vec(), v.clone());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
