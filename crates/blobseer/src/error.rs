//! Error type for BlobSeer operations.

use crate::types::{BlobId, ProviderId, Version};
use std::fmt;

/// Result alias used across the crate.
pub type BlobResult<T> = Result<T, BlobSeerError>;

/// Errors surfaced by the BlobSeer client API and internal components.
#[derive(Debug)]
pub enum BlobSeerError {
    /// The blob id is not known to the version manager.
    UnknownBlob(BlobId),
    /// The requested version has not been published (or never will be).
    UnknownVersion { blob: BlobId, version: Version },
    /// A read extends past the end of the blob at the requested version.
    OutOfBounds {
        blob: BlobId,
        version: Version,
        requested_end: u64,
        size: u64,
    },
    /// No providers are available to accept pages.
    NoProviders,
    /// A page could not be read from any of its replica providers.
    PageUnavailable {
        blob: BlobId,
        version: Version,
        page: u64,
        tried: Vec<ProviderId>,
    },
    /// The metadata DHT failed.
    Metadata(dht::DhtError),
    /// The underlying page store failed.
    Storage(kvstore::KvError),
    /// A write ticket was used twice, or a commit referenced an unknown ticket.
    InvalidTicket { blob: BlobId, version: Version },
    /// The operation's arguments were invalid (e.g. zero-length write).
    InvalidArgument(String),
}

impl fmt::Display for BlobSeerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobSeerError::UnknownBlob(b) => write!(f, "unknown blob {b}"),
            BlobSeerError::UnknownVersion { blob, version } => {
                write!(f, "unknown version {version} of {blob}")
            }
            BlobSeerError::OutOfBounds { blob, version, requested_end, size } => write!(
                f,
                "read past end of {blob} at {version}: requested up to byte {requested_end} but size is {size}"
            ),
            BlobSeerError::NoProviders => write!(f, "no data providers are available"),
            BlobSeerError::PageUnavailable { blob, version, page, tried } => write!(
                f,
                "page {page} of {blob} at {version} unavailable from any replica ({} tried)",
                tried.len()
            ),
            BlobSeerError::Metadata(e) => write!(f, "metadata error: {e}"),
            BlobSeerError::Storage(e) => write!(f, "storage error: {e}"),
            BlobSeerError::InvalidTicket { blob, version } => {
                write!(f, "invalid or already-used write ticket for {blob} {version}")
            }
            BlobSeerError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for BlobSeerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlobSeerError::Metadata(e) => Some(e),
            BlobSeerError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dht::DhtError> for BlobSeerError {
    fn from(e: dht::DhtError) -> Self {
        BlobSeerError::Metadata(e)
    }
}

impl From<kvstore::KvError> for BlobSeerError {
    fn from(e: kvstore::KvError) -> Self {
        BlobSeerError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BlobSeerError::UnknownBlob(BlobId(4));
        assert!(e.to_string().contains("blob-4"));
        let e = BlobSeerError::OutOfBounds {
            blob: BlobId(1),
            version: Version(2),
            requested_end: 100,
            size: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
        let e = BlobSeerError::PageUnavailable {
            blob: BlobId(1),
            version: Version(1),
            page: 9,
            tried: vec![ProviderId(0), ProviderId(1)],
        };
        assert!(e.to_string().contains("page 9"));
        assert!(e.to_string().contains("2 tried"));
        assert!(BlobSeerError::NoProviders.to_string().contains("providers"));
        assert!(BlobSeerError::InvalidArgument("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: BlobSeerError = dht::DhtError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: BlobSeerError = kvstore::KvError::Closed.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = BlobSeerError::NoProviders;
        assert!(std::error::Error::source(&e).is_none());
    }
}
