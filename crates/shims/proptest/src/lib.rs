//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `#![proptest_config(..)]`, `any::<T>()`, integer/float/char
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::char::range`, `prop_map`, `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, by design:
//! - Sampling is **deterministic**: the RNG is seeded from the test name, so
//!   a failure reproduces on every run without a persistence file.
//! - Shrinking is **halving-based and greedy** instead of proptest's value
//!   trees: on failure, each strategy proposes smaller candidates (range
//!   start, the midpoint of the remaining distance, one step down; halved
//!   collections; component-wise tuple shrinks), the runner keeps any
//!   candidate that still fails, and repeats until no candidate fails or the
//!   shrink budget runs out. The panic message reports the minimized input.
//!   Strategies built with `prop_map` cannot shrink through the mapping (the
//!   function is not invertible), and `prop_oneof!` unions do not shrink
//!   (the producing branch is unknown); both report the value that was
//!   found.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG: SplitMix64 — tiny, seedable, good enough for test-case generation.
// ---------------------------------------------------------------------------

/// Deterministic test-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed `prop_assert*` inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias mirroring proptest's.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values. Unlike real proptest there is no value tree: a
/// strategy samples, and on failure proposes simpler candidates through
/// [`Strategy::shrink_candidates`].
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose "smaller" values to try when `value` made a test fail, most
    /// aggressive first (e.g. the range start, then the halfway point, then
    /// one step down). The default — no candidates — disables shrinking for
    /// the strategy; the runner then reports the original failing value.
    fn shrink_candidates(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }

    fn shrink_candidates(&self, value: &V) -> Vec<V> {
        (**self).shrink_candidates(value)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one option"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }

    fn shrink_candidates(&self, value: &V) -> Vec<V> {
        // The producing branch is unknown, and a different branch's
        // candidates (e.g. another range's start) may be values the union
        // can never generate — a misleading "minimized input" to re-seed a
        // regression test with. Better to not shrink than to shrink out of
        // the strategy's domain.
        let _ = value;
        Vec::new()
    }
}

/// Halving candidates for an ordered numeric value inside `[start, value)`:
/// the start itself, the midpoint of the remaining distance, one step down.
macro_rules! int_shrink_candidates {
    ($value:expr, $start:expr) => {{
        let (v, start) = ($value, $start);
        let mut out = Vec::new();
        if v > start {
            out.push(start);
            let mid = start + (v - start) / 2;
            if mid != start && mid != v {
                out.push(mid);
            }
            let down = v - 1;
            if down != start && Some(down) != out.get(1).copied() {
                out.push(down);
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*value, self.start)
            }
        })*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                // Widen to i128 so the distance cannot overflow the type.
                int_shrink_candidates!(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        })*
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                // Casting unit_f64 to f32 can round up to exactly 1.0, which
                // would yield the exclusive upper bound; keep it below 1.
                let unit = (rng.unit_f64() as $t).min(1.0 - <$t>::EPSILON);
                self.start + (self.end - self.start) * unit
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid > self.start && mid < *value {
                        out.push(mid);
                    }
                }
                out
            }
        })*
    };
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink_candidates(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_candidates(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        })*
    };
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Halving candidates toward the type's simplest value (0 / false).
    fn shrink(value: &Self) -> Vec<Self>
    where
        Self: Sized,
    {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let mid = v / 2;
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                }
                out
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }

    fn shrink(value: &f64) -> Vec<f64> {
        if *value != 0.0 {
            vec![0.0, *value / 2.0]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink_candidates(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collection / char strategies (the `prop::` module tree)
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        fn shrink_candidates(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min_len = self.size.start;
            // Structural shrinks first: halve the length, then drop one.
            if value.len() > min_len {
                let half = (value.len() / 2).max(min_len);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 > half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Then element-wise: each position's most aggressive candidate.
            for (i, element) in value.iter().enumerate().take(16) {
                if let Some(candidate) = self.element.shrink_candidates(element).into_iter().next()
                {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod char {
    use super::{Strategy, TestRng};

    /// Inclusive character range strategy.
    pub struct CharRange {
        start: u32,
        end: u32,
    }

    /// `prop::char::range(start, end)` — inclusive on both ends, like the
    /// real crate.
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "empty char range strategy");
        CharRange {
            start: start as u32,
            end: end as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;

        fn sample(&self, rng: &mut TestRng) -> char {
            // Resample on the surrogate gap; caller ranges here are ASCII.
            loop {
                let code = self.start + rng.below((self.end - self.start + 1) as u64) as u32;
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
            }
        }

        fn shrink_candidates(&self, value: &char) -> Vec<char> {
            let v = *value as u32;
            let mut out = Vec::new();
            if v > self.start {
                out.extend(char::from_u32(self.start));
                let mid = self.start + (v - self.start) / 2;
                if mid != self.start && mid != v {
                    out.extend(char::from_u32(mid));
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner and shrinking
// ---------------------------------------------------------------------------

/// Cap on how many shrink attempts (candidate executions) one failure may
/// consume. Halving converges in O(log distance) accepted steps, so this is
/// generous; it exists to bound pathological strategies.
const SHRINK_BUDGET: usize = 512;

/// Greedily minimize a failing value: repeatedly try the strategy's shrink
/// candidates and keep the first one that still fails, until no candidate
/// fails or the budget is exhausted. Returns the minimized value, the error
/// it produced, and how many shrink steps were accepted.
pub fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut err: TestCaseError,
    run: F,
) -> (S::Value, TestCaseError, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> TestCaseResult,
{
    let mut steps = 0usize;
    let mut budget = SHRINK_BUDGET;
    'search: while budget > 0 {
        for candidate in strategy.shrink_candidates(&value) {
            if budget == 0 {
                break 'search;
            }
            budget -= 1;
            if let Err(e) = run(&candidate) {
                value = candidate;
                err = e;
                steps += 1;
                continue 'search;
            }
        }
        // No candidate still fails: the value is (locally) minimal.
        break;
    }
    (value, err, steps)
}

/// Execute `config.cases` deterministic cases of a property, shrinking and
/// reporting the minimized input on failure. The `proptest!` macro expands
/// each test body into a call to this.
pub fn run_cases<S, F>(name: &str, config: ProptestConfig, strategy: S, run: F)
where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
    F: Fn(&S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::deterministic(name);
    for case in 0..config.cases {
        let value = strategy.sample(&mut rng);
        if let Err(err) = run(&value) {
            let (minimized, min_err, steps) = shrink_failure(&strategy, value, err, &run);
            panic!(
                "proptest case {case}/{} failed: {min_err}\nminimized input (after {steps} shrink steps): {minimized:?}",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The proptest entry point: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // All argument strategies combine into one tuple strategy, so
            // the runner can sample, re-run and shrink the arguments as a
            // unit. The sampling order (and hence the RNG stream) matches
            // the per-argument order exactly.
            let strategy = ($($strategy,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config,
                strategy,
                |__proptest_values| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__proptest_values);
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a proptest body; failure aborts the case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Mirror of `proptest::prelude`, re-exporting everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop::` module tree (`prop::collection::vec`, `prop::char::range`).
    pub mod prop {
        pub use crate::char;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn integer_shrinking_converges_to_the_minimal_failure() {
        // Property "x < 10" over 0..1000: the minimal failing value is 10,
        // and halving must find it from anywhere in the range.
        let strategy = 0u64..1000;
        for start in [10u64, 11, 57, 400, 999] {
            let (minimized, _, _) =
                crate::shrink_failure(&strategy, start, TestCaseError::fail("seed"), |v: &u64| {
                    if *v < 10 {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail(format!("{v} is too big")))
                    }
                });
            assert_eq!(minimized, 10, "failed to minimize from {start}");
        }
    }

    #[test]
    fn shrinking_respects_the_range_start() {
        // Property that always fails: the minimum must be the range start,
        // never below it.
        let strategy = 5u32..100;
        let (minimized, err, steps) =
            crate::shrink_failure(&strategy, 73, TestCaseError::fail("seed"), |_: &u32| {
                Err(TestCaseError::fail("always fails"))
            });
        assert_eq!(minimized, 5);
        assert!(steps >= 1);
        assert!(err.to_string().contains("always fails"));
    }

    #[test]
    fn vector_shrinking_halves_the_length() {
        // Property "len < 5" over vec lengths 0..64: minimal failure is a
        // 5-element vector (with elements shrunk toward 0).
        let strategy = prop::collection::vec(any::<u8>(), 0..64);
        let failing: Vec<u8> = (0..50u8).collect();
        let (minimized, _, _) = crate::shrink_failure(
            &strategy,
            failing,
            TestCaseError::fail("seed"),
            |v: &Vec<u8>| {
                if v.len() < 5 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too long"))
                }
            },
        );
        assert_eq!(minimized.len(), 5);
    }

    #[test]
    fn tuple_shrinking_minimizes_each_component() {
        let strategy = (0u64..100, 0u64..100);
        let (minimized, _, _) = crate::shrink_failure(
            &strategy,
            (90, 77),
            TestCaseError::fail("seed"),
            |(a, b): &(u64, u64)| {
                if a + b < 30 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("sum too big"))
                }
            },
        );
        assert_eq!(minimized.0 + minimized.1, 30, "minimal failing sum");
    }

    #[test]
    fn unshrinkable_strategies_report_the_original_value() {
        // prop_map cannot invert its function, so no candidates exist and
        // the original failing value survives untouched.
        let strategy = (1u32..50).prop_map(|n| n * 3);
        let (minimized, _, steps) =
            crate::shrink_failure(&strategy, 42, TestCaseError::fail("seed"), |_: &u32| {
                Err(TestCaseError::fail("always fails"))
            });
        assert_eq!(minimized, 42);
        assert_eq!(steps, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// End-to-end: a failing property panics with the minimized input in
        /// the message, not just a case number.
        #[test]
        #[should_panic(expected = "minimized input")]
        fn failing_property_reports_minimized_input(x in 0u64..1000) {
            prop_assert!(x < 10, "x = {x} crossed the threshold");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their range bounds.
        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..10,
            f in 0.25f64..0.75,
            v in prop::collection::vec(any::<u8>(), 2..5),
            c in prop::char::range('a', 'f'),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(('a'..='f').contains(&c));
        }

        /// prop_oneof and prop_map compose.
        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (1u32..5).prop_map(|n| n * 2),
                (10u32..20).prop_map(|n| n + 1),
            ],
        ) {
            prop_assert!((2..10).contains(&v) || (11..21).contains(&v));
        }
    }
}
