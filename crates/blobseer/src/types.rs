//! Core identifiers and byte/page arithmetic shared across BlobSeer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a blob within a BlobSeer deployment. Assigned by the version
/// manager at creation time (paper: "uniquely identified by a key assigned by
/// the BlobSeer system").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlobId(pub u64);

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob-{}", self.0)
    }
}

/// A snapshot version of a blob. Version 0 is the empty blob created by
/// `create`; every write or append produces the next version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version(pub u64);

impl Version {
    /// The initial, empty version of every blob.
    pub const ZERO: Version = Version(0);

    /// The next version number.
    pub fn next(&self) -> Version {
        Version(self.0 + 1)
    }

    /// The previous version number (panics on version 0, which has no
    /// predecessor).
    pub fn prev(&self) -> Version {
        assert!(self.0 > 0, "version 0 has no predecessor");
        Version(self.0 - 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies a data provider (page storage node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProviderId(pub u32);

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "provider-{}", self.0)
    }
}

/// A half-open byte range `[offset, offset + len)` within a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteRange {
    /// First byte of the range.
    pub offset: u64,
    /// Number of bytes.
    pub len: u64,
}

impl ByteRange {
    /// Construct a range.
    pub fn new(offset: u64, len: u64) -> Self {
        ByteRange { offset, len }
    }

    /// Exclusive end of the range. Saturating: a range whose nominal end
    /// would overflow `u64` (callers validate against blob sizes long before
    /// that, but arithmetic here must not wrap in release builds) reports
    /// `u64::MAX`.
    pub fn end(&self) -> u64 {
        self.offset.saturating_add(self.len)
    }

    /// True when the range contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Do two ranges share at least one byte?
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersection(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.offset.max(other.offset);
        let end = self.end().min(other.end());
        if start < end {
            Some(ByteRange::new(start, end - start))
        } else {
            None
        }
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

/// Page-granularity arithmetic for a blob with a fixed page size.
///
/// BlobSeer splits every blob "into even-sized blocks, called pages; the page
/// is the data-management unit" (paper §III-A). All metadata (segment-tree
/// leaves, provider assignments) is expressed in pages; this helper keeps the
/// offset/page conversions in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMath {
    page_size: u64,
}

impl PageMath {
    /// Create a helper for the given page size (must be non-zero).
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        PageMath { page_size }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Index of the page containing byte `offset`.
    pub fn page_of(&self, offset: u64) -> u64 {
        offset / self.page_size
    }

    /// Byte offset at which page `index` starts. Saturating, for the same
    /// reason as [`ByteRange::end`]: a page index near `u64::MAX` (only
    /// reachable through an already-rejected request) must not wrap.
    pub fn page_start(&self, index: u64) -> u64 {
        index.saturating_mul(self.page_size)
    }

    /// Number of pages needed to hold `size` bytes.
    pub fn pages_for(&self, size: u64) -> u64 {
        size.div_ceil(self.page_size)
    }

    /// The inclusive range of page indices touched by a byte range, or `None`
    /// for an empty range.
    pub fn pages_touched(&self, range: ByteRange) -> Option<(u64, u64)> {
        if range.is_empty() {
            return None;
        }
        Some((self.page_of(range.offset), self.page_of(range.end() - 1)))
    }

    /// Is the byte range aligned to page boundaries on both ends? (The end may
    /// also be unaligned if it coincides with `blob_size`, which callers check
    /// separately; this predicate is purely geometric.)
    pub fn is_aligned(&self, range: ByteRange) -> bool {
        range.offset.is_multiple_of(self.page_size) && range.end().is_multiple_of(self.page_size)
    }

    /// The byte range covered by page `index`.
    pub fn page_range(&self, index: u64) -> ByteRange {
        ByteRange::new(self.page_start(index), self.page_size)
    }
}

/// Round `n` up to the next power of two (minimum 1).
pub fn next_power_of_two(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_sequencing() {
        assert_eq!(Version::ZERO.next(), Version(1));
        assert_eq!(Version(5).next(), Version(6));
        assert_eq!(Version(5).prev(), Version(4));
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn version_zero_has_no_predecessor() {
        let _ = Version::ZERO.prev();
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlobId(3).to_string(), "blob-3");
        assert_eq!(Version(7).to_string(), "v7");
        assert_eq!(ProviderId(1).to_string(), "provider-1");
        assert_eq!(ByteRange::new(10, 5).to_string(), "[10, 15)");
    }

    #[test]
    fn byte_range_geometry() {
        let a = ByteRange::new(0, 100);
        let b = ByteRange::new(50, 100);
        let c = ByteRange::new(100, 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(
            !a.overlaps(&c),
            "half-open ranges: [0,100) and [100,110) do not overlap"
        );
        assert_eq!(a.intersection(&b), Some(ByteRange::new(50, 50)));
        assert_eq!(a.intersection(&c), None);
        assert!(!ByteRange::new(5, 0).overlaps(&a));
        assert!(ByteRange::new(5, 0).is_empty());
        assert_eq!(a.end(), 100);
    }

    #[test]
    fn page_math_basics() {
        let pm = PageMath::new(4096);
        assert_eq!(pm.page_size(), 4096);
        assert_eq!(pm.page_of(0), 0);
        assert_eq!(pm.page_of(4095), 0);
        assert_eq!(pm.page_of(4096), 1);
        assert_eq!(pm.page_start(3), 12288);
        assert_eq!(pm.pages_for(0), 0);
        assert_eq!(pm.pages_for(1), 1);
        assert_eq!(pm.pages_for(4096), 1);
        assert_eq!(pm.pages_for(4097), 2);
    }

    #[test]
    fn pages_touched_by_ranges() {
        let pm = PageMath::new(100);
        assert_eq!(pm.pages_touched(ByteRange::new(0, 100)), Some((0, 0)));
        assert_eq!(pm.pages_touched(ByteRange::new(0, 101)), Some((0, 1)));
        assert_eq!(pm.pages_touched(ByteRange::new(250, 100)), Some((2, 3)));
        assert_eq!(pm.pages_touched(ByteRange::new(50, 0)), None);
    }

    #[test]
    fn alignment_predicate() {
        let pm = PageMath::new(64);
        assert!(pm.is_aligned(ByteRange::new(0, 128)));
        assert!(pm.is_aligned(ByteRange::new(64, 64)));
        assert!(!pm.is_aligned(ByteRange::new(1, 64)));
        assert!(!pm.is_aligned(ByteRange::new(0, 65)));
        assert_eq!(pm.page_range(2), ByteRange::new(128, 64));
    }

    #[test]
    fn near_overflow_arithmetic_saturates_instead_of_wrapping() {
        // A range ending past u64::MAX reports a saturated end, so bounds
        // checks against real sizes still reject it.
        let r = ByteRange::new(u64::MAX - 1, 2);
        assert_eq!(r.end(), u64::MAX);
        let r = ByteRange::new(u64::MAX - 1, 100);
        assert_eq!(r.end(), u64::MAX, "end must saturate, not wrap");
        assert!(!r.is_empty());
        // Page arithmetic near the top of the address space saturates too.
        let pm = PageMath::new(4096);
        assert_eq!(pm.page_start(u64::MAX), u64::MAX);
        let (first, last) = pm.pages_touched(ByteRange::new(u64::MAX - 1, 2)).unwrap();
        assert!(first <= last);
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }
}
