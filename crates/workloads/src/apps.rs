//! The MapReduce applications of the paper's evaluation (§IV-C), plus word
//! count and the two shuffle-heavy workloads that stress the
//! storage-materialized intermediate data path.
//!
//! * **Random Text Writer** — a map-only job that "generates a huge sequence
//!   of random sentences formed from a list of predefined words"; its access
//!   pattern is "concurrent massively parallel writes to different files".
//! * **Distributed Grep** — "scans huge input data to find occurrences of
//!   particular expressions"; its access pattern is "concurrent reads from
//!   the same huge file".
//! * **Word Count** — the canonical MapReduce example, used by the extra
//!   integration tests and the quickstart example (optionally with a
//!   spill-time combiner).
//! * **Distributed Sort** — TeraSort-style total-order sort: a sampled range
//!   partitioner, identity map and identity reduce; the paper family's
//!   canonical shuffle-heavy benchmark (every input byte crosses the
//!   shuffle).
//! * **Equi-Join** — a two-input reduce-side join that tags records by their
//!   source file and emits the cross product per key.
//!
//! Each application is provided both as mapper/reducer types and as a
//! convenience `*_job` constructor returning a ready-to-run
//! [`mapreduce::Job`].

use crate::textgen::TextGenerator;
use mapreduce::fs::DistFs;
use mapreduce::job::{InputSpec, Job, JobConfig, Mapper, RangePartitioner, Reducer, SumReducer};
use mapreduce::split::{compute_splits, read_records, SplitSource};
use mapreduce::MrResult;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Random Text Writer
// ---------------------------------------------------------------------------

/// Mapper of the Random Text Writer job: every synthetic input record becomes
/// one randomly generated sentence. Each map task seeds its generator from
/// the record offset so output is deterministic yet different per record.
pub struct RandomTextMapper {
    /// Base seed mixed into every record's generator.
    pub seed: u64,
    /// Approximate bytes of text to emit per record.
    pub bytes_per_record: usize,
}

impl Mapper for RandomTextMapper {
    fn map(&self, offset: u64, _line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        let mut generator =
            TextGenerator::new(self.seed ^ (offset.wrapping_mul(0x9E3779B97F4A7C15)));
        let mut produced = 0usize;
        while produced < self.bytes_per_record {
            let sentence = generator.sentence();
            produced += sentence.len() + 1;
            emit(sentence, String::new());
        }
        Ok(())
    }
}

/// Build the Random Text Writer job: `maps` map tasks, each generating
/// `records_per_map` records of roughly `bytes_per_record` bytes, written as
/// one output file per map task (map-only, like Hadoop's `randomtextwriter`).
pub fn random_text_writer_job(
    output_dir: &str,
    maps: usize,
    records_per_map: u64,
    bytes_per_record: usize,
    seed: u64,
) -> Job {
    let config = JobConfig::new(
        "random-text-writer",
        InputSpec::Synthetic {
            splits: maps,
            records_per_split: records_per_map,
        },
        output_dir,
    );
    Job::map_only(
        config,
        Arc::new(RandomTextMapper {
            seed,
            bytes_per_record,
        }),
    )
}

// ---------------------------------------------------------------------------
// Distributed Grep
// ---------------------------------------------------------------------------

/// Mapper of the Distributed Grep job: emits `(pattern, 1)` for every line
/// containing the pattern (substring match, as in Hadoop's `grep` example
/// when given a literal expression).
pub struct GrepMapper {
    /// The expression being searched for.
    pub pattern: String,
}

impl Mapper for GrepMapper {
    fn map(&self, _offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        if line.contains(&self.pattern) {
            emit(self.pattern.clone(), "1".to_string());
        }
        Ok(())
    }
}

/// Build the Distributed Grep job over `input_paths`, counting lines that
/// contain `pattern`.
pub fn distributed_grep_job(
    input_paths: Vec<String>,
    output_dir: &str,
    pattern: &str,
    split_size: u64,
) -> Job {
    let config = JobConfig::new(
        "distributed-grep",
        InputSpec::Files(input_paths),
        output_dir,
    )
    .with_split_size(split_size)
    .with_reducers(1);
    Job::new(
        config,
        Arc::new(GrepMapper {
            pattern: pattern.to_string(),
        }),
        Arc::new(SumReducer),
    )
}

// ---------------------------------------------------------------------------
// Word Count
// ---------------------------------------------------------------------------

/// Mapper of the Word Count job: emits `(word, 1)` for every whitespace-
/// separated token.
pub struct WordCountMapper;

impl Mapper for WordCountMapper {
    fn map(&self, _offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        for word in line.split_whitespace() {
            emit(word.to_string(), "1".to_string());
        }
        Ok(())
    }
}

/// Reducer alias used by word count (sums the per-word ones).
pub type WordCountReducer = SumReducer;

/// Build a Word Count job.
pub fn word_count_job(
    input_paths: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_size: u64,
) -> Job {
    let config = JobConfig::new("word-count", InputSpec::Files(input_paths), output_dir)
        .with_split_size(split_size)
        .with_reducers(reducers);
    Job::new(config, Arc::new(WordCountMapper), Arc::new(SumReducer))
}

/// [`word_count_job`] with a spill-time combiner (the `SumReducer` itself,
/// as in Hadoop's classic word count): per-word counts collapse inside each
/// map task, cutting the bytes the shuffle moves through the storage layer.
pub fn word_count_job_combining(
    input_paths: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_size: u64,
) -> Job {
    let config = JobConfig::new("word-count", InputSpec::Files(input_paths), output_dir)
        .with_split_size(split_size)
        .with_reducers(reducers)
        .with_combiner(Arc::new(SumReducer));
    Job::new(config, Arc::new(WordCountMapper), Arc::new(SumReducer))
}

/// A reducer that merely forwards pairs — used by tests that want grep output
/// per matching line rather than aggregated counts. (The same behaviour the
/// framework ships as its identity reducer, re-exported under the historical
/// workloads name.)
pub use mapreduce::job::IdentityReducer as PassThroughReducer;

// ---------------------------------------------------------------------------
// Distributed Sort (TeraSort-style)
// ---------------------------------------------------------------------------

/// Mapper of the Distributed Sort job: every line becomes an intermediate
/// key with an empty value — the shuffle's sorted merge does all the work.
pub struct SortMapper;

impl Mapper for SortMapper {
    fn map(&self, _offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()> {
        emit(line.to_string(), String::new());
        Ok(())
    }
}

/// Bytes read from the head of each split when sampling sort keys: enough
/// lines for good quantiles without a second full pass over the input.
const SAMPLE_BYTES_PER_SPLIT: u64 = 64 * 1024;

/// Sample input keys and pick `reducers - 1` range-partition boundaries at
/// the sample quantiles, TeraSort's trick for balanced reducers: read a
/// bounded prefix of every split (client-side, through the same storage
/// layer the job will use) and take up to `max_samples` lines in total.
pub fn sample_sort_boundaries(
    fs: &dyn DistFs,
    input_paths: &[String],
    reducers: usize,
    split_size: u64,
    max_samples: usize,
) -> MrResult<Vec<String>> {
    if reducers <= 1 {
        return Ok(Vec::new());
    }
    let splits = compute_splits(fs, &InputSpec::Files(input_paths.to_vec()), split_size)?;
    if splits.is_empty() {
        return Ok(Vec::new());
    }
    let per_split = max_samples.div_ceil(splits.len());
    let mut samples: Vec<String> = Vec::new();
    for split in &splits {
        if let SplitSource::File { path, offset, len } = &split.source {
            let (records, _) = read_records(fs, path, *offset, (*len).min(SAMPLE_BYTES_PER_SPLIT))?;
            samples.extend(records.into_iter().take(per_split).map(|(_, line)| line));
        }
        if samples.len() >= max_samples {
            break;
        }
    }
    samples.sort();
    let mut boundaries = Vec::with_capacity(reducers - 1);
    for i in 1..reducers {
        if samples.is_empty() {
            break;
        }
        let at = (i * samples.len() / reducers).min(samples.len() - 1);
        boundaries.push(samples[at].clone());
    }
    boundaries.dedup();
    Ok(boundaries)
}

/// Build the Distributed Sort job over `input_paths`: identity map, sampled
/// [`RangePartitioner`], identity reduce. Concatenating the `part-r-*`
/// outputs in partition order yields the input's lines globally sorted.
/// Sampling reads the input through `fs`, so the resulting job is
/// deterministic for a given input — the BSFS and HDFS runs build identical
/// partitioners.
pub fn distributed_sort_job(
    fs: &dyn DistFs,
    input_paths: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_size: u64,
) -> MrResult<Job> {
    let boundaries = sample_sort_boundaries(fs, &input_paths, reducers, split_size, 10_000)?;
    let config = JobConfig::new(
        "distributed-sort",
        InputSpec::Files(input_paths),
        output_dir,
    )
    .with_split_size(split_size)
    .with_reducers(reducers);
    Ok(
        Job::new(config, Arc::new(SortMapper), Arc::new(PassThroughReducer))
            .with_partitioner(Arc::new(RangePartitioner::new(boundaries))),
    )
}

// ---------------------------------------------------------------------------
// Equi-Join
// ---------------------------------------------------------------------------

/// Tag prefixes used by the join's intermediate values.
const LEFT_TAG: &str = "l\t";
const RIGHT_TAG: &str = "r\t";

/// Mapper of the Equi-Join job. Input lines are `key<TAB>value` records; the
/// mapper tags each value with the side its file belongs to (overriding
/// [`Mapper::map_with_source`] — the framework tells map tasks which input
/// file their split came from).
pub struct JoinMapper {
    /// Paths (files or directories) of the left input.
    pub left_paths: Vec<String>,
}

impl JoinMapper {
    fn is_left(&self, path: &str) -> bool {
        self.left_paths
            .iter()
            .any(|p| path == p || path.starts_with(&format!("{p}/")))
    }
}

impl Mapper for JoinMapper {
    fn map(
        &self,
        _offset: u64,
        _line: &str,
        _emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        Err(mapreduce::MrError::InvalidJob(
            "JoinMapper tags records by source file; call map_with_source".into(),
        ))
    }

    fn map_with_source(
        &self,
        path: &str,
        _offset: u64,
        line: &str,
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        if line.is_empty() {
            return Ok(());
        }
        let (key, value) = match line.split_once('\t') {
            Some((k, v)) => (k, v),
            None => (line, ""),
        };
        let tag = if self.is_left(path) {
            LEFT_TAG
        } else {
            RIGHT_TAG
        };
        emit(key.to_string(), format!("{tag}{value}"));
        Ok(())
    }
}

/// Reducer of the Equi-Join job: for each key, emit the cross product of the
/// left and right values as `key<TAB>left<TAB>right` records.
pub struct JoinReducer;

impl Reducer for JoinReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for v in values {
            if let Some(l) = v.strip_prefix(LEFT_TAG) {
                left.push(l);
            } else if let Some(r) = v.strip_prefix(RIGHT_TAG) {
                right.push(r);
            }
        }
        for l in &left {
            for r in &right {
                emit(key.to_string(), format!("{l}\t{r}"));
            }
        }
        Ok(())
    }
}

/// Build the Equi-Join job: join `left_paths` and `right_paths` on the key
/// column (the text before the first tab of each line).
pub fn equi_join_job(
    left_paths: Vec<String>,
    right_paths: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_size: u64,
) -> Job {
    let mut inputs = left_paths.clone();
    inputs.extend(right_paths);
    let config = JobConfig::new("equi-join", InputSpec::Files(inputs), output_dir)
        .with_split_size(split_size)
        .with_reducers(reducers);
    Job::new(
        config,
        Arc::new(JoinMapper { left_paths }),
        Arc::new(JoinReducer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};
    use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
    use mapreduce::jobtracker::JobTracker;
    use simcluster::ClusterTopology;

    fn bsfs_fs(nodes: u32) -> (ClusterTopology, BsfsFs) {
        let topo = ClusterTopology::flat(nodes);
        let provider_nodes: Vec<_> = topo.all_nodes().collect();
        let storage = BlobSeer::with_topology(
            BlobSeerConfig::for_tests()
                .with_providers(nodes as usize)
                .with_page_size(1024),
            &topo,
            &provider_nodes,
        );
        (
            topo.clone(),
            BsfsFs::new(Bsfs::new(
                storage,
                BsfsConfig::for_tests().with_block_size(1024),
            )),
        )
    }

    #[test]
    fn random_text_writer_generates_expected_volume() {
        let (topo, fs) = bsfs_fs(4);
        let job = random_text_writer_job("/rtw-out", 4, 8, 256, 11);
        let jt = JobTracker::new(&topo);
        let result = jt.run(&fs, &job).unwrap();
        assert_eq!(result.map_tasks, 4);
        assert_eq!(result.reduce_tasks, 0);
        assert_eq!(result.output_files.len(), 4);
        // 4 maps x 8 records x >=256 bytes each.
        assert!(result.output_bytes >= 4 * 8 * 256);
        // Output is actual text from the vocabulary.
        let sample = fs.read_file(&result.output_files[0]).unwrap();
        let text = String::from_utf8_lossy(&sample);
        let first_word = text.split_whitespace().next().unwrap();
        assert!(crate::textgen::WORDS.contains(&first_word));
    }

    #[test]
    fn random_text_writer_is_deterministic_per_seed() {
        let (topo_a, fs_a) = bsfs_fs(2);
        let (topo_b, fs_b) = bsfs_fs(2);
        let job_a = random_text_writer_job("/out", 2, 4, 128, 99);
        let job_b = random_text_writer_job("/out", 2, 4, 128, 99);
        let ra = JobTracker::new(&topo_a).run(&fs_a, &job_a).unwrap();
        let rb = JobTracker::new(&topo_b).run(&fs_b, &job_b).unwrap();
        for (a, b) in ra.output_files.iter().zip(&rb.output_files) {
            assert_eq!(fs_a.read_file(a).unwrap(), fs_b.read_file(b).unwrap());
        }
    }

    #[test]
    fn distributed_grep_counts_occurrences() {
        let (topo, fs) = bsfs_fs(4);
        // Build an input with a known number of matching lines.
        let mut generator = TextGenerator::new(3);
        let mut text = String::new();
        let mut expected = 0u64;
        for i in 0..300 {
            if i % 9 == 0 {
                text.push_str("the stradametrical needle is here\n");
                expected += 1;
            } else {
                text.push_str(&generator.sentence());
                text.push('\n');
            }
        }
        fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
        let job = distributed_grep_job(vec!["/input/huge.txt".into()], "/grep-out", "needle", 2048);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&out),
            format!("needle\t{expected}\n")
        );
        assert!(
            result.map_tasks > 1,
            "the huge file should be processed by several maps"
        );
    }

    #[test]
    fn grep_with_no_matches_produces_empty_output() {
        let (topo, fs) = bsfs_fs(2);
        fs.write_file("/input/plain.txt", b"nothing interesting here\nat all\n")
            .unwrap();
        let job = distributed_grep_job(vec!["/input/plain.txt".into()], "/out", "unfindable", 1024);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.output_records, 0);
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn word_count_over_generated_text_matches_reference() {
        let (topo, fs) = bsfs_fs(4);
        let mut generator = TextGenerator::new(5);
        let text = generator.sentences(200);
        fs.write_file("/input/words.txt", text.as_bytes()).unwrap();
        let job = word_count_job(vec!["/input/words.txt".into()], "/wc-out", 3, 1500);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();

        // Reference counts computed directly.
        let mut expected = std::collections::BTreeMap::new();
        for w in text.split_whitespace() {
            *expected.entry(w.to_string()).or_insert(0u64) += 1;
        }
        let mut got = std::collections::BTreeMap::new();
        for part in &result.output_files {
            let content = fs.read_file(part).unwrap();
            for line in String::from_utf8_lossy(&content).lines() {
                let mut it = line.split('\t');
                let w = it.next().unwrap().to_string();
                let c: u64 = it.next().unwrap().parse().unwrap();
                got.insert(w, c);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn apps_run_identically_on_hdfs() {
        let topo = ClusterTopology::flat(4);
        let nodes: Vec<_> = topo.all_nodes().collect();
        let fs = HdfsFs::new(hdfs_sim::Hdfs::with_topology(
            hdfs_sim::HdfsConfig::for_tests().with_chunk_size(1024),
            &topo,
            &nodes,
        ));
        let mut generator = TextGenerator::new(3);
        let mut text = String::new();
        for i in 0..100 {
            if i % 10 == 0 {
                text.push_str("needle line\n");
            } else {
                text.push_str(&generator.sentence());
                text.push('\n');
            }
        }
        fs.write_file("/input/huge.txt", text.as_bytes()).unwrap();
        let job = distributed_grep_job(vec!["/input/huge.txt".into()], "/out", "needle", 1024);
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        let out = fs.read_file(&result.output_files[0]).unwrap();
        assert_eq!(String::from_utf8_lossy(&out), "needle\t10\n");
        assert_eq!(result.fs_name, "HDFS");
    }

    #[test]
    fn pass_through_reducer_forwards_pairs() {
        let r = PassThroughReducer;
        let mut out = Vec::new();
        r.reduce("k", &["v1".into(), "v2".into()], &mut |k, v| {
            out.push((k, v))
        })
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    fn hdfs_fs(nodes: u32) -> (ClusterTopology, HdfsFs) {
        let topo = ClusterTopology::flat(nodes);
        let dn: Vec<_> = topo.all_nodes().collect();
        (
            topo.clone(),
            HdfsFs::new(hdfs_sim::Hdfs::with_topology(
                hdfs_sim::HdfsConfig::for_tests().with_chunk_size(1024),
                &topo,
                &dn,
            )),
        )
    }

    /// Concatenate part files in partition order and return their lines.
    fn output_lines(fs: &dyn DistFs, files: &[String]) -> Vec<String> {
        let mut lines = Vec::new();
        for f in files {
            let content = fs.read_file(f).unwrap();
            lines.extend(
                String::from_utf8_lossy(&content)
                    .lines()
                    .map(str::to_string),
            );
        }
        lines
    }

    #[test]
    fn distributed_sort_produces_a_global_total_order() {
        let (topo, fs) = bsfs_fs(4);
        let mut generator = TextGenerator::new(21);
        let text = generator.sentences(400);
        fs.write_file("/in/unsorted.txt", text.as_bytes()).unwrap();

        let job =
            distributed_sort_job(&fs, vec!["/in/unsorted.txt".into()], "/sorted", 4, 2048).unwrap();
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.reduce_tasks, 4);
        assert!(result.map_tasks > 1);

        // Concatenating the partition outputs in order gives the reference
        // sort of the input's lines.
        let got = output_lines(&fs, &result.output_files);
        let mut expected: Vec<String> = text.lines().map(str::to_string).collect();
        expected.sort();
        assert_eq!(got, expected);
        // The range partitioner must actually spread the keys.
        let nonempty = result
            .output_files
            .iter()
            .filter(|f| fs.len(f).unwrap() > 0)
            .count();
        assert!(
            nonempty >= 2,
            "sampled boundaries should fill >=2 partitions"
        );
        assert!(result.shuffle.spill_records >= 400);
    }

    #[test]
    fn sort_sampling_of_empty_inputs_matches_the_job_contract() {
        // A fully empty input cannot be split (the framework rejects it as
        // InvalidJob), and the sampler must agree with the job instead of
        // inventing boundaries from nothing.
        let (topo, fs) = bsfs_fs(2);
        fs.write_file("/in/empty.txt", b"").unwrap();
        assert!(sample_sort_boundaries(&fs, &["/in/empty.txt".to_string()], 3, 1024, 100).is_err());
        assert!(
            distributed_sort_job(&fs, vec!["/in/empty.txt".into()], "/sorted", 3, 1024).is_err()
        );

        // An empty file alongside a real one contributes no samples and no
        // splits; the job sorts the real file's lines as usual.
        fs.write_file("/in/real.txt", b"cherry\napple\nbanana\n")
            .unwrap();
        let job = distributed_sort_job(&fs, vec!["/in".into()], "/sorted", 3, 1024).unwrap();
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.output_files.len(), 3);
        assert_eq!(
            output_lines(&fs, &result.output_files),
            vec!["apple", "banana", "cherry"]
        );
    }

    #[test]
    fn sort_with_all_duplicate_keys_collapses_to_one_boundary() {
        // Every line identical: quantile sampling dedups to (at most) one
        // boundary, so at most two partitions can be non-empty — the job
        // must still produce the correct (trivially sorted) output.
        let (topo, fs) = bsfs_fs(2);
        let text = "same-key\n".repeat(200);
        fs.write_file("/in/dups.txt", text.as_bytes()).unwrap();
        let boundaries =
            sample_sort_boundaries(&fs, &["/in/dups.txt".to_string()], 4, 512, 1000).unwrap();
        assert_eq!(boundaries, vec!["same-key".to_string()]);
        let job =
            distributed_sort_job(&fs, vec!["/in/dups.txt".into()], "/sorted", 4, 512).unwrap();
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        let got = output_lines(&fs, &result.output_files);
        assert_eq!(got, text.lines().map(str::to_string).collect::<Vec<_>>());
        // All records share one key, so exactly one partition holds them.
        let nonempty = result
            .output_files
            .iter()
            .filter(|f| fs.len(f).unwrap() > 0)
            .count();
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn sort_with_fewer_distinct_keys_than_reducers_stays_correct() {
        // 3 distinct keys, 6 reducers: deduped boundaries leave several
        // reducers with nothing to do, but the global order must hold and
        // every part file (including the empty ones) must exist.
        let (topo, fs) = bsfs_fs(2);
        let mut text = String::new();
        for i in 0..120 {
            text.push_str(["kiwi\n", "apple\n", "mango\n"][i % 3]);
        }
        fs.write_file("/in/few.txt", text.as_bytes()).unwrap();
        let boundaries =
            sample_sort_boundaries(&fs, &["/in/few.txt".to_string()], 6, 512, 1000).unwrap();
        assert!(
            boundaries.len() < 6 - 1,
            "3 distinct keys cannot produce 5 boundaries: {boundaries:?}"
        );
        let job = distributed_sort_job(&fs, vec!["/in/few.txt".into()], "/sorted", 6, 512).unwrap();
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.output_files.len(), 6);
        let got = output_lines(&fs, &result.output_files);
        let mut expected: Vec<String> = text.lines().map(str::to_string).collect();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn distributed_sort_identical_on_both_backends() {
        let (topo_b, bsfs) = bsfs_fs(4);
        let (topo_h, hdfs) = hdfs_fs(4);
        let mut generator = TextGenerator::new(33);
        let text = generator.sentences(200);
        let mut outputs = Vec::new();
        for (topo, fs) in [
            (&topo_b, &bsfs as &dyn DistFs),
            (&topo_h, &hdfs as &dyn DistFs),
        ] {
            fs.write_file("/in/data.txt", text.as_bytes()).unwrap();
            let job =
                distributed_sort_job(fs, vec!["/in/data.txt".into()], "/out", 3, 1024).unwrap();
            let result = JobTracker::new(topo).run(fs, &job).unwrap();
            outputs.push(
                result
                    .output_files
                    .iter()
                    .map(|f| fs.read_file(f).unwrap())
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            outputs[0], outputs[1],
            "sort must not depend on the backend"
        );
    }

    #[test]
    fn equi_join_emits_the_per_key_cross_product() {
        let (topo, fs) = bsfs_fs(4);
        fs.write_file(
            "/in/users.tsv",
            b"u1\talice\nu2\tbob\nu3\tcarol\nu1\talias\n",
        )
        .unwrap();
        fs.write_file(
            "/in/orders.tsv",
            b"u1\tbook\nu3\tpen\nu1\tlamp\nu9\tghost\n",
        )
        .unwrap();
        let job = equi_join_job(
            vec!["/in/users.tsv".into()],
            vec!["/in/orders.tsv".into()],
            "/joined",
            2,
            1024,
        );
        let result = JobTracker::new(&topo).run(&fs, &job).unwrap();
        assert_eq!(result.reduce_tasks, 2);
        let mut got = output_lines(&fs, &result.output_files);
        got.sort();
        // u1: 2 users x 2 orders = 4 rows; u3: 1 x 1; u2/u9 unmatched.
        let mut expected = vec![
            "u1\talice\tbook".to_string(),
            "u1\talice\tlamp".to_string(),
            "u1\talias\tbook".to_string(),
            "u1\talias\tlamp".to_string(),
            "u3\tcarol\tpen".to_string(),
        ];
        expected.sort();
        assert_eq!(got, expected);
        assert!(
            result.shuffle.segments_fetched > 0,
            "the join must move its rows through the storage shuffle"
        );
    }

    #[test]
    fn equi_join_identical_on_both_backends_and_vs_oracle() {
        let (topo_b, bsfs) = bsfs_fs(3);
        let (topo_h, hdfs) = hdfs_fs(3);
        let mut left = String::new();
        let mut right = String::new();
        for i in 0..60 {
            left.push_str(&format!("k{:02}\tleft-{i}\n", i % 20));
            right.push_str(&format!("k{:02}\tright-{i}\n", i % 15));
        }
        let mut outputs = Vec::new();
        for (topo, fs) in [
            (&topo_b, &bsfs as &dyn DistFs),
            (&topo_h, &hdfs as &dyn DistFs),
        ] {
            fs.write_file("/in/left.tsv", left.as_bytes()).unwrap();
            fs.write_file("/in/right.tsv", right.as_bytes()).unwrap();
            let make_job = |out: &str| {
                equi_join_job(
                    vec!["/in/left.tsv".into()],
                    vec!["/in/right.tsv".into()],
                    out,
                    3,
                    512,
                )
            };
            let jt = JobTracker::new(topo);
            let dist = jt.run(fs, &make_job("/out-dist")).unwrap();
            let oracle = jt.run_inmem(fs, &make_job("/out-inmem")).unwrap();
            let dist_bytes: Vec<_> = dist
                .output_files
                .iter()
                .map(|f| fs.read_file(f).unwrap())
                .collect();
            let oracle_bytes: Vec<_> = oracle
                .output_files
                .iter()
                .map(|f| fs.read_file(f).unwrap())
                .collect();
            assert_eq!(dist_bytes, oracle_bytes, "join shuffle vs in-memory oracle");
            outputs.push(dist_bytes);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn sample_sort_boundaries_are_sorted_and_bounded() {
        let (_, fs) = bsfs_fs(2);
        let mut text = String::new();
        for i in (0..100).rev() {
            text.push_str(&format!("key-{i:03}\n"));
        }
        fs.write_file("/in/keys.txt", text.as_bytes()).unwrap();
        let b = sample_sort_boundaries(&fs, &["/in/keys.txt".into()], 4, 256, 1_000).unwrap();
        assert!(b.len() <= 3);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        let b1 = sample_sort_boundaries(&fs, &["/in/keys.txt".into()], 1, 256, 1_000).unwrap();
        assert!(b1.is_empty(), "single reducer needs no boundaries");
    }
}
