//! The namenode: namespace, chunk allocation and data location.
//!
//! "HDFS uses the same design concepts as GFS: servers called datanodes are
//! responsible for storing data, while the namenode takes care of the file
//! system namespace and the data location. [...] HDFS does not support
//! concurrent writes to the same file; moreover, once a file is created,
//! written and closed, the data cannot be overwritten or appended to"
//! (paper §II-C). The namenode below enforces exactly those semantics:
//!
//! * files go through a two-state lifecycle — *under construction* (a single
//!   writer appends chunks) and *closed* (immutable, readable);
//! * every chunk allocation picks replicas through the rack-aware
//!   [`crate::placement::PlacementPolicy`];
//! * the namenode answers locality queries (`locate`) so the MapReduce
//!   scheduler can place tasks near the data.

use crate::datanode::{ChunkId, Datanode, DatanodeId};
use crate::error::{HdfsError, HdfsResult};
use crate::placement::PlacementPolicy;
use parking_lot::Mutex;
use simcluster::topology::ClusterTopology;
use simcluster::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle state of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileState {
    /// Created but not yet closed; a single writer is appending chunks.
    UnderConstruction,
    /// Closed; immutable and readable.
    Closed,
}

/// Metadata of one chunk of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Globally unique chunk id.
    pub id: ChunkId,
    /// Number of bytes in the chunk (the last chunk of a file may be short).
    pub size: u64,
    /// Datanodes holding replicas, in pipeline order.
    pub replicas: Vec<DatanodeId>,
}

/// Metadata of one file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Lifecycle state.
    pub state: FileState,
    /// Chunks in file order.
    pub chunks: Vec<ChunkInfo>,
}

impl FileMeta {
    /// Total size of the file in bytes.
    pub fn size(&self) -> u64 {
        self.chunks.iter().map(|c| c.size).sum()
    }
}

/// Location of a contiguous piece of a file, for locality queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLocation {
    /// Offset of this piece within the file.
    pub offset: u64,
    /// Length of this piece.
    pub len: u64,
    /// Cluster nodes holding replicas of the piece, in placement order.
    pub nodes: Vec<NodeId>,
}

/// Normalise an absolute path (leading '/', no duplicate or trailing slashes).
pub fn normalize(path: &str) -> HdfsResult<String> {
    if path.is_empty() || !path.starts_with('/') {
        return Err(HdfsError::InvalidPath(path.to_string()));
    }
    let mut parts = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => continue,
            ".." => return Err(HdfsError::InvalidPath(path.to_string())),
            p => parts.push(p),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// Parent directory of a normalised path.
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => path[..idx].to_string(),
    }
}

struct Inner {
    files: BTreeMap<String, FileMeta>,
    directories: BTreeSet<String>,
}

/// The centralized namenode.
pub struct Namenode {
    chunk_size: u64,
    replication: usize,
    inner: Mutex<Inner>,
    datanodes: Vec<Arc<Datanode>>,
    placement: PlacementPolicy,
    next_chunk: AtomicU64,
}

impl Namenode {
    /// Create a namenode over the given datanodes.
    pub fn new(
        topology: &ClusterTopology,
        datanodes: Vec<Arc<Datanode>>,
        chunk_size: u64,
        replication: usize,
        seed: u64,
    ) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        assert!(replication >= 1, "replication must be at least 1");
        assert!(!datanodes.is_empty(), "at least one datanode is required");
        let mut directories = BTreeSet::new();
        directories.insert("/".to_string());
        Namenode {
            chunk_size,
            replication,
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                directories,
            }),
            datanodes,
            placement: PlacementPolicy::new(topology, seed),
            next_chunk: AtomicU64::new(0),
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// All datanodes (tests, failure injection).
    pub fn datanodes(&self) -> &[Arc<Datanode>] {
        &self.datanodes
    }

    /// A datanode by id.
    pub fn datanode(&self, id: DatanodeId) -> Option<&Arc<Datanode>> {
        self.datanodes.get(id.0 as usize)
    }

    /// The placement policy (used by readers to order replicas by proximity).
    pub fn placement(&self) -> &PlacementPolicy {
        &self.placement
    }

    /// Register a new file in the under-construction state. The parent
    /// directory is created implicitly (Hadoop's `create` behaviour).
    pub fn create_file(&self, path: &str) -> HdfsResult<String> {
        let path = normalize(path)?;
        if path == "/" {
            return Err(HdfsError::IsADirectory(path));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) || inner.directories.contains(&path) {
            return Err(HdfsError::AlreadyExists(path));
        }
        // Implicitly create ancestors.
        let mut current = String::new();
        let parent = parent_of(&path);
        for part in parent.split('/').filter(|p| !p.is_empty()) {
            current.push('/');
            current.push_str(part);
            if inner.files.contains_key(&current) {
                return Err(HdfsError::NotADirectory(current));
            }
            inner.directories.insert(current.clone());
        }
        inner.files.insert(
            path.clone(),
            FileMeta {
                state: FileState::UnderConstruction,
                chunks: Vec::new(),
            },
        );
        Ok(path)
    }

    /// Allocate a chunk of `size` bytes for a file under construction,
    /// choosing replica datanodes for a writer running on `writer_node`.
    pub fn allocate_chunk(
        &self,
        path: &str,
        size: u64,
        writer_node: NodeId,
    ) -> HdfsResult<ChunkInfo> {
        let path = normalize(path)?;
        let replicas = self
            .placement
            .choose(&self.datanodes, self.replication, writer_node);
        if replicas.is_empty() {
            return Err(HdfsError::NoDatanodes);
        }
        let mut inner = self.inner.lock();
        let meta = inner
            .files
            .get_mut(&path)
            .ok_or(HdfsError::FileNotFound(path.clone()))?;
        if meta.state != FileState::UnderConstruction {
            return Err(HdfsError::WrongFileState {
                path,
                expected: "under construction",
            });
        }
        let id = ChunkId(self.next_chunk.fetch_add(1, Ordering::Relaxed));
        let info = ChunkInfo { id, size, replicas };
        meta.chunks.push(info.clone());
        Ok(info)
    }

    /// Close a file, making it immutable and readable.
    pub fn complete_file(&self, path: &str) -> HdfsResult<()> {
        let path = normalize(path)?;
        let mut inner = self.inner.lock();
        let meta = inner
            .files
            .get_mut(&path)
            .ok_or(HdfsError::FileNotFound(path.clone()))?;
        if meta.state != FileState::UnderConstruction {
            return Err(HdfsError::WrongFileState {
                path,
                expected: "under construction",
            });
        }
        meta.state = FileState::Closed;
        Ok(())
    }

    /// Metadata of a closed file (readers use this).
    pub fn get_file(&self, path: &str) -> HdfsResult<FileMeta> {
        let path = normalize(path)?;
        let inner = self.inner.lock();
        if inner.directories.contains(&path) {
            return Err(HdfsError::IsADirectory(path));
        }
        let meta = inner
            .files
            .get(&path)
            .ok_or(HdfsError::FileNotFound(path.clone()))?;
        if meta.state != FileState::Closed {
            return Err(HdfsError::WrongFileState {
                path,
                expected: "closed",
            });
        }
        Ok(meta.clone())
    }

    /// Size of a closed file.
    pub fn file_size(&self, path: &str) -> HdfsResult<u64> {
        Ok(self.get_file(path)?.size())
    }

    /// Does the path exist (file or directory)?
    pub fn exists(&self, path: &str) -> bool {
        match normalize(path) {
            Ok(p) => {
                let inner = self.inner.lock();
                inner.files.contains_key(&p) || inner.directories.contains(&p)
            }
            Err(_) => false,
        }
    }

    /// Create a directory and its ancestors.
    pub fn mkdirs(&self, path: &str) -> HdfsResult<()> {
        let path = normalize(path)?;
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(HdfsError::AlreadyExists(path));
        }
        let mut current = String::new();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            current.push('/');
            current.push_str(part);
            if inner.files.contains_key(&current) {
                return Err(HdfsError::NotADirectory(current));
            }
            inner.directories.insert(current.clone());
        }
        Ok(())
    }

    /// List the immediate children of a directory.
    pub fn list(&self, path: &str) -> HdfsResult<Vec<String>> {
        let path = normalize(path)?;
        let inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(HdfsError::NotADirectory(path));
        }
        if !inner.directories.contains(&path) {
            return Err(HdfsError::FileNotFound(path));
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut children = BTreeSet::new();
        for candidate in inner.files.keys().chain(inner.directories.iter()) {
            if candidate == &path {
                continue;
            }
            if let Some(rest) = candidate.strip_prefix(&prefix) {
                if let Some(first) = rest.split('/').next() {
                    if !first.is_empty() {
                        children.insert(format!("{prefix}{first}"));
                    }
                }
            }
        }
        Ok(children.into_iter().collect())
    }

    /// Remove a file, returning its chunks so the caller can release them on
    /// the datanodes.
    pub fn remove_file(&self, path: &str) -> HdfsResult<Vec<ChunkInfo>> {
        let path = normalize(path)?;
        let mut inner = self.inner.lock();
        if inner.directories.contains(&path) {
            return Err(HdfsError::IsADirectory(path));
        }
        match inner.files.remove(&path) {
            Some(meta) => Ok(meta.chunks),
            None => Err(HdfsError::FileNotFound(path)),
        }
    }

    /// Remove a directory (recursively if asked); returns the chunks of every
    /// removed file.
    pub fn remove_dir(&self, path: &str, recursive: bool) -> HdfsResult<Vec<ChunkInfo>> {
        let path = normalize(path)?;
        if path == "/" {
            return Err(HdfsError::InvalidPath(
                "cannot remove the root directory".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(HdfsError::NotADirectory(path));
        }
        if !inner.directories.contains(&path) {
            return Err(HdfsError::FileNotFound(path));
        }
        let prefix = format!("{path}/");
        let child_files: Vec<String> = inner
            .files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        let child_dirs: Vec<String> = inner
            .directories
            .iter()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        if !recursive && (!child_files.is_empty() || !child_dirs.is_empty()) {
            return Err(HdfsError::DirectoryNotEmpty(path));
        }
        let mut chunks = Vec::new();
        for f in child_files {
            if let Some(meta) = inner.files.remove(&f) {
                chunks.extend(meta.chunks);
            }
        }
        for d in child_dirs {
            inner.directories.remove(&d);
        }
        inner.directories.remove(&path);
        Ok(chunks)
    }

    /// Rename a file or directory (directories move their whole subtree).
    pub fn rename(&self, from: &str, to: &str) -> HdfsResult<()> {
        let from = normalize(from)?;
        let to = normalize(to)?;
        if from == "/" || to == "/" {
            return Err(HdfsError::InvalidPath(
                "cannot rename the root directory".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&to) || inner.directories.contains(&to) {
            return Err(HdfsError::AlreadyExists(to));
        }
        let to_parent = parent_of(&to);
        if !inner.directories.contains(&to_parent) {
            return Err(HdfsError::ParentMissing(to_parent));
        }
        if let Some(meta) = inner.files.remove(&from) {
            inner.files.insert(to, meta);
            return Ok(());
        }
        if inner.directories.contains(&from) {
            let prefix = format!("{from}/");
            let moved: Vec<(String, FileMeta)> = inner
                .files
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            for (k, v) in moved {
                inner.files.remove(&k);
                inner
                    .files
                    .insert(format!("{to}/{}", &k[prefix.len()..]), v);
            }
            let moved_dirs: Vec<String> = inner
                .directories
                .iter()
                .filter(|k| k.starts_with(&prefix) || **k == from)
                .cloned()
                .collect();
            for d in moved_dirs {
                inner.directories.remove(&d);
                let new_key = if d == from {
                    to.clone()
                } else {
                    format!("{to}/{}", &d[prefix.len()..])
                };
                inner.directories.insert(new_key);
            }
            return Ok(());
        }
        Err(HdfsError::FileNotFound(from))
    }

    /// Locality query: which cluster nodes hold each chunk overlapping
    /// `[offset, offset+len)` of a closed file.
    pub fn locate(&self, path: &str, offset: u64, len: u64) -> HdfsResult<Vec<ChunkLocation>> {
        let meta = self.get_file(path)?;
        let mut out = Vec::new();
        let mut chunk_start = 0u64;
        let end = offset + len;
        for chunk in &meta.chunks {
            let chunk_end = chunk_start + chunk.size;
            if chunk_end > offset && chunk_start < end {
                let piece_start = chunk_start.max(offset);
                let piece_end = chunk_end.min(end);
                let nodes = chunk
                    .replicas
                    .iter()
                    .filter_map(|d| self.datanode(*d).map(|dn| dn.node()))
                    .collect();
                out.push(ChunkLocation {
                    offset: piece_start,
                    len: piece_end - piece_start,
                    nodes,
                });
            }
            chunk_start = chunk_end;
        }
        Ok(out)
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn namenode() -> Namenode {
        let topo = ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(2)
            .build();
        let datanodes: Vec<Arc<Datanode>> = topo
            .all_nodes()
            .enumerate()
            .map(|(i, n)| Arc::new(Datanode::in_memory(DatanodeId(i as u32), n)))
            .collect();
        Namenode::new(&topo, datanodes, 128, 2, 17)
    }

    #[test]
    fn file_lifecycle_create_allocate_complete_read() {
        let nn = namenode();
        nn.create_file("/data/file").unwrap();
        // Cannot read a file under construction.
        assert!(matches!(
            nn.get_file("/data/file"),
            Err(HdfsError::WrongFileState { .. })
        ));
        let c1 = nn.allocate_chunk("/data/file", 128, NodeId(0)).unwrap();
        let c2 = nn.allocate_chunk("/data/file", 60, NodeId(0)).unwrap();
        assert_ne!(c1.id, c2.id);
        assert_eq!(c1.replicas.len(), 2);
        nn.complete_file("/data/file").unwrap();
        let meta = nn.get_file("/data/file").unwrap();
        assert_eq!(meta.size(), 188);
        assert_eq!(meta.chunks.len(), 2);
        assert_eq!(nn.file_size("/data/file").unwrap(), 188);
        // Write-once: no more chunks, no second close.
        assert!(matches!(
            nn.allocate_chunk("/data/file", 10, NodeId(0)),
            Err(HdfsError::WrongFileState { .. })
        ));
        assert!(matches!(
            nn.complete_file("/data/file"),
            Err(HdfsError::WrongFileState { .. })
        ));
    }

    #[test]
    fn duplicate_create_and_missing_files() {
        let nn = namenode();
        nn.create_file("/f").unwrap();
        assert!(matches!(
            nn.create_file("/f"),
            Err(HdfsError::AlreadyExists(_))
        ));
        assert!(matches!(
            nn.get_file("/ghost"),
            Err(HdfsError::FileNotFound(_))
        ));
        assert!(matches!(
            nn.allocate_chunk("/ghost", 1, NodeId(0)),
            Err(HdfsError::FileNotFound(_))
        ));
        assert!(matches!(
            nn.remove_file("/ghost"),
            Err(HdfsError::FileNotFound(_))
        ));
    }

    #[test]
    fn listing_and_directories() {
        let nn = namenode();
        nn.create_file("/a/b/file1").unwrap();
        nn.create_file("/a/file2").unwrap();
        nn.mkdirs("/a/empty").unwrap();
        assert!(nn.exists("/a/b"));
        let children = nn.list("/a").unwrap();
        assert_eq!(children, vec!["/a/b", "/a/empty", "/a/file2"]);
        assert!(matches!(
            nn.list("/a/file2"),
            Err(HdfsError::NotADirectory(_))
        ));
        assert_eq!(nn.file_count(), 2);
    }

    #[test]
    fn delete_and_rename() {
        let nn = namenode();
        nn.create_file("/tmp/out").unwrap();
        nn.allocate_chunk("/tmp/out", 50, NodeId(1)).unwrap();
        nn.complete_file("/tmp/out").unwrap();
        nn.mkdirs("/final").unwrap();
        nn.rename("/tmp/out", "/final/out").unwrap();
        assert!(!nn.exists("/tmp/out"));
        assert_eq!(nn.file_size("/final/out").unwrap(), 50);
        let chunks = nn.remove_file("/final/out").unwrap();
        assert_eq!(chunks.len(), 1);
        // Directory deletion collects chunks of all files below it.
        nn.create_file("/job/o1").unwrap();
        nn.allocate_chunk("/job/o1", 10, NodeId(0)).unwrap();
        nn.create_file("/job/sub/o2").unwrap();
        nn.allocate_chunk("/job/sub/o2", 10, NodeId(0)).unwrap();
        assert!(matches!(
            nn.remove_dir("/job", false),
            Err(HdfsError::DirectoryNotEmpty(_))
        ));
        let chunks = nn.remove_dir("/job", true).unwrap();
        assert_eq!(chunks.len(), 2);
        assert!(!nn.exists("/job"));
    }

    #[test]
    fn locate_reports_chunk_pieces() {
        let nn = namenode();
        nn.create_file("/big").unwrap();
        nn.allocate_chunk("/big", 128, NodeId(0)).unwrap();
        nn.allocate_chunk("/big", 128, NodeId(0)).unwrap();
        nn.allocate_chunk("/big", 44, NodeId(0)).unwrap();
        nn.complete_file("/big").unwrap();
        let all = nn.locate("/big", 0, 300).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].offset, 0);
        assert_eq!(all[0].len, 128);
        assert_eq!(all[2].len, 44);
        assert!(all.iter().all(|l| !l.nodes.is_empty()));
        // A sub-range crossing one boundary returns two clamped pieces.
        let partial = nn.locate("/big", 100, 60).unwrap();
        assert_eq!(partial.len(), 2);
        assert_eq!(partial[0].offset, 100);
        assert_eq!(partial[0].len, 28);
        assert_eq!(partial[1].offset, 128);
        assert_eq!(partial[1].len, 32);
    }

    #[test]
    fn first_replica_is_local_to_the_writer() {
        let nn = namenode();
        let chunk = nn
            .create_file("/local")
            .and_then(|_| nn.allocate_chunk("/local", 10, NodeId(3)))
            .unwrap();
        let first = nn.datanode(chunk.replicas[0]).unwrap();
        assert_eq!(first.node(), NodeId(3));
    }
}
