//! Criterion bench for F1 (paper §V future work): concurrent appends to one
//! shared blob versus one blob per writer.

use blobseer::{BlobSeer, BlobSeerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shared_blob_appends(clients: usize) {
    let block = 64 * 1024u64;
    let sys = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(block),
    );
    let blob = sys.client().create(Some(block)).unwrap();
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = sys.client_on(sys.topology().node((c % 8) as u32));
            s.spawn(move || {
                let payload = vec![c as u8; block as usize];
                for _ in 0..16 {
                    client.append(blob, &payload).unwrap();
                }
            });
        }
    });
}

fn separate_blob_appends(clients: usize) {
    let block = 64 * 1024u64;
    let sys = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(block),
    );
    std::thread::scope(|s| {
        for c in 0..clients {
            let client = sys.client_on(sys.topology().node((c % 8) as u32));
            s.spawn(move || {
                let blob = client.create(Some(block)).unwrap();
                let payload = vec![c as u8; block as usize];
                for _ in 0..16 {
                    client.append(blob, &payload).unwrap();
                }
            });
        }
    });
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("F1_concurrent_append");
    group.sample_size(10);
    for &clients in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("shared-blob", clients),
            &clients,
            |b, &n| b.iter(|| shared_blob_appends(n)),
        );
        group.bench_with_input(
            BenchmarkId::new("separate-blobs", clients),
            &clients,
            |b, &n| b.iter(|| separate_blob_appends(n)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_append);
criterion_main!(benches);
