//! # blobseer — a versioning-oriented blob store for heavy access concurrency
//!
//! This crate is a from-scratch Rust implementation of **BlobSeer**, the
//! data-management service the paper builds its storage layer on
//! ("Large-Scale Distributed Storage for Highly Concurrent MapReduce
//! Applications", Moise et al., IPDPS 2010 workshops, §III-A). The design
//! follows the paper's description:
//!
//! * data is organised in **blobs** — huge sequences of bytes identified by a
//!   [`types::BlobId`] — split into fixed-size **pages** (configurable per
//!   blob);
//! * **providers** ([`provider::Provider`]) store pages, as assigned by the
//!   **provider manager** ([`provider_manager::ProviderManager`]), whose
//!   allocation strategy aims at load balancing;
//! * page locations for each blob version live in a **distributed hash
//!   table** of metadata providers ([`metadata`]), organised as versioned
//!   segment trees that share unchanged subtrees between versions;
//! * a centralized **version manager** ([`version_manager::VersionManager`])
//!   assigns version numbers and guarantees that concurrent writes to the
//!   same blob publish in a consistent, gap-free order;
//! * **data is never overwritten**: every write or append produces a new
//!   snapshot version, and every past version stays readable;
//! * fault tolerance comes from page-level replication (and the durable
//!   [`kvstore`] backend standing in for BerkeleyDB), kept effective under
//!   churn by heartbeat failure detection and an active re-replication
//!   repair loop on both storage tiers (see [`BlobSeer::repair`] and
//!   [`BlobSeerConfig::with_repair_interval`]).
//!
//! The whole deployment runs in one process: providers, metadata providers
//! and the version manager are objects, and clients are plain values that can
//! be moved across threads. The concurrency is real (threads, locks,
//! atomics); only the network is replaced by function calls, with the
//! `simcluster` crate supplying a network *model* when experiments need
//! paper-scale numbers.
//!
//! ## Quick example
//!
//! ```
//! use blobseer::{BlobSeer, BlobSeerConfig};
//!
//! let system = BlobSeer::new(BlobSeerConfig::for_tests());
//! let client = system.client();
//!
//! let blob = client.create(None).unwrap();
//! let v1 = client.append(blob, b"hello ").unwrap();
//! let v2 = client.append(blob, b"world").unwrap();
//!
//! // The latest version sees both writes...
//! assert_eq!(&client.read_latest(blob, 0, 11).unwrap()[..], b"hello world");
//! // ...while the older snapshot still reads exactly as it was.
//! assert_eq!(&client.read(blob, v1, 0, 6).unwrap()[..], b"hello ");
//! assert!(v2 > v1);
//! ```

pub mod client;
pub mod config;
pub mod error;
pub mod gc;
pub mod metadata;
pub mod provider;
pub mod provider_manager;
pub mod types;
pub mod version_manager;

pub use client::{BlobSeer, BlobSeerClient, PageLocation};
pub use config::BlobSeerConfig;
pub use error::{BlobResult, BlobSeerError};
pub use gc::GcReport;
pub use metadata::store::MetadataStats;
pub use provider::{Provider, ProviderStats};
pub use provider_manager::{PlacementStrategy, ProviderManager, ProviderRepairReport};
pub use types::{BlobId, ByteRange, PageMath, ProviderId, Version};
pub use version_manager::{ShardStats, VersionInfo, VersionManager, WriteIntent, WriteTicket};
