//! F1 — future-work experiment (paper §V): concurrent appends to a *shared*
//! file, "enabling the MapReduce workers to write the reduce output to the
//! same file, instead of creating several output files". BlobSeer already
//! supports this; the experiment measures N clients appending concurrently to
//! one blob versus each writing its own blob, and checks no append is lost.
//!
//! The client sweep deliberately ends at 80 (a 10x jump over the mid-range
//! points): since the data plane moved onto the actor/executor core, page
//! I/O concurrency is bounded by the miniexec pool, so the system-thread
//! census must stay flat across the whole sweep — asserted below.
//!
//! `BENCH_SMOKE=1` shrinks everything to a does-it-run configuration (CI).

use blobseer::{BlobSeer, BlobSeerConfig};
use std::time::{Duration, Instant};

#[derive(serde::Serialize)]
struct F1Record {
    clients: usize,
    shared_mibps: f64,
    separate_mibps: f64,
    census_peak: usize,
}

fn deployment() -> std::sync::Arc<BlobSeer> {
    BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(8)
            .with_page_size(64 * 1024),
    )
}

/// Wait (bounded) for dropped deployments' actor threads to exit, so one
/// sweep point's teardown cannot overlap the next point's spawn and ratchet
/// the census high-water mark.
fn wait_live_back_to(target: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while miniexec::census::live() > target && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn main() {
    let smoke = bench::smoke_mode();
    let block = 64 * 1024u64;
    let (client_counts, appends_per_client): (&[usize], usize) = if smoke {
        (&[2, 20], 8)
    } else {
        (&[2, 4, 8, 80], 64)
    };
    // Start the executor pool before taking the census baseline: its workers
    // live for the whole process, so they belong in every point's floor.
    miniexec::block_on(|| {});
    let idle_live = miniexec::census::live();
    println!("== F1: concurrent appends to one shared blob vs one blob per client ==");
    println!();
    println!(
        "{:<10} {:>22} {:>26} {:>14}",
        "clients", "shared blob (MiB/s)", "per-client blobs (MiB/s)", "census peak"
    );
    let mut records = Vec::new();
    for &clients in client_counts {
        let total_bytes = (clients * appends_per_client) as u64 * block;

        // Shared blob: everyone appends to the same blob.
        let shared_sys = deployment();
        let client0 = shared_sys.client();
        let blob = client0.create(Some(block)).unwrap();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let client = shared_sys.client_on(shared_sys.topology().node((c % 8) as u32));
                s.spawn(move || {
                    let payload = vec![c as u8; block as usize];
                    for _ in 0..appends_per_client {
                        client.append(blob, &payload).unwrap();
                    }
                });
            }
        });
        let shared_secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            client0.size(blob).unwrap(),
            total_bytes,
            "no append may be lost"
        );
        let shared_report = bench::write_path_report(&shared_sys);
        drop(client0);
        drop(shared_sys);
        wait_live_back_to(idle_live);

        // Separate blobs: the current Hadoop-style one-output-per-reducer.
        let separate_sys = deployment();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let client = separate_sys.client_on(separate_sys.topology().node((c % 8) as u32));
                s.spawn(move || {
                    let blob = client.create(Some(block)).unwrap();
                    let payload = vec![c as u8; block as usize];
                    for _ in 0..appends_per_client {
                        client.append(blob, &payload).unwrap();
                    }
                });
            }
        });
        let separate_secs = t0.elapsed().as_secs_f64();
        drop(separate_sys);
        wait_live_back_to(idle_live);

        let census_peak = miniexec::census::peak();
        let mib = total_bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{:<10} {:>22.1} {:>26.1} {:>14}",
            clients,
            mib / shared_secs,
            mib / separate_secs,
            census_peak,
        );
        println!("    shared-blob {shared_report}");
        records.push(F1Record {
            clients,
            shared_mibps: mib / shared_secs,
            separate_mibps: mib / separate_secs,
            census_peak,
        });
    }

    // The whole point of the actor core: the system's thread high-water mark
    // is set by the (fixed) pool and per-deployment actor count, not by how
    // many clients pile on. The first sweep point already instantiates the
    // full pool and an identical deployment, so every later, larger point
    // must report the identical peak.
    let first = records.first().expect("sweep is non-empty");
    let last = records.last().expect("sweep is non-empty");
    assert_eq!(
        first.census_peak,
        last.census_peak,
        "system thread census must stay flat as clients scale ({}x)",
        last.clients / first.clients,
    );
    println!();
    println!(
        "census: {} system threads at {} clients and at {} clients (flat)",
        last.census_peak, first.clients, last.clients,
    );

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        appends_per_client: usize,
        block_bytes: u64,
        sweep: Vec<F1Record>,
    }
    bench::emit_bench_json(
        "F1",
        &Snapshot {
            experiment: "F1",
            smoke,
            appends_per_client,
            block_bytes: block,
            sweep: records,
        },
    );
}
