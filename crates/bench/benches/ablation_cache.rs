//! Criterion bench for A2: BSFS client cache enabled vs disabled for the
//! 4 KiB-record sequential access pattern (paper §III-B's motivation for the
//! cache).

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_sequential_io(cache: bool) -> u64 {
    let block = 256 * 1024u64;
    let storage = BlobSeer::new(
        BlobSeerConfig::default()
            .with_providers(4)
            .with_page_size(block),
    );
    let fs = Bsfs::new(
        storage,
        BsfsConfig::default()
            .with_block_size(block)
            .with_cache(cache),
    );
    let record = vec![7u8; 4096];
    let mut w = fs.create("/data").unwrap();
    for _ in 0..512 {
        w.write(&record).unwrap();
    }
    w.close().unwrap();
    let mut r = fs.open("/data").unwrap();
    let size = fs.len("/data").unwrap();
    let mut offset = 0;
    let mut total = 0u64;
    while offset < size {
        let n = 4096.min(size - offset);
        total += r.read_at(offset, n).unwrap().len() as u64;
        offset += n;
    }
    total
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("A2_client_cache");
    group.sample_size(10);
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        group.bench_with_input(
            BenchmarkId::new(label, "4KiB-records"),
            &enabled,
            |b, &enabled| b.iter(|| run_sequential_io(enabled)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
