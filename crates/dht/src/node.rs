//! A single metadata provider node.
//!
//! Each node is a thread-safe key-value map plus a liveness flag. The `Dht`
//! front-end decides *which* nodes a key lives on; the node itself only
//! stores and serves.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Identity of a DHT node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DhtNodeId(pub u64);

/// One metadata provider: stores key-value pairs and can be killed/revived
/// for failure-injection experiments.
pub struct DhtNode {
    id: DhtNodeId,
    data: RwLock<HashMap<Vec<u8>, Bytes>>,
    alive: AtomicBool,
    data_bytes: AtomicU64,
}

impl DhtNode {
    /// Create a live, empty node.
    pub fn new(id: DhtNodeId) -> Self {
        DhtNode {
            id,
            data: RwLock::new(HashMap::new()),
            alive: AtomicBool::new(true),
            data_bytes: AtomicU64::new(0),
        }
    }

    /// This node's id.
    pub fn id(&self) -> DhtNodeId {
        self.id
    }

    /// Store a value (replaces any existing value for the key).
    pub fn put(&self, key: &[u8], value: Bytes) {
        let mut guard = self.data.write();
        let new_len = value.len() as u64;
        match guard.insert(key.to_vec(), value) {
            Some(old) => {
                let old_len = old.len() as u64;
                if new_len >= old_len {
                    self.data_bytes
                        .fetch_add(new_len - old_len, Ordering::Relaxed);
                } else {
                    self.data_bytes
                        .fetch_sub(old_len - new_len, Ordering::Relaxed);
                }
            }
            None => {
                self.data_bytes.fetch_add(new_len, Ordering::Relaxed);
            }
        }
    }

    /// Fetch a value.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.data.read().get(key).cloned()
    }

    /// Remove a value; returns whether one was present.
    pub fn remove(&self, key: &[u8]) -> bool {
        match self.data.write().remove(key) {
            Some(old) => {
                self.data_bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// True when the node stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of values stored.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of all entries (used by rebalancing).
    pub fn entries(&self) -> Vec<(Vec<u8>, Bytes)> {
        self.data
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Is the node currently serving requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash: the node stops serving but keeps its data (so a
    /// revive models a restart from persistent storage).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring the node back.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let n = DhtNode::new(DhtNodeId(1));
        assert_eq!(n.id(), DhtNodeId(1));
        assert!(n.is_empty());
        n.put(b"a", Bytes::from_static(b"1"));
        n.put(b"b", Bytes::from_static(b"22"));
        assert_eq!(n.len(), 2);
        assert_eq!(n.data_bytes(), 3);
        assert_eq!(n.get(b"a").unwrap(), Bytes::from_static(b"1"));
        assert!(n.remove(b"a"));
        assert!(!n.remove(b"a"));
        assert_eq!(n.data_bytes(), 2);
    }

    #[test]
    fn overwrite_updates_byte_count() {
        let n = DhtNode::new(DhtNodeId(0));
        n.put(b"k", Bytes::from_static(b"0123456789"));
        n.put(b"k", Bytes::from_static(b"xy"));
        assert_eq!(n.data_bytes(), 2);
        n.put(b"k", Bytes::from_static(b"0123"));
        assert_eq!(n.data_bytes(), 4);
    }

    #[test]
    fn kill_and_revive_preserve_data() {
        let n = DhtNode::new(DhtNodeId(3));
        n.put(b"k", Bytes::from_static(b"v"));
        assert!(n.is_alive());
        n.kill();
        assert!(!n.is_alive());
        // Data survives the "crash" (models durable storage).
        n.revive();
        assert!(n.is_alive());
        assert_eq!(n.get(b"k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn entries_snapshot() {
        let n = DhtNode::new(DhtNodeId(5));
        for i in 0..10u8 {
            n.put(&[i], Bytes::from(vec![i; 4]));
        }
        let mut entries = n.entries();
        entries.sort();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[3].0, vec![3u8]);
    }
}
