//! Error type for BSFS file-system operations.

use std::fmt;

/// Result alias for BSFS operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors surfaced by the BSFS layer.
#[derive(Debug)]
pub enum FsError {
    /// The path does not name an existing file.
    FileNotFound(String),
    /// The path already names a file or directory.
    AlreadyExists(String),
    /// The path is not a directory (for list operations) or is a directory
    /// where a file was expected.
    NotADirectory(String),
    /// The path names a directory where a file was expected.
    IsADirectory(String),
    /// The parent directory of the path does not exist.
    ParentMissing(String),
    /// A path was syntactically invalid (empty, not absolute, ...).
    InvalidPath(String),
    /// A read past the end of a file.
    OutOfBounds {
        path: String,
        requested_end: u64,
        size: u64,
    },
    /// The writer was already closed.
    WriterClosed,
    /// The directory is not empty and recursive deletion was not requested.
    DirectoryNotEmpty(String),
    /// An error bubbled up from the BlobSeer storage layer.
    Storage(blobseer::BlobSeerError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::ParentMissing(p) => write!(f, "parent directory does not exist: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::OutOfBounds {
                path,
                requested_end,
                size,
            } => {
                write!(
                    f,
                    "read past end of {path}: requested byte {requested_end}, size {size}"
                )
            }
            FsError::WriterClosed => write!(f, "writer already closed"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<blobseer::BlobSeerError> for FsError {
    fn from(e: blobseer::BlobSeerError) -> Self {
        FsError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(FsError::FileNotFound("/a".into())
            .to_string()
            .contains("/a"));
        assert!(FsError::AlreadyExists("/b".into())
            .to_string()
            .contains("exists"));
        assert!(FsError::InvalidPath("".into())
            .to_string()
            .contains("invalid"));
        assert!(FsError::WriterClosed.to_string().contains("closed"));
        assert!(FsError::DirectoryNotEmpty("/d".into())
            .to_string()
            .contains("not empty"));
        let e = FsError::OutOfBounds {
            path: "/f".into(),
            requested_end: 10,
            size: 5,
        };
        assert!(e.to_string().contains("10"));
        let e: FsError = blobseer::BlobSeerError::NoProviders.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
