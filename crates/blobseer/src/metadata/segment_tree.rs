//! Build (write path) and lookup (read path) of the versioned segment tree.
//!
//! The tree for a version covers `span` pages, where `span` is the number of
//! pages of the blob at that version rounded up to a power of two. Writing a
//! range of pages creates new leaves for exactly those pages and new inner
//! nodes on the paths from them to the root; every other subtree is *shared*
//! with the previous version by storing the previous node's key in the new
//! parent. This is what makes BlobSeer's snapshots cheap and is the mechanism
//! behind "data is never overwritten: each write or append operation
//! generates a new version of the blob" (paper §III-A).

use crate::error::BlobResult;
use crate::metadata::store::MetadataStore;
use crate::metadata::{NodeKey, TreeNode};
use crate::types::{BlobId, ProviderId, Version};
use std::collections::{BTreeMap, HashMap};

/// Description of a previously published tree that a new version builds upon.
#[derive(Debug, Clone, Copy)]
pub struct PrevTree {
    /// Root of the previous version's tree (`None` when the blob was empty).
    pub root: Option<NodeKey>,
    /// Span (in pages, power of two) of the previous tree; 0 when empty.
    pub span: u64,
}

impl PrevTree {
    /// The tree of an empty blob.
    pub fn empty() -> Self {
        PrevTree {
            root: None,
            span: 0,
        }
    }
}

/// A write-side buffer over the metadata store: the nodes of the version
/// under construction are collected locally and published to the DHT as one
/// batch ([`MetadataStore::put_nodes`]) when the build completes, instead of
/// one `put` per node. Reads during the build consult the buffer first (the
/// wrapper nodes pre-extending a grown tree are written and re-read within
/// the same build), then fall through to the store.
struct NodeBatch<'a> {
    store: &'a MetadataStore,
    pending: HashMap<NodeKey, TreeNode>,
}

impl<'a> NodeBatch<'a> {
    fn new(store: &'a MetadataStore) -> Self {
        NodeBatch {
            store,
            pending: HashMap::new(),
        }
    }

    fn put(&mut self, key: NodeKey, node: TreeNode) {
        // Overwrites collapse in the buffer (a grown tree's wrapper node and
        // its final root share coordinates), so the flushed batch is also
        // strictly smaller than the put-per-node stream was.
        self.pending.insert(key, node);
    }

    fn get(&self, key: NodeKey) -> BlobResult<TreeNode> {
        match self.pending.get(&key) {
            Some(node) => Ok(node.clone()),
            None => self.store.get_node(key),
        }
    }

    fn flush(self) -> BlobResult<()> {
        let nodes: Vec<(NodeKey, TreeNode)> = self.pending.into_iter().collect();
        self.store.put_nodes(&nodes)
    }
}

/// Build the segment tree for `version` of `blob`.
///
/// * `prev` — the previous version's tree (for subtree sharing).
/// * `new_span` — span in pages of the new tree (power of two, large enough
///   to cover the blob's new size).
/// * `written` — for every page index modified by this write, the ordered
///   list of providers holding its replicas.
///
/// The new nodes are published to the metadata DHT as a single batch when
/// the tree is complete; until then nothing of the version is visible.
///
/// Returns the key of the new root. Panics if `written` is empty (a write
/// always touches at least one page) or if `new_span` is not a power of two.
pub fn build_version(
    store: &MetadataStore,
    blob: BlobId,
    version: Version,
    prev: PrevTree,
    new_span: u64,
    written: &BTreeMap<u64, Vec<ProviderId>>,
) -> BlobResult<NodeKey> {
    assert!(!written.is_empty(), "a write must touch at least one page");
    assert!(
        new_span.is_power_of_two(),
        "tree span must be a power of two"
    );
    let wfirst = *written.keys().next().unwrap();
    let wlast = *written.keys().next_back().unwrap();
    assert!(
        wlast < new_span,
        "written pages must fit in the new tree span"
    );
    assert!(prev.span <= new_span, "a tree never shrinks");

    // When the blob grows, pre-extend the previous tree to the new span by
    // wrapping its root in inner nodes whose right halves are holes. The
    // recursion below can then always find "the previous node covering the
    // same (offset, span)" by simple structural descent, even for subtrees
    // that the write does not touch. Wrapper nodes carry the new version; if
    // the recursion later creates a node at the same coordinates it simply
    // overwrites the wrapper, which at that point is no longer referenced.
    let mut batch = NodeBatch::new(store);
    let mut prev = prev;
    if prev.root.is_some() {
        while prev.span < new_span {
            let span = prev.span * 2;
            let key = NodeKey {
                blob,
                version,
                offset: 0,
                span,
            };
            batch.put(
                key,
                TreeNode::Inner {
                    left: prev.root,
                    right: None,
                },
            );
            prev = PrevTree {
                root: Some(key),
                span,
            };
        }
    }

    let ctx = BuildCtx {
        blob,
        version,
        prev,
        wfirst,
        wlast,
        written,
    };
    let root = build_node(&ctx, &mut batch, 0, new_span, None)?
        .expect("the root always overlaps the written range");
    batch.flush()?;
    Ok(root)
}

struct BuildCtx<'a> {
    blob: BlobId,
    version: Version,
    prev: PrevTree,
    wfirst: u64,
    wlast: u64,
    written: &'a BTreeMap<u64, Vec<ProviderId>>,
}

/// Recursive path-copying build. `prev_here` is the previous version's node
/// covering exactly `(offset, span)`, when known from the parent.
fn build_node(
    ctx: &BuildCtx<'_>,
    batch: &mut NodeBatch<'_>,
    offset: u64,
    span: u64,
    prev_here: Option<NodeKey>,
) -> BlobResult<Option<NodeKey>> {
    // When the new tree is taller than the previous one, the previous root
    // reappears as the node covering (0, prev.span) somewhere down the left
    // spine; graft it in when we reach that position.
    let prev_here = if prev_here.is_none() && offset == 0 && span == ctx.prev.span {
        ctx.prev.root
    } else {
        prev_here
    };

    let overlaps = ctx.wfirst < offset + span && ctx.wlast >= offset;
    if !overlaps {
        // Untouched subtree: share the previous node (or keep the hole).
        return Ok(prev_here);
    }

    if span == 1 {
        // This page is inside the written range; `written` may still not
        // contain it if the caller wrote a sparse set, in which case the page
        // keeps its previous contents (or stays a hole).
        return match ctx.written.get(&offset) {
            Some(providers) => {
                let key = NodeKey {
                    blob: ctx.blob,
                    version: ctx.version,
                    offset,
                    span: 1,
                };
                batch.put(
                    key,
                    TreeNode::Leaf {
                        page: offset,
                        providers: providers.clone(),
                    },
                );
                Ok(Some(key))
            }
            None => Ok(prev_here),
        };
    }

    let half = span / 2;
    let (prev_left, prev_right) = match prev_here {
        Some(pk) => match batch.get(pk)? {
            TreeNode::Inner { left, right } => (left, right),
            // A leaf cannot cover more than one page; treat defensively.
            TreeNode::Leaf { .. } => (None, None),
        },
        None => (None, None),
    };

    let left = build_node(ctx, batch, offset, half, prev_left)?;
    let right = build_node(ctx, batch, offset + half, half, prev_right)?;

    let key = NodeKey {
        blob: ctx.blob,
        version: ctx.version,
        offset,
        span,
    };
    batch.put(key, TreeNode::Inner { left, right });
    Ok(Some(key))
}

/// Location metadata for one page, as resolved by [`lookup_range`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    /// Page index within the blob.
    pub page: u64,
    /// The version whose write created this page image. Pages are stored on
    /// providers under `(blob, created, page)`, so readers need this to build
    /// the storage key. `None` for holes.
    pub created: Option<Version>,
    /// Providers holding replicas of the page, in preference order. Empty for
    /// holes (never-written regions, which read as zeroes).
    pub providers: Vec<ProviderId>,
}

/// Resolve the location of every page in `[first_page, last_page]` under the
/// tree rooted at `root` (with span `span`). Pages falling in holes are
/// reported with an empty provider list; the client materialises them as
/// zeroes.
///
/// The descent is breadth-first and *frontier-batched*: every node of one
/// tree level that overlaps the requested range is resolved through a single
/// [`MetadataStore::get_nodes`] call (one `Dht::get_many` pass contacting
/// each responsible metadata provider once). A range lookup therefore costs
/// O(tree depth) metadata round trips instead of one round trip per visited
/// node — the read-side counterpart of the batched write publication.
pub fn lookup_range(
    store: &MetadataStore,
    root: Option<NodeKey>,
    span: u64,
    first_page: u64,
    last_page: u64,
) -> BlobResult<Vec<PageMeta>> {
    lookup_range_readahead(store, root, span, first_page, last_page, 0)
}

/// [`lookup_range`] with sequential read-ahead: in addition to resolving
/// `[first_page, last_page]`, the descent speculatively fetches the subtrees
/// covering the next `window` pages (clamped to the tree span — prefetching
/// past EOF is a silent no-op) in the *same* per-level `get_many` round
/// trips, pre-warming the node cache for the sequential scan's next range.
/// Prefetch strictly piggybacks on the demand descent: a level whose demand
/// nodes are all cache-resident issues no DHT traffic, and the speculative
/// subtrees simply stop there — read-ahead shifts misses off the critical
/// path without ever adding round trips. Prefetched pages are never part of
/// the returned metadata; with `window == 0` this is exactly `lookup_range`.
pub fn lookup_range_readahead(
    store: &MetadataStore,
    root: Option<NodeKey>,
    span: u64,
    first_page: u64,
    last_page: u64,
    window: u64,
) -> BlobResult<Vec<PageMeta>> {
    assert!(first_page <= last_page, "page range must be non-empty");
    let mut out = Vec::with_capacity((last_page - first_page + 1) as usize);
    let covered_span = span.max(1);
    // The furthest page the descent touches: the demanded range plus the
    // read-ahead window, clamped to the tree (pages beyond the span have no
    // nodes to warm).
    let fetch_last = last_page
        .saturating_add(window)
        .min(covered_span - 1)
        .max(last_page);

    // Frontier of unresolved nodes: (key, offset, span, demand). Demand
    // entries overlap the requested range; the rest are read-ahead. Holes
    // never enter the frontier — demanded holes expand to zero pages
    // immediately, prefetched holes are simply dropped.
    let mut frontier: Vec<(NodeKey, u64, u64, bool)> = Vec::new();
    match root {
        Some(key) if overlaps(0, covered_span, first_page, fetch_last) => {
            frontier.push((
                key,
                0,
                covered_span,
                overlaps(0, covered_span, first_page, last_page),
            ));
        }
        Some(_) => {}
        None => emit_holes(0, covered_span, first_page, last_page, &mut out),
    }
    while !frontier.is_empty() {
        // Demand keys first: the store attributes the tail of the batch to
        // read-ahead (separate cache-fill and counter treatment).
        frontier.sort_by_key(|&(_, _, _, demand)| !demand);
        let demand_count = frontier.iter().filter(|&&(_, _, _, d)| d).count();
        let keys: Vec<NodeKey> = frontier.iter().map(|&(key, _, _, _)| key).collect();
        let nodes = store.get_nodes_readahead(&keys, demand_count)?;
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (&(key, offset, span, entry_demand), node) in frontier.iter().zip(nodes) {
            let node = match node {
                Some(node) => node,
                // A prefetch miss the store declined to fetch (the demand
                // side was fully cached, so there was no round trip to ride
                // on): the speculative subtree just ends here.
                None => {
                    debug_assert!(!entry_demand, "demand nodes are always resolved");
                    continue;
                }
            };
            match node {
                TreeNode::Leaf { page, providers } => {
                    if page >= first_page && page <= last_page {
                        let created = if providers.is_empty() {
                            None
                        } else {
                            Some(key.version)
                        };
                        out.push(PageMeta {
                            page,
                            created,
                            providers,
                        });
                    }
                }
                TreeNode::Inner { left, right } => {
                    let half = span / 2;
                    for (child, child_offset) in [(left, offset), (right, offset + half)] {
                        if !overlaps(child_offset, half, first_page, fetch_last) {
                            continue;
                        }
                        let demand = overlaps(child_offset, half, first_page, last_page);
                        match child {
                            Some(key) => next.push((key, child_offset, half, demand)),
                            None if demand => {
                                emit_holes(child_offset, half, first_page, last_page, &mut out)
                            }
                            None => {}
                        }
                    }
                }
            }
        }
        frontier = next;
    }

    // Pages requested beyond the tree span (possible when the caller rounds
    // generously) are holes too.
    for p in first_page.max(covered_span)..=last_page {
        out.push(PageMeta {
            page: p,
            created: None,
            providers: Vec::new(),
        });
    }
    out.sort_by_key(|m| m.page);
    Ok(out)
}

/// Does the node covering `[offset, offset + span)` overlap the requested
/// inclusive page interval `[first, last]`?
fn overlaps(offset: u64, span: u64, first: u64, last: u64) -> bool {
    first < offset + span && last >= offset
}

/// Report every page of `[offset, offset + span)` that falls inside the
/// requested interval as a hole.
fn emit_holes(offset: u64, span: u64, first: u64, last: u64, out: &mut Vec<PageMeta>) {
    let lo = first.max(offset);
    let hi = last.min(offset + span - 1);
    for p in lo..=hi {
        out.push(PageMeta {
            page: p,
            created: None,
            providers: Vec::new(),
        });
    }
}

/// The retained node-at-a-time reference walk: semantically identical to
/// [`lookup_range`] but resolving every tree node with an individual
/// [`MetadataStore::get_node`] call (one DHT round trip each). Kept as the
/// differential-testing oracle for the batched descent and as the "before"
/// measurement for the read-batching experiments.
pub fn lookup_range_walk(
    store: &MetadataStore,
    root: Option<NodeKey>,
    span: u64,
    first_page: u64,
    last_page: u64,
) -> BlobResult<Vec<PageMeta>> {
    assert!(first_page <= last_page, "page range must be non-empty");
    let mut out = Vec::with_capacity((last_page - first_page + 1) as usize);
    let covered_span = span.max(1);
    collect(
        store,
        root,
        0,
        covered_span,
        first_page,
        last_page,
        &mut out,
    )?;
    for p in first_page.max(covered_span)..=last_page {
        out.push(PageMeta {
            page: p,
            created: None,
            providers: Vec::new(),
        });
    }
    out.sort_by_key(|m| m.page);
    Ok(out)
}

fn collect(
    store: &MetadataStore,
    node: Option<NodeKey>,
    offset: u64,
    span: u64,
    first: u64,
    last: u64,
    out: &mut Vec<PageMeta>,
) -> BlobResult<()> {
    // No overlap with the requested page interval.
    if last < offset || first >= offset + span {
        return Ok(());
    }
    match node {
        None => {
            let lo = first.max(offset);
            let hi = last.min(offset + span - 1);
            for p in lo..=hi {
                out.push(PageMeta {
                    page: p,
                    created: None,
                    providers: Vec::new(),
                });
            }
        }
        Some(key) => match store.get_node(key)? {
            TreeNode::Leaf { page, providers } => {
                if page >= first && page <= last {
                    let created = if providers.is_empty() {
                        None
                    } else {
                        Some(key.version)
                    };
                    out.push(PageMeta {
                        page,
                        created,
                        providers,
                    });
                }
            }
            TreeNode::Inner { left, right } => {
                let half = span / 2;
                collect(store, left, offset, half, first, last, out)?;
                collect(store, right, offset + half, half, first, last, out)?;
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::next_power_of_two;

    fn store() -> MetadataStore {
        MetadataStore::new(3, 1)
    }

    fn providers(ids: &[u32]) -> Vec<ProviderId> {
        ids.iter().map(|i| ProviderId(*i)).collect()
    }

    fn written(pages: &[(u64, &[u32])]) -> BTreeMap<u64, Vec<ProviderId>> {
        pages.iter().map(|(p, ids)| (*p, providers(ids))).collect()
    }

    /// Brute-force reference model: page index -> providers, per version.
    fn check_matches(
        store: &MetadataStore,
        root: NodeKey,
        span: u64,
        expected: &BTreeMap<u64, Vec<ProviderId>>,
        num_pages: u64,
    ) {
        let got = lookup_range(store, Some(root), span, 0, num_pages.saturating_sub(1)).unwrap();
        assert_eq!(got.len() as u64, num_pages);
        for meta in got {
            let exp = expected.get(&meta.page).cloned().unwrap_or_default();
            assert_eq!(meta.providers, exp, "page {} providers mismatch", meta.page);
        }
    }

    #[test]
    fn single_page_blob() {
        let s = store();
        let w = written(&[(0, &[1, 2])]);
        let root = build_version(&s, BlobId(0), Version(1), PrevTree::empty(), 1, &w).unwrap();
        let got = lookup_range(&s, Some(root), 1, 0, 0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].page, 0);
        assert_eq!(got[0].providers, providers(&[1, 2]));
        assert_eq!(got[0].created, Some(Version(1)));
    }

    #[test]
    fn full_write_then_partial_overwrite_shares_subtrees() {
        let s = store();
        // v1: pages 0..8 all written to provider 0.
        let w1: BTreeMap<_, _> = (0..8).map(|p| (p, providers(&[0]))).collect();
        let root1 = build_version(&s, BlobId(1), Version(1), PrevTree::empty(), 8, &w1).unwrap();
        let after_v1 = s.stats().nodes_written;
        // 8 leaves + 7 inner nodes, published as one batch.
        assert_eq!(after_v1, 15);
        assert_eq!(s.stats().batch_flushes, 1);

        // v2: overwrite pages 2..4 with provider 1.
        let w2 = written(&[(2, &[1]), (3, &[1])]);
        let prev = PrevTree {
            root: Some(root1),
            span: 8,
        };
        let root2 = build_version(&s, BlobId(1), Version(2), prev, 8, &w2).unwrap();
        let v2_new_nodes = s.stats().nodes_written - after_v1;
        // Only 2 leaves + the path to the root (inner nodes covering spans
        // 2, 4, 8) are new: 5 nodes. Everything else is shared.
        assert_eq!(
            v2_new_nodes, 5,
            "path copying should create only the changed path"
        );

        // Both versions read correctly.
        let mut expected1: BTreeMap<u64, Vec<ProviderId>> =
            (0..8).map(|p| (p, providers(&[0]))).collect();
        check_matches(&s, root1, 8, &expected1, 8);
        expected1.insert(2, providers(&[1]));
        expected1.insert(3, providers(&[1]));
        check_matches(&s, root2, 8, &expected1, 8);
    }

    #[test]
    fn append_grows_the_tree_and_shares_the_old_root() {
        let s = store();
        // v1: 4 pages.
        let w1: BTreeMap<_, _> = (0..4).map(|p| (p, providers(&[0]))).collect();
        let root1 = build_version(&s, BlobId(2), Version(1), PrevTree::empty(), 4, &w1).unwrap();
        let after_v1 = s.stats().nodes_written;

        // v2: append 4 more pages; span grows 4 -> 8.
        let w2: BTreeMap<_, _> = (4..8).map(|p| (p, providers(&[1]))).collect();
        let prev = PrevTree {
            root: Some(root1),
            span: 4,
        };
        let root2 = build_version(&s, BlobId(2), Version(2), prev, 8, &w2).unwrap();
        let v2_new = s.stats().nodes_written - after_v1;
        // New metadata records: 4 leaves for pages 4..8, inner nodes covering
        // (4,2), (6,2), (4,4), and the new root (0,8) = 8 records. The
        // wrapper that temporarily extended the old root to span 8 shares the
        // root's coordinates and collapses with it inside the write batch
        // before anything reaches the DHT. The old subtree (0,4) is shared
        // untouched.
        assert_eq!(v2_new, 8);

        let expected1: BTreeMap<_, _> = (0..4).map(|p| (p, providers(&[0]))).collect();
        check_matches(&s, root1, 4, &expected1, 4);
        let mut expected2 = expected1;
        for p in 4..8 {
            expected2.insert(p, providers(&[1]));
        }
        check_matches(&s, root2, 8, &expected2, 8);
    }

    #[test]
    fn sparse_write_leaves_holes() {
        let s = store();
        // First write lands at pages 5..7 of an empty blob: pages 0..5 are holes.
        let w = written(&[(5, &[3]), (6, &[3])]);
        let span = next_power_of_two(7);
        let root = build_version(&s, BlobId(3), Version(1), PrevTree::empty(), span, &w).unwrap();
        let got = lookup_range(&s, Some(root), span, 0, 6).unwrap();
        assert_eq!(got.len(), 7);
        for meta in got {
            if meta.page == 5 || meta.page == 6 {
                assert_eq!(meta.providers, providers(&[3]));
                assert_eq!(meta.created, Some(Version(1)));
            } else {
                assert!(
                    meta.providers.is_empty(),
                    "page {} should be a hole",
                    meta.page
                );
                assert_eq!(meta.created, None);
            }
        }
    }

    #[test]
    fn lookup_subrange_only_returns_requested_pages() {
        let s = store();
        let w: BTreeMap<_, _> = (0..16).map(|p| (p, providers(&[p as u32]))).collect();
        let root = build_version(&s, BlobId(4), Version(1), PrevTree::empty(), 16, &w).unwrap();
        let got = lookup_range(&s, Some(root), 16, 5, 9).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].page, 5);
        assert_eq!(got[4].page, 9);
        for meta in got {
            assert_eq!(meta.providers, providers(&[meta.page as u32]));
        }
    }

    #[test]
    fn empty_tree_lookup_is_all_holes() {
        let s = store();
        let got = lookup_range(&s, None, 0, 0, 3).unwrap();
        assert_eq!(got.len(), 4);
        assert!(got
            .iter()
            .all(|m| m.providers.is_empty() && m.created.is_none()));
    }

    #[test]
    fn created_version_tracks_the_writing_version_across_snapshots() {
        let s = store();
        // v1 writes pages 0..4; v2 rewrites page 2 only.
        let w1: BTreeMap<_, _> = (0..4).map(|p| (p, providers(&[0]))).collect();
        let root1 = build_version(&s, BlobId(6), Version(1), PrevTree::empty(), 4, &w1).unwrap();
        let w2 = written(&[(2, &[1])]);
        let prev = PrevTree {
            root: Some(root1),
            span: 4,
        };
        let root2 = build_version(&s, BlobId(6), Version(2), prev, 4, &w2).unwrap();
        let got = lookup_range(&s, Some(root2), 4, 0, 3).unwrap();
        assert_eq!(
            got[0].created,
            Some(Version(1)),
            "page 0 still carries the v1 image"
        );
        assert_eq!(
            got[2].created,
            Some(Version(2)),
            "page 2 was replaced by v2"
        );
        assert_eq!(got[3].created, Some(Version(1)));
    }

    #[test]
    fn many_versions_remain_readable() {
        let s = store();
        let blob = BlobId(9);
        let span = 8u64;
        let mut roots = Vec::new();
        let mut model: Vec<BTreeMap<u64, Vec<ProviderId>>> = Vec::new();
        let mut prev = PrevTree::empty();
        let mut current: BTreeMap<u64, Vec<ProviderId>> = BTreeMap::new();
        // 10 successive single-page writes, each a new version.
        for v in 1..=10u64 {
            let page = (v * 3) % 8;
            let w = written(&[(page, &[v as u32])]);
            let root = build_version(&s, blob, Version(v), prev, span, &w).unwrap();
            current.insert(page, providers(&[v as u32]));
            roots.push(root);
            model.push(current.clone());
            prev = PrevTree {
                root: Some(root),
                span,
            };
        }
        // Every historical version still reads exactly as it was.
        for (i, root) in roots.iter().enumerate() {
            check_matches(&s, *root, span, &model[i], 8);
        }
    }

    #[test]
    fn batched_lookup_matches_the_walk_and_pays_one_round_trip_per_level() {
        let s = store();
        let w: BTreeMap<_, _> = (0..32).map(|p| (p, providers(&[p as u32]))).collect();
        let root = build_version(&s, BlobId(11), Version(1), PrevTree::empty(), 32, &w).unwrap();

        let walk_before = s.stats();
        let walked = lookup_range_walk(&s, Some(root), 32, 0, 31).unwrap();
        let walk_after = s.stats();
        let batched = lookup_range(&s, Some(root), 32, 0, 31).unwrap();
        let batch_after = s.stats();

        assert_eq!(walked, batched, "BFS descent must match the reference walk");
        // The walk pays one DHT get per visited node (63 for a full 32-page
        // tree); the BFS descent pays at most providers-per-level × depth.
        let walk_rts = walk_after.dht_read_round_trips - walk_before.dht_read_round_trips;
        let batch_rts = batch_after.dht_read_round_trips - walk_after.dht_read_round_trips;
        assert_eq!(walk_rts, 63);
        assert!(
            batch_rts <= 6 * 3,
            "BFS should cost at most depth x providers round trips, got {batch_rts}"
        );
        assert_eq!(
            batch_after.batch_lookups - walk_after.batch_lookups,
            6,
            "one get_nodes call per tree level"
        );
        // And the reduction clears the 60% bar by a wide margin.
        assert!((batch_rts as f64) < 0.4 * walk_rts as f64);
    }

    #[test]
    fn batched_lookup_handles_holes_and_subranges_like_the_walk() {
        let s = store();
        // Sparse tree: pages 9, 10 and 20 written inside a 32-page span.
        let w = written(&[(9, &[1]), (10, &[2]), (20, &[3])]);
        let root = build_version(&s, BlobId(12), Version(1), PrevTree::empty(), 32, &w).unwrap();
        for (first, last) in [(0u64, 31u64), (9, 10), (11, 19), (0, 8), (20, 40), (35, 40)] {
            let walked = lookup_range_walk(&s, Some(root), 32, first, last).unwrap();
            let batched = lookup_range(&s, Some(root), 32, first, last).unwrap();
            assert_eq!(walked, batched, "range [{first}, {last}] diverged");
            assert_eq!(batched.len() as u64, last - first + 1);
        }
        // Empty tree: both report pure holes.
        assert_eq!(
            lookup_range_walk(&s, None, 0, 2, 5).unwrap(),
            lookup_range(&s, None, 0, 2, 5).unwrap()
        );
    }

    #[test]
    fn readahead_matches_the_walk_and_never_leaks_prefetched_pages() {
        let s = store();
        // Sparse tree with holes on both sides of the written pages.
        let w = written(&[(9, &[1]), (10, &[2]), (20, &[3])]);
        let root = build_version(&s, BlobId(13), Version(1), PrevTree::empty(), 32, &w).unwrap();
        for (first, last) in [(0u64, 31u64), (9, 10), (11, 19), (0, 8), (20, 40), (35, 40)] {
            let walked = lookup_range_walk(&s, Some(root), 32, first, last).unwrap();
            for window in [0u64, 1, 3, 8, 32, u64::MAX] {
                let got = lookup_range_readahead(&s, Some(root), 32, first, last, window).unwrap();
                assert_eq!(
                    walked, got,
                    "range [{first}, {last}] window {window} diverged"
                );
            }
        }
        // Empty tree: pure holes regardless of the window.
        for window in [0u64, 4, u64::MAX] {
            assert_eq!(
                lookup_range_walk(&s, None, 0, 2, 5).unwrap(),
                lookup_range_readahead(&s, None, 0, 2, 5, window).unwrap()
            );
        }
    }

    #[test]
    fn readahead_prewarms_the_cache_for_the_next_sequential_range() {
        let writer = store();
        let w: BTreeMap<_, _> = (0..32).map(|p| (p, providers(&[p as u32]))).collect();
        let root =
            build_version(&writer, BlobId(14), Version(1), PrevTree::empty(), 32, &w).unwrap();
        // A cold reader cache (the writer's publish pre-warm does not help a
        // different client) so that the read-ahead is what fills it.
        let reader = MetadataStore::with_dht(writer.dht().clone()).with_node_cache(256);

        let walked = lookup_range_walk(&writer, Some(root), 32, 0, 15).unwrap();
        let first = lookup_range_readahead(&reader, Some(root), 32, 0, 7, 8).unwrap();
        assert_eq!(first[..], walked[..8]);
        let after_first = reader.stats();
        assert!(
            after_first.prefetched_nodes > 0,
            "the window should pull subtrees past the demanded range"
        );

        let second = lookup_range(&reader, Some(root), 32, 8, 15).unwrap();
        assert_eq!(second[..], walked[8..]);
        let after_second = reader.stats();
        assert_eq!(
            after_second.dht_read_round_trips, after_first.dht_read_round_trips,
            "the second range must be served entirely from prefetched nodes"
        );
        assert!(after_second.prefetch_hits > 0);
        assert_eq!(after_second.prefetch_wasted, 0);
    }

    #[test]
    fn readahead_is_free_when_the_demand_range_is_already_cached() {
        let writer = store();
        let w: BTreeMap<_, _> = (0..32).map(|p| (p, providers(&[p as u32]))).collect();
        let root =
            build_version(&writer, BlobId(17), Version(1), PrevTree::empty(), 32, &w).unwrap();
        let reader = MetadataStore::with_dht(writer.dht().clone()).with_node_cache(256);

        // Cold first range: the window pulls [8, 15] alongside the paid
        // descent.
        lookup_range_readahead(&reader, Some(root), 32, 0, 7, 8).unwrap();
        let after_first = reader.stats();

        // Second range is fully prefetched, so even with its own window the
        // lookup must not fetch anything: no round trips for the demand side
        // and no speculative batch for [16, 23] either.
        lookup_range_readahead(&reader, Some(root), 32, 8, 15, 8).unwrap();
        let after_second = reader.stats();
        assert_eq!(
            after_second.dht_read_round_trips, after_first.dht_read_round_trips,
            "a fully-cached lookup must not buy round trips for its prefetch"
        );
        assert_eq!(after_second.prefetched_nodes, after_first.prefetched_nodes);

        // The third range was therefore *not* prefetched: it pays its own
        // descent again, and its window piggybacks as usual.
        lookup_range_readahead(&reader, Some(root), 32, 16, 23, 8).unwrap();
        let after_third = reader.stats();
        assert!(after_third.dht_read_round_trips > after_second.dht_read_round_trips);
        assert!(after_third.prefetched_nodes > after_second.prefetched_nodes);
    }

    #[test]
    fn readahead_past_eof_is_a_no_op() {
        let writer = store();
        let w: BTreeMap<_, _> = (0..8).map(|p| (p, providers(&[0]))).collect();
        let root =
            build_version(&writer, BlobId(15), Version(1), PrevTree::empty(), 8, &w).unwrap();
        let reader = MetadataStore::with_dht(writer.dht().clone()).with_node_cache(64);
        // The window reaches far past the last page; the clamp keeps the
        // descent inside the tree, so nothing is prefetched.
        let got = lookup_range_readahead(&reader, Some(root), 8, 6, 7, 1000).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(reader.stats().prefetched_nodes, 0);
    }

    #[test]
    fn capacity_pressure_evicts_prefetched_nodes_as_waste() {
        let writer = store();
        let w: BTreeMap<_, _> = (0..32).map(|p| (p, providers(&[p as u32]))).collect();
        let root =
            build_version(&writer, BlobId(16), Version(1), PrevTree::empty(), 32, &w).unwrap();
        // A cache far smaller than the 63-node prefetch fan-out: prefetched
        // nodes evict each other before any demand read touches them.
        let reader = MetadataStore::with_dht(writer.dht().clone()).with_node_cache(4);
        let got = lookup_range_readahead(&reader, Some(root), 32, 0, 0, 31).unwrap();
        assert_eq!(got.len(), 1);
        let stats = reader.stats();
        assert!(stats.prefetched_nodes > 0);
        assert!(
            stats.prefetch_wasted > 0,
            "evicting an untouched prefetch must count as waste"
        );
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_write_is_rejected() {
        let s = store();
        let w = BTreeMap::new();
        let _ = build_version(&s, BlobId(0), Version(1), PrevTree::empty(), 4, &w);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_span_is_rejected() {
        let s = store();
        let w = written(&[(0, &[1])]);
        let _ = build_version(&s, BlobId(0), Version(1), PrevTree::empty(), 6, &w);
    }
}
