//! Integration tests running complete MapReduce jobs over both storage
//! backends and checking that the framework-level results are identical —
//! the property the paper's methodology (swap the storage layer, keep the
//! framework) relies on.

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use hdfs_sim::{Hdfs, HdfsConfig};
use mapreduce::fs::{BsfsFs, DistFs, HdfsFs};
use mapreduce::jobtracker::JobTracker;
use simcluster::ClusterTopology;
use workloads::{distributed_grep_job, random_text_writer_job, word_count_job, TextGenerator};

fn backends(topo: &ClusterTopology, block: u64) -> (BsfsFs, HdfsFs) {
    let nodes: Vec<_> = topo.all_nodes().collect();
    let storage = BlobSeer::with_topology(
        BlobSeerConfig::default()
            .with_providers(nodes.len())
            .with_page_size(block),
        topo,
        &nodes,
    );
    let bsfs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::default().with_block_size(block),
    ));
    let hdfs = HdfsFs::new(Hdfs::with_topology(
        HdfsConfig {
            chunk_size: block,
            datanodes: nodes.len(),
            replication: 2,
            seed: 3,
        },
        topo,
        &nodes,
    ));
    (bsfs, hdfs)
}

fn sorted_output(fs: &dyn DistFs, files: &[String]) -> Vec<String> {
    let mut lines = Vec::new();
    for f in files {
        let content = fs.read_file(f).unwrap();
        lines.extend(
            String::from_utf8_lossy(&content)
                .lines()
                .map(str::to_string),
        );
    }
    lines.sort();
    lines
}

#[test]
fn word_count_identical_on_both_backends() {
    let topo = ClusterTopology::flat(6);
    let (bsfs, hdfs) = backends(&topo, 16 * 1024);
    let mut generator = TextGenerator::new(11);
    let text = generator.sentences(3_000);

    let mut outputs = Vec::new();
    for fs in [&bsfs as &dyn DistFs, &hdfs as &dyn DistFs] {
        fs.write_file("/in/corpus.txt", text.as_bytes()).unwrap();
        let job = word_count_job(vec!["/in/corpus.txt".into()], "/wc", 4, 16 * 1024);
        let result = JobTracker::new(&topo).run(fs, &job).unwrap();
        assert_eq!(result.reduce_tasks, 4);
        assert!(result.map_tasks > 1);
        outputs.push(sorted_output(fs, &result.output_files));
    }
    assert_eq!(outputs[0], outputs[1]);
    assert!(!outputs[0].is_empty());
}

#[test]
fn grep_pipeline_after_random_text_writer() {
    // Chain the paper's two applications: generate data with Random Text
    // Writer, then grep the generated data — all through the framework.
    let topo = ClusterTopology::flat(4);
    let (bsfs, _) = backends(&topo, 32 * 1024);
    let fs: &dyn DistFs = &bsfs;

    let generate = random_text_writer_job("/generated", 4, 16, 2048, 77);
    let gen_result = JobTracker::new(&topo).run(fs, &generate).unwrap();
    assert_eq!(gen_result.output_files.len(), 4);
    assert!(gen_result.output_bytes >= 4 * 16 * 2048);

    // Grep for a word guaranteed to appear in the generated vocabulary.
    let grep = distributed_grep_job(vec!["/generated".into()], "/matches", "storage", 32 * 1024);
    let grep_result = JobTracker::new(&topo).run(fs, &grep).unwrap();
    let output = fs.read_file(&grep_result.output_files[0]).unwrap();
    let text = String::from_utf8_lossy(&output);
    if !text.trim().is_empty() {
        let count: u64 = text.trim().split('\t').nth(1).unwrap().parse().unwrap();
        assert!(count > 0);
    }
    assert_eq!(grep_result.fs_name, "BSFS");
    assert!(grep_result.input_records >= gen_result.output_records);
}

#[test]
fn jobs_survive_a_storage_node_failure_with_replication() {
    let topo = ClusterTopology::flat(6);
    let (_, hdfs) = backends(&topo, 8 * 1024);
    let fs: &dyn DistFs = &hdfs;
    let mut generator = TextGenerator::new(5);
    let mut text = String::new();
    for i in 0..500 {
        if i % 10 == 0 {
            text.push_str("the needle sentence appears here\n");
        } else {
            text.push_str(&generator.sentence());
            text.push('\n');
        }
    }
    fs.write_file("/in/data.txt", text.as_bytes()).unwrap();

    // Kill one datanode after load: chunk replication (2) covers reads.
    hdfs.inner().namenode().datanodes()[0].kill();

    let job = distributed_grep_job(vec!["/in/data.txt".into()], "/out", "needle", 8 * 1024);
    let result = JobTracker::new(&topo).run(fs, &job).unwrap();
    let output = fs.read_file(&result.output_files[0]).unwrap();
    assert_eq!(String::from_utf8_lossy(&output), "needle\t50\n");
}

#[test]
fn locality_aware_scheduling_reports_data_local_tasks_on_bsfs() {
    let topo = ClusterTopology::flat(8);
    let (bsfs, _) = backends(&topo, 8 * 1024);
    let fs: &dyn DistFs = &bsfs;
    let mut generator = TextGenerator::new(9);
    let text = generator.sentences(2_000);
    fs.write_file("/in/big.txt", text.as_bytes()).unwrap();

    let job = word_count_job(vec!["/in/big.txt".into()], "/out", 2, 8 * 1024);
    let result = JobTracker::new(&topo).run(fs, &job).unwrap();
    assert_eq!(result.locality.total(), result.map_tasks);
    assert!(
        result.locality.data_local > 0,
        "locality-aware scheduling over the BSFS layout should produce data-local maps: {:?}",
        result.locality
    );
}
