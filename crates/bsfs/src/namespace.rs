//! The centralized namespace manager.
//!
//! "This layer consists in a centralized namespace manager, which is
//! responsible for maintaining a file system namespace, and for mapping files
//! to BLOBs" (paper §III-B). The manager keeps an in-memory table of absolute
//! paths: files map to the [`blobseer::BlobId`] holding their contents,
//! directories are pure namespace entries. All operations are thread-safe and
//! serialized on a single lock — exactly the centralization the paper
//! describes (and the same design point as HDFS's namenode).

use crate::error::{FsError, FsResult};
use blobseer::BlobId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// Metadata kept for every file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Blob storing the file contents.
    pub blob: BlobId,
    /// Logical creation order (monotonic counter, stands in for a timestamp
    /// so that runs are deterministic).
    pub created_seq: u64,
}

/// Status returned by [`NamespaceManager::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStatus {
    /// The path is a file backed by the given blob.
    File(FileEntry),
    /// The path is a directory.
    Directory,
    /// The path does not exist.
    Missing,
}

/// Normalise an absolute path: require a leading '/', collapse duplicate
/// slashes, strip a trailing slash (except for the root itself).
pub fn normalize(path: &str) -> FsResult<String> {
    if path.is_empty() || !path.starts_with('/') {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => continue,
            ".." => return Err(FsError::InvalidPath(path.to_string())),
            p => parts.push(p),
        }
    }
    if parts.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", parts.join("/")))
    }
}

/// The parent directory of a normalised path ("/" for top-level entries).
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => path[..idx].to_string(),
    }
}

struct Inner {
    files: BTreeMap<String, FileEntry>,
    directories: BTreeSet<String>,
    next_seq: u64,
}

/// The centralized namespace manager.
pub struct NamespaceManager {
    inner: Mutex<Inner>,
}

impl Default for NamespaceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl NamespaceManager {
    /// Create a namespace containing only the root directory.
    pub fn new() -> Self {
        let mut directories = BTreeSet::new();
        directories.insert("/".to_string());
        NamespaceManager {
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                directories,
                next_seq: 0,
            }),
        }
    }

    /// Register a new file at `path` backed by `blob`. The parent directory
    /// must exist; intermediate directories are *not* created implicitly (use
    /// [`NamespaceManager::mkdirs`]).
    pub fn create_file(&self, path: &str, blob: BlobId) -> FsResult<()> {
        let path = normalize(path)?;
        if path == "/" {
            return Err(FsError::IsADirectory(path));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) || inner.directories.contains(&path) {
            return Err(FsError::AlreadyExists(path));
        }
        let parent = parent_of(&path);
        if !inner.directories.contains(&parent) {
            return Err(FsError::ParentMissing(parent));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.files.insert(
            path,
            FileEntry {
                blob,
                created_seq: seq,
            },
        );
        Ok(())
    }

    /// Create a directory and any missing ancestors.
    pub fn mkdirs(&self, path: &str) -> FsResult<()> {
        let path = normalize(path)?;
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(FsError::AlreadyExists(path));
        }
        // Walk down from the root creating every component.
        let mut current = String::new();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            current.push('/');
            current.push_str(part);
            if inner.files.contains_key(&current) {
                return Err(FsError::NotADirectory(current));
            }
            inner.directories.insert(current.clone());
        }
        Ok(())
    }

    /// Look up the blob backing a file.
    pub fn lookup(&self, path: &str) -> FsResult<FileEntry> {
        let path = normalize(path)?;
        let inner = self.inner.lock();
        if inner.directories.contains(&path) {
            return Err(FsError::IsADirectory(path));
        }
        inner
            .files
            .get(&path)
            .cloned()
            .ok_or(FsError::FileNotFound(path))
    }

    /// Status of a path.
    pub fn status(&self, path: &str) -> FsResult<PathStatus> {
        let path = normalize(path)?;
        let inner = self.inner.lock();
        if let Some(entry) = inner.files.get(&path) {
            Ok(PathStatus::File(entry.clone()))
        } else if inner.directories.contains(&path) {
            Ok(PathStatus::Directory)
        } else {
            Ok(PathStatus::Missing)
        }
    }

    /// Does the path exist (as a file or a directory)?
    pub fn exists(&self, path: &str) -> bool {
        matches!(
            self.status(path),
            Ok(PathStatus::File(_)) | Ok(PathStatus::Directory)
        )
    }

    /// List the immediate children of a directory (file and directory names,
    /// sorted).
    pub fn list(&self, path: &str) -> FsResult<Vec<String>> {
        let path = normalize(path)?;
        let inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(FsError::NotADirectory(path));
        }
        if !inner.directories.contains(&path) {
            return Err(FsError::FileNotFound(path));
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut children = BTreeSet::new();
        for candidate in inner.files.keys().chain(inner.directories.iter()) {
            if candidate == &path {
                continue;
            }
            if let Some(rest) = candidate.strip_prefix(&prefix) {
                if let Some(first) = rest.split('/').next() {
                    if !first.is_empty() {
                        children.insert(format!("{prefix}{first}"));
                    }
                }
            }
        }
        Ok(children.into_iter().collect())
    }

    /// Remove a file, returning the blob that backed it (the caller deletes
    /// the blob from BlobSeer).
    pub fn remove_file(&self, path: &str) -> FsResult<FileEntry> {
        let path = normalize(path)?;
        let mut inner = self.inner.lock();
        if inner.directories.contains(&path) {
            return Err(FsError::IsADirectory(path));
        }
        inner.files.remove(&path).ok_or(FsError::FileNotFound(path))
    }

    /// Remove a directory. When `recursive` is false the directory must be
    /// empty. Returns the file entries that were removed (their blobs are the
    /// caller's to delete).
    pub fn remove_dir(&self, path: &str, recursive: bool) -> FsResult<Vec<FileEntry>> {
        let path = normalize(path)?;
        if path == "/" {
            return Err(FsError::InvalidPath(
                "cannot remove the root directory".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&path) {
            return Err(FsError::NotADirectory(path));
        }
        if !inner.directories.contains(&path) {
            return Err(FsError::FileNotFound(path));
        }
        let prefix = format!("{path}/");
        let child_files: Vec<String> = inner
            .files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        let child_dirs: Vec<String> = inner
            .directories
            .iter()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        if !recursive && (!child_files.is_empty() || !child_dirs.is_empty()) {
            return Err(FsError::DirectoryNotEmpty(path));
        }
        let mut removed = Vec::with_capacity(child_files.len());
        for f in child_files {
            if let Some(entry) = inner.files.remove(&f) {
                removed.push(entry);
            }
        }
        for d in child_dirs {
            inner.directories.remove(&d);
        }
        inner.directories.remove(&path);
        Ok(removed)
    }

    /// Rename a file or directory (and, for directories, everything under it).
    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let from = normalize(from)?;
        let to = normalize(to)?;
        if from == "/" || to == "/" {
            return Err(FsError::InvalidPath(
                "cannot rename the root directory".into(),
            ));
        }
        let mut inner = self.inner.lock();
        if inner.files.contains_key(&to) || inner.directories.contains(&to) {
            return Err(FsError::AlreadyExists(to));
        }
        let to_parent = parent_of(&to);
        if !inner.directories.contains(&to_parent) {
            return Err(FsError::ParentMissing(to_parent));
        }
        if let Some(entry) = inner.files.remove(&from) {
            inner.files.insert(to, entry);
            return Ok(());
        }
        if inner.directories.contains(&from) {
            let prefix = format!("{from}/");
            let moved_files: Vec<(String, FileEntry)> = inner
                .files
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            for (k, v) in moved_files {
                inner.files.remove(&k);
                let new_key = format!("{to}/{}", &k[prefix.len()..]);
                inner.files.insert(new_key, v);
            }
            let moved_dirs: Vec<String> = inner
                .directories
                .iter()
                .filter(|k| k.starts_with(&prefix) || **k == from)
                .cloned()
                .collect();
            for d in moved_dirs {
                inner.directories.remove(&d);
                let new_key = if d == from {
                    to.clone()
                } else {
                    format!("{to}/{}", &d[prefix.len()..])
                };
                inner.directories.insert(new_key);
            }
            return Ok(());
        }
        Err(FsError::FileNotFound(from))
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// All file paths, sorted (used by tests and the experiment harness).
    pub fn all_files(&self) -> Vec<String> {
        self.inner.lock().files.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/a/b").unwrap(), "/a/b");
        assert_eq!(normalize("/a//b/").unwrap(), "/a/b");
        assert_eq!(normalize("/").unwrap(), "/");
        assert_eq!(normalize("/./a").unwrap(), "/a");
        assert!(normalize("relative/path").is_err());
        assert!(normalize("").is_err());
        assert!(normalize("/a/../b").is_err());
    }

    #[test]
    fn parent_computation() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(parent_of("/"), "/");
    }

    #[test]
    fn create_lookup_remove_file() {
        let ns = NamespaceManager::new();
        ns.create_file("/data.txt", BlobId(1)).unwrap();
        let entry = ns.lookup("/data.txt").unwrap();
        assert_eq!(entry.blob, BlobId(1));
        assert!(ns.exists("/data.txt"));
        assert_eq!(ns.file_count(), 1);
        let removed = ns.remove_file("/data.txt").unwrap();
        assert_eq!(removed.blob, BlobId(1));
        assert!(!ns.exists("/data.txt"));
        assert!(matches!(
            ns.lookup("/data.txt"),
            Err(FsError::FileNotFound(_))
        ));
    }

    #[test]
    fn duplicate_creation_fails() {
        let ns = NamespaceManager::new();
        ns.create_file("/f", BlobId(0)).unwrap();
        assert!(matches!(
            ns.create_file("/f", BlobId(1)),
            Err(FsError::AlreadyExists(_))
        ));
        ns.mkdirs("/d").unwrap();
        assert!(matches!(
            ns.create_file("/d", BlobId(1)),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn parent_must_exist() {
        let ns = NamespaceManager::new();
        assert!(matches!(
            ns.create_file("/missing/file", BlobId(0)),
            Err(FsError::ParentMissing(_))
        ));
        ns.mkdirs("/missing").unwrap();
        ns.create_file("/missing/file", BlobId(0)).unwrap();
    }

    #[test]
    fn mkdirs_creates_ancestors_and_listing_works() {
        let ns = NamespaceManager::new();
        ns.mkdirs("/a/b/c").unwrap();
        assert!(ns.exists("/a"));
        assert!(ns.exists("/a/b"));
        assert!(ns.exists("/a/b/c"));
        ns.create_file("/a/b/file1", BlobId(1)).unwrap();
        ns.create_file("/a/b/file2", BlobId(2)).unwrap();
        let children = ns.list("/a/b").unwrap();
        assert_eq!(children, vec!["/a/b/c", "/a/b/file1", "/a/b/file2"]);
        let top = ns.list("/").unwrap();
        assert_eq!(top, vec!["/a"]);
        assert!(matches!(
            ns.list("/a/b/file1"),
            Err(FsError::NotADirectory(_))
        ));
        assert!(matches!(ns.list("/nope"), Err(FsError::FileNotFound(_))));
    }

    #[test]
    fn status_variants() {
        let ns = NamespaceManager::new();
        ns.mkdirs("/dir").unwrap();
        ns.create_file("/dir/f", BlobId(3)).unwrap();
        assert_eq!(ns.status("/dir").unwrap(), PathStatus::Directory);
        assert!(matches!(ns.status("/dir/f").unwrap(), PathStatus::File(_)));
        assert_eq!(ns.status("/other").unwrap(), PathStatus::Missing);
        assert!(matches!(ns.lookup("/dir"), Err(FsError::IsADirectory(_))));
    }

    #[test]
    fn remove_dir_requires_empty_unless_recursive() {
        let ns = NamespaceManager::new();
        ns.mkdirs("/out/logs").unwrap();
        ns.create_file("/out/part-0", BlobId(1)).unwrap();
        ns.create_file("/out/logs/l0", BlobId(2)).unwrap();
        assert!(matches!(
            ns.remove_dir("/out", false),
            Err(FsError::DirectoryNotEmpty(_))
        ));
        let removed = ns.remove_dir("/out", true).unwrap();
        assert_eq!(removed.len(), 2);
        assert!(!ns.exists("/out"));
        assert!(!ns.exists("/out/logs"));
        assert_eq!(ns.file_count(), 0);
        assert!(matches!(
            ns.remove_dir("/", true),
            Err(FsError::InvalidPath(_))
        ));
    }

    #[test]
    fn rename_file_and_directory() {
        let ns = NamespaceManager::new();
        ns.mkdirs("/a").unwrap();
        ns.mkdirs("/b").unwrap();
        ns.create_file("/a/f", BlobId(1)).unwrap();
        ns.rename("/a/f", "/b/g").unwrap();
        assert!(!ns.exists("/a/f"));
        assert_eq!(ns.lookup("/b/g").unwrap().blob, BlobId(1));

        // Directory rename moves everything under it.
        ns.create_file("/a/nested", BlobId(2)).unwrap();
        ns.rename("/a", "/c").unwrap();
        assert!(!ns.exists("/a"));
        assert!(ns.exists("/c"));
        assert_eq!(ns.lookup("/c/nested").unwrap().blob, BlobId(2));

        // Destination collisions and missing parents are rejected.
        assert!(matches!(
            ns.rename("/c/nested", "/b/g"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            ns.rename("/c/nested", "/zz/x"),
            Err(FsError::ParentMissing(_))
        ));
        assert!(matches!(
            ns.rename("/ghost", "/b/h"),
            Err(FsError::FileNotFound(_))
        ));
    }

    #[test]
    fn all_files_is_sorted() {
        let ns = NamespaceManager::new();
        ns.create_file("/z", BlobId(0)).unwrap();
        ns.create_file("/a", BlobId(1)).unwrap();
        assert_eq!(ns.all_files(), vec!["/a", "/z"]);
    }

    #[test]
    fn concurrent_creates_get_distinct_sequence_numbers() {
        let ns = std::sync::Arc::new(NamespaceManager::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let ns = std::sync::Arc::clone(&ns);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        ns.create_file(&format!("/t{t}-f{i}"), BlobId(t * 1000 + i))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ns.file_count(), 400);
        let mut seqs: Vec<u64> = ns
            .all_files()
            .iter()
            .map(|f| ns.lookup(f).unwrap().created_seq)
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers must be unique");
    }
}
