//! Tasktrackers and the execution of individual map/reduce tasks.
//!
//! "The framework consists of a single master jobtracker, and multiple slave
//! tasktrackers, one per node. A MapReduce job is split into a set of tasks,
//! which are executed by the tasktrackers, as assigned by the jobtracker"
//! (paper §II-A). A [`TaskTracker`] here is the per-node executor descriptor
//! (which node, how many concurrent slots); the actual task bodies —
//! reading a split, applying the user's map function, partitioning the
//! intermediate pairs, applying reduce and writing output files — live in the
//! free functions of this module so the jobtracker's worker threads and the
//! tests can call them directly.

use crate::error::MrResult;
use crate::fs::DistFs;
use crate::job::{format_output_record, Mapper, Partitioner, Reducer};
use crate::split::{read_records, InputSplit, SplitSource};
use simcluster::NodeId;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A per-node task executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTracker {
    /// The cluster node the tracker runs on.
    pub node: NodeId,
    /// Concurrent map tasks the tracker can execute.
    pub map_slots: usize,
    /// Concurrent reduce tasks the tracker can execute.
    pub reduce_slots: usize,
}

impl TaskTracker {
    /// A tracker with Hadoop's classic defaults (2 map slots, 1 reduce slot).
    pub fn new(node: NodeId) -> Self {
        TaskTracker {
            node,
            map_slots: 2,
            reduce_slots: 1,
        }
    }

    /// Override the slot counts.
    pub fn with_slots(mut self, map_slots: usize, reduce_slots: usize) -> Self {
        self.map_slots = map_slots.max(1);
        self.reduce_slots = reduce_slots.max(1);
        self
    }
}

/// The output of one map task.
#[derive(Debug, Default, Clone)]
pub struct MapTaskOutput {
    /// Intermediate pairs, one bucket per reduce partition. Map-only jobs use
    /// a single bucket. Cleared once the task's spill file commits — the
    /// data then lives in storage, not RAM.
    pub partitions: Vec<Vec<(String, String)>>,
    /// Input records processed.
    pub records_read: u64,
    /// Intermediate pairs emitted.
    pub records_emitted: u64,
    /// Bytes read from the storage layer.
    pub bytes_read: u64,
    /// Bytes of the committed spill file (0 for map-only jobs).
    pub spilled_bytes: u64,
    /// Records written to the spill file (post-combine).
    pub spilled_records: u64,
    /// Records fed to the spill-time combiner (0 without a combiner).
    pub combine_input_records: u64,
    /// Records the spill-time combiner emitted.
    pub combine_output_records: u64,
}

/// Hash-partition an intermediate key across `num_partitions` reducers
/// (Hadoop's default `HashPartitioner`).
pub fn partition_for(key: &str, num_partitions: usize) -> usize {
    if num_partitions <= 1 {
        return 0;
    }
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % num_partitions
}

/// Execute one map task: read the split's records, run the user's map
/// function on each (told which file the record came from, for multi-input
/// jobs), and partition the emitted pairs with the job's partitioner.
pub fn run_map_task(
    fs: &dyn DistFs,
    split: &InputSplit,
    mapper: &dyn Mapper,
    partitioner: &dyn Partitioner,
    num_partitions: usize,
) -> MrResult<MapTaskOutput> {
    let buckets = num_partitions.max(1);
    let mut out = MapTaskOutput {
        partitions: vec![Vec::new(); buckets],
        ..Default::default()
    };

    // Materialise the records for this split.
    let (source_path, records): (&str, Vec<(u64, String)>) = match &split.source {
        SplitSource::File { path, offset, len } => {
            let (records, bytes_read) = read_records(fs, path, *offset, *len)?;
            out.bytes_read = bytes_read;
            (path.as_str(), records)
        }
        SplitSource::Synthetic { records, .. } => {
            ("", (0..*records).map(|i| (i, String::new())).collect())
        }
    };

    for (offset, line) in &records {
        out.records_read += 1;
        let partitions = &mut out.partitions;
        let mut emitted = 0u64;
        mapper.map_with_source(source_path, *offset, line, &mut |k, v| {
            let p = partitioner.partition(&k, buckets);
            partitions[p].push((k, v));
            emitted += 1;
        })?;
        out.records_emitted += emitted;
    }
    Ok(out)
}

/// Group one reduce partition's pairs by key, preserving the per-key value
/// arrival order (Hadoop sorts keys; values keep shuffle order).
pub fn group_by_key(pairs: Vec<(String, String)>) -> BTreeMap<String, Vec<String>> {
    let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
}

/// Execute one reduce task over its grouped input and return the output
/// records (already formatted ordering: ascending key).
pub fn run_reduce_task(
    groups: &BTreeMap<String, Vec<String>>,
    reducer: &dyn Reducer,
) -> MrResult<Vec<(String, String)>> {
    let mut output = Vec::new();
    for (key, values) in groups {
        reducer.reduce(key, values, &mut |k, v| output.push((k, v)))?;
    }
    Ok(output)
}

/// Write a task's output records to `path` through the storage layer, in
/// Hadoop's text output format. Returns the number of bytes written.
pub fn write_output_file(
    fs: &dyn DistFs,
    path: &str,
    records: &[(String, String)],
) -> MrResult<u64> {
    let mut writer = fs.create(path)?;
    let mut bytes = 0u64;
    for (k, v) in records {
        let line = format_output_record(k, v);
        bytes += line.len() as u64;
        writer.write(line.as_bytes())?;
    }
    writer.close()?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MrError;
    use crate::fs::BsfsFs;
    use crate::job::{HashPartitioner, SumReducer};
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};

    fn fs() -> BsfsFs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()))
    }

    struct WordCountMapper;
    impl Mapper for WordCountMapper {
        fn map(
            &self,
            _offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            for word in line.split_whitespace() {
                emit(word.to_string(), "1".to_string());
            }
            Ok(())
        }
    }

    struct FailingMapper;
    impl Mapper for FailingMapper {
        fn map(
            &self,
            _offset: u64,
            _line: &str,
            _emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            Err(MrError::Storage("synthetic failure".into()))
        }
    }

    #[test]
    fn tracker_defaults_and_overrides() {
        let t = TaskTracker::new(NodeId(3));
        assert_eq!(t.map_slots, 2);
        assert_eq!(t.reduce_slots, 1);
        let t = t.with_slots(0, 0);
        assert_eq!(t.map_slots, 1, "slot counts are clamped to at least one");
        assert_eq!(t.reduce_slots, 1);
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for key in ["a", "b", "the", "quick", "fox"] {
            let p = partition_for(key, 4);
            assert!(p < 4);
            assert_eq!(
                p,
                partition_for(key, 4),
                "same key must always map to the same partition"
            );
        }
        assert_eq!(partition_for("anything", 1), 0);
        assert_eq!(partition_for("anything", 0), 0);
    }

    #[test]
    fn map_task_reads_split_and_partitions_output() {
        let fs = fs();
        fs.write_file("/in", b"the quick fox\nthe lazy dog\n")
            .unwrap();
        let split = InputSplit {
            id: 0,
            source: SplitSource::File {
                path: "/in".into(),
                offset: 0,
                len: 27,
            },
            preferred_nodes: vec![],
        };
        let out = run_map_task(&fs, &split, &WordCountMapper, &HashPartitioner, 3).unwrap();
        assert_eq!(out.records_read, 2);
        assert_eq!(out.records_emitted, 6);
        assert_eq!(out.partitions.len(), 3);
        let all: Vec<&(String, String)> = out.partitions.iter().flatten().collect();
        assert_eq!(all.len(), 6);
        assert!(out.bytes_read >= 27);
        // Identical keys land in identical partitions.
        let the_parts: std::collections::HashSet<usize> = out
            .partitions
            .iter()
            .enumerate()
            .filter(|(_, bucket)| bucket.iter().any(|(k, _)| k == "the"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(the_parts.len(), 1);
    }

    #[test]
    fn synthetic_split_generates_empty_records() {
        let fs = fs();
        let split = InputSplit {
            id: 0,
            source: SplitSource::Synthetic {
                index: 0,
                records: 5,
            },
            preferred_nodes: vec![],
        };
        struct CountingMapper;
        impl Mapper for CountingMapper {
            fn map(
                &self,
                offset: u64,
                line: &str,
                emit: &mut dyn FnMut(String, String),
            ) -> MrResult<()> {
                assert!(line.is_empty());
                emit(format!("record-{offset}"), String::new());
                Ok(())
            }
        }
        let out = run_map_task(&fs, &split, &CountingMapper, &HashPartitioner, 0).unwrap();
        assert_eq!(out.records_read, 5);
        assert_eq!(out.records_emitted, 5);
        assert_eq!(out.partitions.len(), 1);
        assert_eq!(out.bytes_read, 0);
    }

    #[test]
    fn failing_mapper_propagates_the_error() {
        let fs = fs();
        fs.write_file("/in", b"line\n").unwrap();
        let split = InputSplit {
            id: 0,
            source: SplitSource::File {
                path: "/in".into(),
                offset: 0,
                len: 5,
            },
            preferred_nodes: vec![],
        };
        assert!(run_map_task(&fs, &split, &FailingMapper, &HashPartitioner, 1).is_err());
    }

    #[test]
    fn grouping_and_reducing() {
        let pairs = vec![
            ("b".to_string(), "1".to_string()),
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "1".to_string()),
            ("c".to_string(), "2".to_string()),
        ];
        let groups = group_by_key(pairs);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups["b"], vec!["1", "1"]);
        let out = run_reduce_task(&groups, &SumReducer).unwrap();
        // BTreeMap iteration gives ascending key order.
        assert_eq!(
            out,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
                ("c".to_string(), "2".to_string()),
            ]
        );
    }

    #[test]
    fn output_file_is_written_in_text_format() {
        let fs = fs();
        let records = vec![
            ("alpha".to_string(), "1".to_string()),
            ("beta".to_string(), String::new()),
        ];
        let bytes = write_output_file(&fs, "/out/part-r-00000", &records).unwrap();
        let content = fs.read_file("/out/part-r-00000").unwrap();
        assert_eq!(&content[..], b"alpha\t1\nbeta\n");
        assert_eq!(bytes, content.len() as u64);
    }
}
