//! Property-based safety test of snapshot garbage collection: under random
//! interleavings of writes, appends, pins, unpins and GC cycles, no byte of
//! any *surviving* snapshot is ever lost — keep-last-K retention may only
//! take versions that fell out of the window and were not pinned, and
//! everything else must keep reading exactly as the in-memory model says it
//! did when published.

use blobseer::{BlobSeer, BlobSeerConfig, Version};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A reference model of a sparse, growing byte array.
fn apply_to_model(model: &mut Vec<u8>, offset: usize, data: &[u8]) {
    if offset + data.len() > model.len() {
        model.resize(offset + data.len(), 0);
    }
    model[offset..offset + data.len()].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gc_never_reclaims_a_surviving_snapshot(
        page_size in 16u64..200,
        keep in 1usize..4,
        ops in prop::collection::vec(
            (
                0usize..1_000,                            // write offset
                prop::collection::vec(any::<u8>(), 1..300), // payload
                0u8..4,                                   // 0: write, 1: append, 2: pin latest, 3: unpin oldest pin
            ),
            1..14,
        ),
    ) {
        let sys = BlobSeer::new(
            BlobSeerConfig::for_tests()
                .with_page_size(page_size)
                .with_gc_keep_last(keep),
        );
        let client = sys.client();
        let blob = client.create(None).unwrap();

        let mut model: Vec<u8> = Vec::new();
        // Version -> content at publication, for every version GC has not yet
        // been allowed to take. v0 is the empty blob.
        let mut alive: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        alive.insert(0, Vec::new());
        let mut retired: Vec<u64> = Vec::new();
        let mut pinned: Vec<u64> = Vec::new();

        for (offset, data, action) in &ops {
            match action {
                2 => {
                    let latest = client.latest_version(blob).unwrap().version;
                    sys.pin_snapshot(blob, latest).unwrap();
                    if !pinned.contains(&latest.0) {
                        pinned.push(latest.0);
                    }
                }
                3 => {
                    // An unpinned version becomes fair game for the next GC
                    // cycle below; the cutoff rule there picks it up.
                    if let Some(v) = pinned.first().copied() {
                        prop_assert!(sys.unpin_snapshot(blob, Version(v)).unwrap());
                        pinned.remove(0);
                    }
                }
                _ => {
                    let version = if *action == 1 {
                        let v = client.append(blob, data).unwrap();
                        let at = model.len();
                        apply_to_model(&mut model, at, data);
                        v
                    } else {
                        let v = client.write(blob, *offset as u64, data).unwrap();
                        apply_to_model(&mut model, *offset, data);
                        v
                    };
                    alive.insert(version.0, model.clone());
                }
            }

            // A GC cycle after every operation: the retention cutoff is the
            // keep-th-newest *still published* version (surviving pins
            // included), and everything older retires unless pinned.
            let report = sys.collect_garbage().unwrap();
            let visible: Vec<u64> = alive.keys().copied().collect();
            if visible.len() > keep {
                let cutoff = visible[visible.len() - keep];
                let expect_retired: Vec<u64> = visible
                    .iter()
                    .copied()
                    .filter(|v| *v < cutoff && !pinned.contains(v))
                    .collect();
                prop_assert_eq!(report.versions_retired as usize, expect_retired.len());
                for v in expect_retired {
                    alive.remove(&v);
                    retired.push(v);
                }
            } else {
                prop_assert_eq!(report.versions_retired, 0);
            }

            // Every surviving snapshot — pinned or in-window — reads exactly
            // as the model recorded it at publication.
            for (v, expected) in &alive {
                if expected.is_empty() {
                    prop_assert_eq!(client.version_info(blob, Version(*v)).unwrap().size, 0);
                    continue;
                }
                let got = client.read(blob, Version(*v), 0, expected.len() as u64).unwrap();
                prop_assert!(
                    got[..] == expected[..],
                    "version {} diverged after GC (keep={}, pinned={:?})",
                    v, keep, pinned
                );
            }
            // Retired snapshots are gone for good.
            for v in &retired {
                prop_assert!(client.version_info(blob, Version(*v)).is_err());
            }
        }

        // The latest version always matches the final model.
        let size = client.size(blob).unwrap();
        prop_assert_eq!(size, model.len() as u64);
        if size > 0 {
            prop_assert_eq!(client.read_latest(blob, 0, size).unwrap().to_vec(), model);
        }
    }
}
