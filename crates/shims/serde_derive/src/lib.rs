//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so `syn`/`quote` are
//! unavailable and the derive input is parsed by hand with the compiler's
//! built-in `proc_macro` API. The subset understood here is exactly what the
//! workspace uses:
//!
//! - structs with named fields
//! - tuple structs (newtypes serialize transparently, wider tuples as arrays)
//! - enums with unit and tuple variants (externally tagged, like serde)
//!
//! `#[derive(Serialize)]` emits an `impl serde::Serialize` that writes JSON
//! directly; `#[derive(Deserialize)]` emits an empty marker impl (nothing in
//! the workspace deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Named(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Enum: (variant name, tuple-field count; None = unit variant).
    Enum(Vec<(String, Option<usize>)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skip one attribute (`#` already consumed ⇒ consume the `[...]` group).
fn skip_attr_body(iter: &mut impl Iterator<Item = TokenTree>) {
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '!' => {
            iter.next(); // inner attribute: consume the bracket group too
        }
        Some(TokenTree::Group(_)) | None => {}
        Some(other) => panic!("serde_derive shim: unexpected token after '#': {other}"),
    }
}

/// Split the tokens of a brace/paren group on top-level commas, treating
/// `<`/`>` pairs as nesting (so `HashMap<K, V>` stays one chunk).
fn split_top_level_commas(group: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in group {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks is never empty").push(tt);
    }
    if chunks.last().is_some_and(Vec::is_empty) {
        chunks.pop(); // trailing comma
    }
    chunks
}

/// Extract the field identifier from one named-field chunk
/// (`[attrs] [pub[(..)]] name : Type`).
fn field_name(chunk: &[TokenTree]) -> String {
    let mut iter = chunk.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute body group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) and friends
                    }
                }
            }
            TokenTree::Ident(id) => return id.to_string(),
            other => panic!("serde_derive shim: unexpected token in field: {other}"),
        }
    }
    panic!("serde_derive shim: field chunk without an identifier");
}

/// Parse one enum-variant chunk into (name, tuple-field count).
fn parse_variant(chunk: &[TokenTree]) -> (String, Option<usize>) {
    let mut iter = chunk.iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                name = Some(id.to_string());
                break;
            }
            other => panic!("serde_derive shim: unexpected token in variant: {other}"),
        }
    }
    let name = name.expect("serde_derive shim: variant without a name");
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = split_top_level_commas(g.stream()).len();
            (name, Some(arity))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            panic!(
                "serde_derive shim: struct-like enum variants are not supported (variant {name})"
            )
        }
        _ => (name, None), // unit variant (possibly `= discriminant`, ignored)
    }
}

fn parse(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter();
    let mut kind = None;
    // Preamble: attributes and visibility before `struct`/`enum`.
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr_body(&mut iter),
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    kind = Some(word);
                    break;
                }
                // `pub`, `pub(crate)` (the paren group is a separate tree,
                // harmlessly skipped by the Group arm below on next loop).
            }
            TokenTree::Group(_) => {} // the `(crate)` of a visibility
            other => panic!("serde_derive shim: unexpected token before type: {other}"),
        }
    }
    let kind = kind.expect("serde_derive shim: no struct/enum keyword found");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break g;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                // Unit struct `struct Foo;`
                return Parsed {
                    name,
                    shape: Shape::Tuple(0),
                };
            }
            Some(_) => continue, // e.g. `where`-less tokens; none expected
            None => panic!("serde_derive shim: missing body for {name}"),
        }
    };
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Parenthesis) => {
            Shape::Tuple(split_top_level_commas(body.stream()).len())
        }
        ("struct", _) => Shape::Named(
            split_top_level_commas(body.stream())
                .iter()
                .map(|c| field_name(c))
                .collect(),
        ),
        ("enum", _) => Shape::Enum(
            split_top_level_commas(body.stream())
                .iter()
                .map(|c| parse_variant(c))
                .collect(),
        ),
        _ => unreachable!(),
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse(input);
    let body = match shape {
        Shape::Named(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');");
            code
        }
        Shape::Tuple(0) => "out.push_str(\"null\");".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            code.push_str("out.push(']');");
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, arity) in &variants {
                match arity {
                    None => {
                        arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                    }
                    Some(0) => arms.push_str(&format!(
                        "{name}::{v}() => out.push_str(\"\\\"{v}\\\"\"),\n"
                    )),
                    Some(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => {{\n\
                         out.push_str(\"{{\\\"{v}\\\":\");\n\
                         ::serde::Serialize::serialize_json(f0, out);\n\
                         out.push('}}');\n\
                         }}\n"
                    )),
                    Some(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{v}({}) => {{\nout.push_str(\"{{\\\"{v}\\\":[\");\n",
                            binders.join(", ")
                        );
                        for (i, b) in binders.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("out.push(',');\n");
                            }
                            arm.push_str(&format!(
                                "::serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        arm.push_str("out.push_str(\"]}\");\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, .. } = parse(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
