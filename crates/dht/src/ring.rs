//! Consistent hashing ring with virtual nodes.
//!
//! Keys and node replicas are hashed onto a 64-bit circle; a key is owned by
//! the first node replica found walking clockwise from the key's position.
//! Virtual nodes (many ring positions per physical node) smooth out the load
//! distribution, and `successors` walks further around the circle to find the
//! `n` *distinct* physical nodes that hold a key's replicas — the standard
//! Dynamo/Chord construction.

use crate::node::DhtNodeId;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Hash an arbitrary byte string (or hashable value) onto the ring.
fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    data.hash(&mut h);
    h.finish()
}

fn hash_vnode(node: DhtNodeId, replica: usize) -> u64 {
    let mut h = DefaultHasher::new();
    node.0.hash(&mut h);
    replica.hash(&mut h);
    // Mix in a constant so vnode hashes don't collide with raw key hashes in
    // pathological cases.
    0x9E37_79B9_7F4A_7C15u64.hash(&mut h);
    h.finish()
}

/// The consistent-hashing ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    virtual_nodes: usize,
    /// position on the circle -> physical node
    ring: BTreeMap<u64, DhtNodeId>,
}

impl HashRing {
    /// Create an empty ring; each node added will occupy `virtual_nodes`
    /// positions.
    pub fn new(virtual_nodes: usize) -> Self {
        assert!(
            virtual_nodes >= 1,
            "at least one virtual node per node is required"
        );
        HashRing {
            virtual_nodes,
            ring: BTreeMap::new(),
        }
    }

    /// Number of physical nodes on the ring.
    pub fn len(&self) -> usize {
        // Each physical node occupies exactly `virtual_nodes` positions, but
        // hash collisions could in principle merge two; count distinct ids.
        let mut ids: Vec<DhtNodeId> = self.ring.values().copied().collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// True when the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Add a physical node (idempotent).
    pub fn add_node(&mut self, node: DhtNodeId) {
        for r in 0..self.virtual_nodes {
            self.ring.insert(hash_vnode(node, r), node);
        }
    }

    /// Remove a physical node (idempotent).
    pub fn remove_node(&mut self, node: DhtNodeId) {
        self.ring.retain(|_, v| *v != node);
    }

    /// The primary owner of `key`, or `None` if the ring is empty.
    pub fn primary(&self, key: &[u8]) -> Option<DhtNodeId> {
        self.successors(key, 1).into_iter().next()
    }

    /// The first `n` *distinct* physical nodes encountered walking clockwise
    /// from the key's position. Returns fewer than `n` if the ring has fewer
    /// distinct nodes.
    pub fn successors(&self, key: &[u8], n: usize) -> Vec<DhtNodeId> {
        if self.ring.is_empty() || n == 0 {
            return Vec::new();
        }
        let start = hash_bytes(key);
        let mut out: Vec<DhtNodeId> = Vec::with_capacity(n);
        // Walk from `start` to the end of the circle, then wrap around.
        for (_, node) in self.ring.range(start..).chain(self.ring.range(..start)) {
            if !out.contains(node) {
                out.push(*node);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_ring_has_no_owners() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.primary(b"key"), None);
        assert!(ring.successors(b"key", 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::new(8);
        ring.add_node(DhtNodeId(0));
        assert_eq!(ring.len(), 1);
        for i in 0..100 {
            assert_eq!(
                ring.primary(format!("key-{i}").as_bytes()),
                Some(DhtNodeId(0))
            );
        }
    }

    #[test]
    fn successors_are_distinct_physical_nodes() {
        let mut ring = HashRing::new(32);
        for i in 0..5 {
            ring.add_node(DhtNodeId(i));
        }
        for i in 0..50 {
            let succ = ring.successors(format!("k{i}").as_bytes(), 3);
            assert_eq!(succ.len(), 3);
            let unique: std::collections::HashSet<_> = succ.iter().collect();
            assert_eq!(unique.len(), 3);
        }
        // Asking for more replicas than nodes returns all nodes.
        assert_eq!(ring.successors(b"x", 10).len(), 5);
    }

    #[test]
    fn lookups_are_stable() {
        let mut ring = HashRing::new(16);
        for i in 0..4 {
            ring.add_node(DhtNodeId(i));
        }
        let first: Vec<_> = (0..100)
            .map(|i| ring.primary(format!("k{i}").as_bytes()))
            .collect();
        let second: Vec<_> = (0..100)
            .map(|i| ring.primary(format!("k{i}").as_bytes()))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let mut ring = HashRing::new(64);
        for i in 0..6 {
            ring.add_node(DhtNodeId(i));
        }
        let keys: Vec<String> = (0..500).map(|i| format!("key-{i}")).collect();
        let before: HashMap<&String, DhtNodeId> = keys
            .iter()
            .map(|k| (k, ring.primary(k.as_bytes()).unwrap()))
            .collect();
        ring.remove_node(DhtNodeId(2));
        let mut moved = 0;
        for k in &keys {
            let after = ring.primary(k.as_bytes()).unwrap();
            if before[k] != after {
                moved += 1;
                // A key only moves if its previous owner was the removed node.
                assert_eq!(
                    before[k],
                    DhtNodeId(2),
                    "key {k} moved although its owner survived"
                );
            }
            assert_ne!(after, DhtNodeId(2), "removed node still owns key {k}");
        }
        assert!(
            moved > 0,
            "some keys should have been owned by the removed node"
        );
    }

    #[test]
    fn adding_nodes_is_idempotent() {
        let mut ring = HashRing::new(8);
        ring.add_node(DhtNodeId(7));
        ring.add_node(DhtNodeId(7));
        assert_eq!(ring.len(), 1);
        ring.remove_node(DhtNodeId(7));
        assert!(ring.is_empty());
        ring.remove_node(DhtNodeId(7)); // removing twice is fine
        assert!(ring.is_empty());
    }

    #[test]
    fn virtual_nodes_balance_load() {
        let mut ring = HashRing::new(128);
        for i in 0..8 {
            ring.add_node(DhtNodeId(i));
        }
        let mut counts: HashMap<DhtNodeId, usize> = HashMap::new();
        for i in 0..4000 {
            let owner = ring.primary(format!("object-{i}").as_bytes()).unwrap();
            *counts.entry(owner).or_insert(0) += 1;
        }
        let min = counts.values().min().copied().unwrap_or(0);
        let max = counts.values().max().copied().unwrap_or(0);
        assert_eq!(counts.len(), 8, "every node should own some keys");
        assert!(
            (max as f64) < (min as f64) * 3.0,
            "virtual nodes should balance load: min={min}, max={max}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one virtual node")]
    fn zero_virtual_nodes_rejected() {
        let _ = HashRing::new(0);
    }
}
