//! E4 — application experiment: Random Text Writer job completion time,
//! BSFS vs HDFS (paper §IV-C).
//!
//! Two views are reported:
//!  * a real execution of the MapReduce job (threads, real bytes) at laptop
//!    scale on both backends, and
//!  * the paper-scale estimate derived from the job's access pattern —
//!    "concurrent massively parallel writes to different files" — replayed
//!    through the flow-level simulator (the paper itself equates the two).

use simcluster::metrics::completion_table;
use workloads::microbench::AccessPattern;
use workloads::simscale::{run_pattern, SimScaleConfig, StorageSystem};

fn main() {
    // Real execution, laptop scale.
    let block = 1u64 << 20;
    let (bsfs, hdfs) = bench::app_backends(block);
    let maps = 16;
    let records_per_map = 64;
    let bytes_per_record = 4096;

    let mut records = Vec::new();
    let job =
        workloads::random_text_writer_job("/rtw-out", maps, records_per_map, bytes_per_record, 42);
    let (_r, rec) = bench::run_job_on(&bsfs, &bench::app_topology(), &job);
    records.push(rec);
    let job =
        workloads::random_text_writer_job("/rtw-out", maps, records_per_map, bytes_per_record, 42);
    let (_r, rec) = bench::run_job_on(&hdfs, &bench::app_topology(), &job);
    records.push(rec);

    println!("== E4: Random Text Writer, real execution (laptop scale) ==");
    println!("({maps} map-only tasks x {records_per_map} records x {bytes_per_record} B, 8 nodes)");
    println!();
    print!("{}", completion_table(&records));
    println!();

    // Paper-scale estimate from the job's access pattern.
    println!("== E4: Random Text Writer, paper-scale estimate (write pattern) ==");
    println!("(each of 100 writers emits 1 GiB of generated text: job time ~ slowest writer)");
    println!();
    println!(
        "{:<8} {:>22} {:>22}",
        "system", "agg throughput MiB/s", "est. completion (s)"
    );
    for system in [StorageSystem::Bsfs, StorageSystem::Hdfs] {
        let config = SimScaleConfig::paper(100);
        let (agg, per_client) = run_pattern(system, AccessPattern::WriteDistinctFiles, &config);
        let est_secs = config.bytes_per_client as f64 / per_client;
        println!(
            "{:<8} {:>22.1} {:>22.1}",
            system.name(),
            agg / (1024.0 * 1024.0),
            est_secs
        );
    }
}
