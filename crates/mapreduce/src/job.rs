//! Job definitions: mappers, reducers and job configuration.
//!
//! The programming model follows the paper's description of MapReduce (§II-A):
//! "the user of the MapReduce library expresses the computation as two
//! functions: map, that processes a key-value pair to generate a set of
//! intermediate key-value pairs, and reduce, that merges all intermediate
//! values associated with the same intermediate key." Input records are text
//! lines keyed by their byte offset (Hadoop's `TextInputFormat`), which is
//! what both applications in the paper's evaluation consume.

use crate::error::MrResult;
use crate::scheduler::SpeculationPolicy;
use std::fmt;
use std::sync::Arc;

/// A user-supplied map function.
pub trait Mapper: Send + Sync {
    /// Process one input record. `offset` is the byte offset of the line in
    /// its file (the "key" of Hadoop's text input format); `line` is the line
    /// without its trailing newline. Emitted pairs go to the shuffle.
    fn map(&self, offset: u64, line: &str, emit: &mut dyn FnMut(String, String)) -> MrResult<()>;

    /// Like [`Mapper::map`], but also told which input file the record came
    /// from (`""` for synthetic splits). The framework always calls this
    /// entry point; the default implementation ignores the path and delegates
    /// to [`Mapper::map`]. Multi-input jobs (e.g. the equi-join) override it
    /// to tag records by their source — the Rust stand-in for Hadoop's
    /// per-split `InputFormat` context.
    fn map_with_source(
        &self,
        path: &str,
        offset: u64,
        line: &str,
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        let _ = path;
        self.map(offset, line, emit)
    }
}

/// A user-supplied reduce function.
pub trait Reducer: Send + Sync {
    /// Merge all values of one intermediate key. Emitted pairs are written to
    /// the task's output file.
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()>;
}

/// A reducer that forwards every (key, value) pair unchanged.
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        for v in values {
            emit(key.to_string(), v.clone());
        }
        Ok(())
    }
}

/// A reducer that sums integer values per key (the word-count/grep reducer).
pub struct SumReducer;

impl Reducer for SumReducer {
    fn reduce(
        &self,
        key: &str,
        values: &[String],
        emit: &mut dyn FnMut(String, String),
    ) -> MrResult<()> {
        let total: u64 = values.iter().filter_map(|v| v.parse::<u64>().ok()).sum();
        emit(key.to_string(), total.to_string());
        Ok(())
    }
}

/// Decides which reduce partition an intermediate key belongs to. The
/// partitioner must be a pure function of `(key, num_partitions)`: both the
/// storage-backed shuffle and the in-memory oracle rely on every map task
/// agreeing on the mapping.
pub trait Partitioner: Send + Sync {
    /// Partition index in `0..num_partitions` for `key`.
    fn partition(&self, key: &str, num_partitions: usize) -> usize;
}

/// Hadoop's default `HashPartitioner`: hash the key, modulo the reducer
/// count.
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &str, num_partitions: usize) -> usize {
        crate::tasktracker::partition_for(key, num_partitions)
    }
}

/// TeraSort-style range partitioner: `boundaries` is a sorted list of split
/// points; keys below the first boundary go to partition 0, keys in
/// `[boundaries[i-1], boundaries[i])` to partition `i`, and keys at or above
/// the last boundary to the last partition. With boundaries sampled from the
/// input, concatenating the reduce outputs in partition order yields a
/// globally sorted result.
pub struct RangePartitioner {
    boundaries: Vec<String>,
}

impl RangePartitioner {
    /// Build a partitioner from split points (sorted and deduplicated here).
    pub fn new(mut boundaries: Vec<String>) -> Self {
        boundaries.sort();
        boundaries.dedup();
        RangePartitioner { boundaries }
    }

    /// The split points, sorted ascending.
    pub fn boundaries(&self) -> &[String] {
        &self.boundaries
    }
}

impl Partitioner for RangePartitioner {
    fn partition(&self, key: &str, num_partitions: usize) -> usize {
        if num_partitions <= 1 {
            return 0;
        }
        let rank = self.boundaries.partition_point(|b| b.as_str() <= key);
        rank.min(num_partitions - 1)
    }
}

/// Where a job's input records come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSpec {
    /// Read text records from these files (directories are expanded).
    Files(Vec<String>),
    /// Generate `splits` synthetic splits of `records_per_split` empty
    /// records each. Used by generator jobs such as Random Text Writer, which
    /// have no input data (the Hadoop original uses the same trick).
    Synthetic {
        splits: usize,
        records_per_split: u64,
    },
}

/// Configuration of one MapReduce job.
#[derive(Clone)]
pub struct JobConfig {
    /// Human-readable job name (used in reports).
    pub name: String,
    /// The tenant the job is accounted to: fair-share weights, capacity
    /// caps, and admission quotas are all keyed by this string. Every job
    /// belongs to `"default"` unless overridden.
    pub tenant: String,
    /// Input description.
    pub input: InputSpec,
    /// Directory the output `part-*` files are written to. Must not exist.
    pub output_dir: String,
    /// Number of reduce tasks. Zero makes the job map-only: each map task
    /// writes its own `part-m-*` file directly, as Hadoop does.
    pub num_reducers: usize,
    /// Split size in bytes for file inputs (Hadoop uses the chunk size).
    pub split_size: u64,
    /// How many times a failed task is retried before the job fails.
    pub max_task_attempts: usize,
    /// Optional combiner, run over each map task's sorted partition buckets
    /// at spill time (Hadoop's mini-reduce). Cuts the bytes the shuffle moves
    /// through the storage layer for aggregation-shaped jobs; must be
    /// semantically safe to apply zero or more times (associative and
    /// commutative, like a sum).
    pub combiner: Option<Arc<dyn Reducer>>,
    /// Optional straggler-speculation policy. When set, idle worker slots
    /// may clone a slow task's sole running attempt onto another node; the
    /// first attempt to commit wins and the loser's work is discarded
    /// (Hadoop's speculative execution). `None` disables speculation.
    pub speculation: Option<Arc<dyn SpeculationPolicy>>,
    /// Optional merge-spill compaction threshold: when the job's map count
    /// exceeds this value, idle map slots k-way-merge committed spills into
    /// per-partition merged runs, so each reducer fetches O(runs) segments
    /// instead of O(maps). `None` disables compaction.
    pub compaction_threshold: Option<usize>,
}

impl fmt::Debug for JobConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobConfig")
            .field("name", &self.name)
            .field("tenant", &self.tenant)
            .field("input", &self.input)
            .field("output_dir", &self.output_dir)
            .field("num_reducers", &self.num_reducers)
            .field("split_size", &self.split_size)
            .field("max_task_attempts", &self.max_task_attempts)
            .field("combiner", &self.combiner.is_some())
            .field("speculation", &self.speculation.is_some())
            .field("compaction_threshold", &self.compaction_threshold)
            .finish()
    }
}

impl JobConfig {
    /// A configuration with sensible defaults for the given name, input and
    /// output.
    pub fn new(name: impl Into<String>, input: InputSpec, output_dir: impl Into<String>) -> Self {
        JobConfig {
            name: name.into(),
            tenant: "default".into(),
            input,
            output_dir: output_dir.into(),
            num_reducers: 1,
            split_size: 64 * 1024 * 1024,
            max_task_attempts: 4,
            combiner: None,
            speculation: None,
            compaction_threshold: None,
        }
    }

    /// Builder-style tenant assignment (multi-tenant scheduling and quotas
    /// are keyed by tenant).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Builder-style override of the reducer count.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n;
        self
    }

    /// Builder-style override of the split size.
    pub fn with_split_size(mut self, split_size: u64) -> Self {
        self.split_size = split_size;
        self
    }

    /// Builder-style override of the retry limit.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Builder-style combiner (run at spill time in each map task).
    pub fn with_combiner(mut self, combiner: Arc<dyn Reducer>) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Builder-style speculation policy (straggler cloning by idle slots).
    pub fn with_speculation(mut self, policy: Arc<dyn SpeculationPolicy>) -> Self {
        self.speculation = Some(policy);
        self
    }

    /// Builder-style merge-spill compaction: enabled for jobs whose map
    /// count exceeds `threshold` (0 compacts every multi-map job).
    pub fn with_compaction(mut self, threshold: usize) -> Self {
        self.compaction_threshold = Some(threshold);
        self
    }
}

/// A runnable job: configuration plus user code.
pub struct Job {
    /// Job configuration.
    pub config: JobConfig,
    /// The map function.
    pub mapper: Arc<dyn Mapper>,
    /// The reduce function (ignored for map-only jobs).
    pub reducer: Arc<dyn Reducer>,
    /// How intermediate keys are assigned to reduce partitions.
    pub partitioner: Arc<dyn Partitioner>,
}

impl Job {
    /// Build a job from its parts (hash partitioning, Hadoop's default).
    pub fn new(config: JobConfig, mapper: Arc<dyn Mapper>, reducer: Arc<dyn Reducer>) -> Self {
        Job {
            config,
            mapper,
            reducer,
            partitioner: Arc::new(HashPartitioner),
        }
    }

    /// Build a map-only job (no reduce phase).
    pub fn map_only(config: JobConfig, mapper: Arc<dyn Mapper>) -> Self {
        let config = JobConfig {
            num_reducers: 0,
            ..config
        };
        Job {
            config,
            mapper,
            reducer: Arc::new(IdentityReducer),
            partitioner: Arc::new(HashPartitioner),
        }
    }

    /// Builder-style override of the partitioner (e.g. the sort job's
    /// [`RangePartitioner`]).
    pub fn with_partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }
}

/// Format an emitted pair the way Hadoop's `TextOutputFormat` does:
/// `key<TAB>value`, with the tab omitted when the value is empty.
pub fn format_output_record(key: &str, value: &str) -> String {
    if value.is_empty() {
        format!("{key}\n")
    } else {
        format!("{key}\t{value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpperMapper;
    impl Mapper for UpperMapper {
        fn map(
            &self,
            offset: u64,
            line: &str,
            emit: &mut dyn FnMut(String, String),
        ) -> MrResult<()> {
            emit(line.to_uppercase(), offset.to_string());
            Ok(())
        }
    }

    #[test]
    fn mapper_trait_objects_work() {
        let m: Arc<dyn Mapper> = Arc::new(UpperMapper);
        let mut out = Vec::new();
        m.map(7, "hello", &mut |k, v| out.push((k, v))).unwrap();
        assert_eq!(out, vec![("HELLO".to_string(), "7".to_string())]);
    }

    #[test]
    fn identity_reducer_passes_through() {
        let r = IdentityReducer;
        let mut out = Vec::new();
        r.reduce("k", &["a".into(), "b".into()], &mut |k, v| out.push((k, v)))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].1, "b");
    }

    #[test]
    fn sum_reducer_adds_counts() {
        let r = SumReducer;
        let mut out = Vec::new();
        r.reduce(
            "word",
            &["1".into(), "2".into(), "bad".into(), "4".into()],
            &mut |k, v| out.push((k, v)),
        )
        .unwrap();
        assert_eq!(out, vec![("word".to_string(), "7".to_string())]);
    }

    #[test]
    fn job_config_builders() {
        let c = JobConfig::new("grep", InputSpec::Files(vec!["/in".into()]), "/out")
            .with_reducers(4)
            .with_split_size(1024)
            .with_max_attempts(0);
        assert_eq!(c.num_reducers, 4);
        assert_eq!(c.split_size, 1024);
        assert_eq!(
            c.max_task_attempts, 1,
            "attempts are clamped to at least one"
        );
        assert_eq!(c.name, "grep");
        assert_eq!(c.tenant, "default", "jobs belong to 'default' by default");
        let c = c.with_tenant("acme");
        assert_eq!(c.tenant, "acme");
        assert!(format!("{c:?}").contains("acme"));
    }

    #[test]
    fn map_only_forces_zero_reducers() {
        let c = JobConfig::new(
            "writer",
            InputSpec::Synthetic {
                splits: 3,
                records_per_split: 10,
            },
            "/out",
        )
        .with_reducers(5);
        let job = Job::map_only(c, Arc::new(UpperMapper));
        assert_eq!(job.config.num_reducers, 0);
    }

    #[test]
    fn output_record_formatting() {
        assert_eq!(format_output_record("k", "v"), "k\tv\n");
        assert_eq!(format_output_record("only-key", ""), "only-key\n");
    }

    #[test]
    fn map_with_source_defaults_to_map() {
        let m = UpperMapper;
        let mut out = Vec::new();
        m.map_with_source("/in/file", 3, "abc", &mut |k, v| out.push((k, v)))
            .unwrap();
        assert_eq!(out, vec![("ABC".to_string(), "3".to_string())]);
    }

    #[test]
    fn range_partitioner_buckets_by_boundary() {
        // Deliberately unsorted with a duplicate: new() normalizes.
        let p = RangePartitioner::new(vec!["m".into(), "g".into(), "g".into()]);
        assert_eq!(p.boundaries(), &["g".to_string(), "m".to_string()]);
        assert_eq!(p.partition("a", 3), 0);
        assert_eq!(p.partition("g", 3), 1, "boundary key goes right");
        assert_eq!(p.partition("h", 3), 1);
        assert_eq!(p.partition("m", 3), 2);
        assert_eq!(p.partition("z", 3), 2);
        // More boundaries than partitions: clamped to the last partition.
        assert_eq!(p.partition("z", 2), 1);
        assert_eq!(p.partition("z", 1), 0);
    }

    #[test]
    fn range_partitioner_with_no_boundaries_sends_everything_to_partition_0() {
        // Sampling an empty input yields no split points: every key must
        // land in partition 0 regardless of the reducer count, and the
        // remaining reducers simply produce empty part files.
        let p = RangePartitioner::new(Vec::new());
        assert!(p.boundaries().is_empty());
        for key in ["", "a", "zzz", "\u{10FFFF}"] {
            for n in [1, 2, 5] {
                assert_eq!(p.partition(key, n), 0, "key {key:?} with {n} partitions");
            }
        }
    }

    #[test]
    fn range_partitioner_with_all_duplicate_keys_collapses_to_one_boundary() {
        // An input where every record has the same key samples to a single
        // distinct boundary: keys below it go left, the key itself and
        // everything above goes right — still a valid total order.
        let p = RangePartitioner::new(vec!["k".into(); 100]);
        assert_eq!(p.boundaries(), &["k".to_string()]);
        assert_eq!(p.partition("a", 4), 0);
        assert_eq!(p.partition("k", 4), 1);
        assert_eq!(p.partition("z", 4), 1, "partitions 2..4 stay empty");
    }

    #[test]
    fn range_partitioner_with_fewer_distinct_keys_than_reducers() {
        // 2 distinct boundaries, 6 reducers: only partitions 0..=2 can ever
        // receive keys; the mapping must stay in range and order-preserving.
        let p = RangePartitioner::new(vec!["g".into(), "g".into(), "m".into()]);
        let keys = ["a", "g", "h", "m", "z"];
        let parts: Vec<usize> = keys.iter().map(|k| p.partition(k, 6)).collect();
        assert_eq!(parts, vec![0, 1, 1, 2, 2]);
        assert!(parts.iter().all(|&p| p < 6));
        // Order preservation: partition index is monotone in the key.
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_string_keys_sort_before_any_boundary() {
        let p = RangePartitioner::new(vec!["a".into()]);
        assert_eq!(p.partition("", 2), 0);
        assert_eq!(p.partition("a", 2), 1);
    }

    #[test]
    fn speculation_builder_and_debug() {
        use crate::scheduler::SlowestFactorPolicy;
        let c = JobConfig::new("wc", InputSpec::Files(vec!["/in".into()]), "/out");
        assert!(c.speculation.is_none(), "speculation is off by default");
        assert!(format!("{c:?}").contains("speculation: false"));
        let c = c.with_speculation(Arc::new(SlowestFactorPolicy::default()));
        assert!(c.speculation.is_some());
        assert!(format!("{c:?}").contains("speculation: true"));
    }

    #[test]
    fn hash_partitioner_matches_partition_for() {
        let p = HashPartitioner;
        for key in ["a", "bb", "ccc"] {
            assert_eq!(
                p.partition(key, 5),
                crate::tasktracker::partition_for(key, 5)
            );
        }
    }

    #[test]
    fn combiner_builder_and_debug() {
        let c = JobConfig::new("wc", InputSpec::Files(vec!["/in".into()]), "/out");
        assert!(c.combiner.is_none());
        assert!(format!("{c:?}").contains("combiner: false"));
        let c = c.with_combiner(Arc::new(SumReducer));
        assert!(c.combiner.is_some());
        assert!(format!("{c:?}").contains("combiner: true"));
    }

    #[test]
    fn compaction_builder_and_debug() {
        let c = JobConfig::new("wc", InputSpec::Files(vec!["/in".into()]), "/out");
        assert!(
            c.compaction_threshold.is_none(),
            "compaction off by default"
        );
        assert!(format!("{c:?}").contains("compaction_threshold: None"));
        let c = c.with_compaction(8);
        assert_eq!(c.compaction_threshold, Some(8));
        assert!(format!("{c:?}").contains("compaction_threshold: Some(8)"));
    }

    #[test]
    fn partitioner_override() {
        let config = JobConfig::new("sort", InputSpec::Files(vec!["/in".into()]), "/out");
        let job = Job::new(config, Arc::new(UpperMapper), Arc::new(IdentityReducer))
            .with_partitioner(Arc::new(RangePartitioner::new(vec!["k".into()])));
        assert_eq!(job.partitioner.partition("a", 2), 0);
        assert_eq!(job.partitioner.partition("x", 2), 1);
    }
}
