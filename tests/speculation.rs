//! Deterministic straggler/speculation scenarios on a virtual clock.
//!
//! Every test injects stragglers through [`workloads::SlowFs`] (delays are
//! virtual-clock sleeps on specific task attempts) and runs the jobtracker
//! under a manually pumped [`SimClock`] — a "60 second" straggler costs no
//! real time, and no test below contains a wall-clock sleep. Covered paths:
//! speculation disabled (the job waits out the straggler), speculation
//! winning (a clone beats the straggler and completion time drops), and
//! speculation losing (the clone is slower; its work is counted as waste and
//! discarded without corrupting the winner's output).

use blobseer::{BlobSeer, BlobSeerConfig};
use bsfs::{Bsfs, BsfsConfig};
use mapreduce::fs::{BsfsFs, DistFs};
use mapreduce::jobtracker::{JobResult, JobTracker};
use mapreduce::{Job, SlowestFactorPolicy, TaskTracker};
use simcluster::clock::SimClock;
use simcluster::ClusterTopology;
use std::sync::Arc;
use std::time::Duration;
use workloads::{word_count_job, DelayRule, SlowFs};

/// A 4-node BSFS cluster with one map and one reduce slot per node, so the
/// slot/straggler arithmetic of the scenarios is easy to reason about.
fn cluster() -> (ClusterTopology, BsfsFs, Vec<TaskTracker>) {
    let topo = ClusterTopology::flat(4);
    let nodes: Vec<_> = topo.all_nodes().collect();
    let storage = BlobSeer::with_topology(
        BlobSeerConfig::for_tests()
            .with_providers(nodes.len())
            .with_page_size(512),
        &topo,
        &nodes,
    );
    let fs = BsfsFs::new(Bsfs::new(
        storage,
        BsfsConfig::for_tests().with_block_size(512),
    ));
    let trackers = nodes
        .iter()
        .map(|&n| TaskTracker::new(n).with_slots(1, 1))
        .collect();
    (topo, fs, trackers)
}

fn input_text() -> String {
    let mut text = String::new();
    for i in 0..80 {
        text.push_str(&format!("alpha bravo{} charlie delta{}\n", i % 5, i % 3));
    }
    text
}

fn policy() -> Arc<SlowestFactorPolicy> {
    Arc::new(SlowestFactorPolicy {
        slowest_factor: 2.0,
        // Well above the pump step: a healthy task would have to straddle
        // five 1s virtual ticks (~10ms of real stall while a straggler
        // sleeps) to be cloned by mistake.
        min_runtime: Duration::from_secs(5),
        min_completed: 1,
    })
}

/// Word count over [`input_text`] with ~8 map tasks and 2 reducers.
fn make_job(out: &str, speculate: bool) -> Job {
    let mut job = word_count_job(vec!["/in/data.txt".into()], out, 2, 256);
    if speculate {
        job.config.speculation = Some(policy());
    }
    job
}

/// Run one scenario: build the cluster, wrap the storage in a [`SlowFs`]
/// with `rules`, and execute `make_job(out, speculate)` under a pumped
/// SimClock. Returns the result plus the fs for output inspection.
fn run_scenario(rules: Vec<DelayRule>, speculate: bool) -> (JobResult, Box<dyn DistFs>) {
    let (topo, fs, trackers) = cluster();
    let clock = Arc::new(SimClock::new());
    let slow: Box<dyn DistFs> = Box::new(SlowFs::new(Box::new(fs), clock.clone(), rules));
    slow.write_file("/in/data.txt", input_text().as_bytes())
        .unwrap();
    let jt = JobTracker::with_trackers(&topo, trackers).with_clock(clock.clone());
    let result = clock.drive(Duration::from_secs(1), || {
        jt.run(&*slow, &make_job("/out", speculate)).unwrap()
    });

    // The oracle never writes attempt scratch, so no rule can fire: safe to
    // run without the pump.
    let oracle = jt
        .run_inmem(&*slow, &make_job("/out-oracle", speculate))
        .unwrap();
    assert_eq!(result.output_files.len(), oracle.output_files.len());
    for (d, o) in result.output_files.iter().zip(&oracle.output_files) {
        assert_eq!(
            slow.read_file(d).unwrap(),
            slow.read_file(o).unwrap(),
            "{d} diverges from the in-memory oracle"
        );
    }
    // Scratch space (including any losing attempt's leftovers) is gone.
    assert!(
        !slow.exists("/out/_temporary"),
        "scratch dir must be cleaned"
    );
    assert!(!slow.exists("/out/_shuffle"), "shuffle dir must be cleaned");
    let mut listed = slow.list("/out").unwrap();
    listed.sort();
    assert_eq!(listed, result.output_files);
    (result, slow)
}

const STRAGGLER: u64 = 60;

#[test]
fn without_speculation_the_job_waits_out_the_straggler() {
    // First attempt of map task 0 sleeps 60 virtual seconds; with
    // speculation disabled the job cannot finish before it.
    let rules = vec![DelayRule::create(
        "attempt-map-00000-0",
        Duration::from_secs(STRAGGLER),
    )];
    let (result, _) = run_scenario(rules, false);
    assert!(
        result.elapsed >= Duration::from_secs(STRAGGLER),
        "speculation off: completion {:?} must include the full straggler delay",
        result.elapsed
    );
    assert_eq!(result.speculation.launched, 0);
    assert_eq!(result.speculation.wins, 0);
    assert_eq!(result.task_retries, 0, "a slow task is not a failed task");
}

#[test]
fn speculation_beats_the_straggler_and_cuts_completion_time() {
    let rules = || {
        vec![DelayRule::create(
            "attempt-map-00000-0",
            Duration::from_secs(STRAGGLER),
        )]
    };
    let (off, _) = run_scenario(rules(), false);
    let (on, _) = run_scenario(rules(), true);

    // The acceptance criterion: same injected straggler, strictly lower
    // simulated completion time with speculation on.
    assert!(
        on.elapsed < off.elapsed,
        "speculation must cut completion time: on={:?} off={:?}",
        on.elapsed,
        off.elapsed
    );
    assert!(
        on.elapsed < Duration::from_secs(STRAGGLER / 2),
        "the clone finishes in a few virtual seconds, got {:?}",
        on.elapsed
    );
    let s = on.speculation;
    assert!(s.launched >= 1, "a clone must have been launched: {s:?}");
    assert!(s.wins >= 1, "the clone must have won: {s:?}");
    assert!(
        s.wasted_attempts >= 1,
        "the abandoned original is wasted work: {s:?}"
    );
    assert!(
        s.wasted_micros >= (STRAGGLER - 5) * 1_000_000,
        "the loser slept out its delay: {s:?}"
    );

    // Counters of the losing attempt must not be merged into the report:
    // the input was read once per *winning* task, every map task reports
    // exactly one locality, and the reducers fetched each segment once.
    let expected_records = input_text().lines().count() as u64;
    assert_eq!(on.input_records, expected_records);
    assert_eq!(on.locality.total(), on.map_tasks);
    assert_eq!(
        on.shuffle.segments_fetched,
        (on.map_tasks * on.reduce_tasks) as u64
    );
    assert_eq!(on.output_records, off.output_records);
}

#[test]
fn slower_clone_loses_and_is_counted_as_waste() {
    // The original straggles 10s; the clone (attempt 1 of the same task) is
    // made even slower (120s), so the original wins and the speculation is
    // pure waste — which the counters must admit.
    let rules = vec![
        DelayRule::create("attempt-map-00000-0", Duration::from_secs(10)),
        DelayRule::create("attempt-map-00000-1", Duration::from_secs(120)),
    ];
    let (result, _) = run_scenario(rules, true);
    assert!(
        result.elapsed >= Duration::from_secs(10),
        "the original still had to finish: {:?}",
        result.elapsed
    );
    assert!(
        result.elapsed < Duration::from_secs(60),
        "the losing clone must not delay the job: {:?}",
        result.elapsed
    );
    let s = result.speculation;
    assert_eq!(s.launched, 1, "exactly one clone: {s:?}");
    assert_eq!(s.wins, 0, "the clone lost: {s:?}");
    assert_eq!(s.wasted_attempts, 1, "{s:?}");
    assert!(
        s.wasted_micros >= 100 * 1_000_000,
        "the clone slept out most of its 120s: {s:?}"
    );
}

#[test]
fn slow_reducer_is_speculated_too() {
    // First attempt of reduce partition 0 straggles; its peers complete,
    // establishing the median, and an idle reduce slot clones it.
    let rules = vec![DelayRule::create(
        "attempt-reduce-00000-0",
        Duration::from_secs(STRAGGLER),
    )];
    let (result, _) = run_scenario(rules, true);
    assert!(
        result.elapsed < Duration::from_secs(STRAGGLER / 2),
        "the reduce clone rescues the job: {:?}",
        result.elapsed
    );
    let s = result.speculation;
    assert!(s.launched >= 1 && s.wins >= 1, "{s:?}");
    assert_eq!(
        result.shuffle.segments_fetched,
        (result.map_tasks * result.reduce_tasks) as u64,
        "only the winning reduce attempt's fetches are counted"
    );
}
