//! Deterministic random-text generation.
//!
//! The paper's first application experiment is "Random Text Writer, which
//! generates a huge sequence of random sentences formed from a list of
//! predefined words" (§IV-C) — Hadoop's classic `randomtextwriter` example.
//! This module provides the sentence generator: seeded, allocation-light and
//! deterministic, so experiment runs are reproducible bit for bit.

/// The predefined vocabulary sentences are drawn from. The words are a subset
/// of the list shipped with Hadoop's `RandomTextWriter` example.
pub const WORDS: &[&str] = &[
    "diurnalness",
    "officiousness",
    "acquirable",
    "unstipulated",
    "hemidactylous",
    "undetachable",
    "scintillant",
    "bromate",
    "pelvimetry",
    "stradametrical",
    "unpremonished",
    "denizenship",
    "vinegarish",
    "glaumrie",
    "tetchily",
    "pterostigma",
    "corbel",
    "critically",
    "unblenched",
    "licitation",
    "mesophyte",
    "interfraternal",
    "parmelioid",
    "entame",
    "stormy",
    "pricer",
    "appetite",
    "warm",
    "magnificent",
    "projection",
    "arrival",
    "preparation",
    "technology",
    "throughput",
    "cluster",
    "storage",
    "version",
    "concurrent",
    "distributed",
    "snapshot",
];

/// A deterministic sentence generator.
#[derive(Debug, Clone)]
pub struct TextGenerator {
    state: u64,
    /// Minimum words per sentence.
    pub min_words: usize,
    /// Maximum words per sentence.
    pub max_words: usize,
}

impl TextGenerator {
    /// Create a generator with the given seed and the Hadoop-like sentence
    /// length range (10 to 100 words for keys+values; we use 5..=20 which
    /// produces comparable line lengths with the shorter vocabulary).
    pub fn new(seed: u64) -> Self {
        TextGenerator {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
            min_words: 5,
            max_words: 20,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: fast, decent distribution, fully deterministic.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value in `[0, bound)`.
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() as usize) % bound
    }

    /// Generate one sentence (words separated by single spaces, no newline).
    pub fn sentence(&mut self) -> String {
        let n = self.min_words + self.below(self.max_words - self.min_words + 1);
        let mut out = String::with_capacity(n * 12);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.below(WORDS.len())]);
        }
        out
    }

    /// Generate newline-terminated sentences until at least `target_bytes`
    /// bytes have been produced.
    pub fn text_of_at_least(&mut self, target_bytes: usize) -> String {
        let mut out = String::with_capacity(target_bytes + 128);
        while out.len() < target_bytes {
            out.push_str(&self.sentence());
            out.push('\n');
        }
        out
    }

    /// Generate exactly `count` newline-terminated sentences.
    pub fn sentences(&mut self, count: usize) -> String {
        let mut out = String::new();
        for _ in 0..count {
            out.push_str(&self.sentence());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_use_only_vocabulary_words() {
        let mut g = TextGenerator::new(7);
        for _ in 0..50 {
            let s = g.sentence();
            for word in s.split(' ') {
                assert!(WORDS.contains(&word), "unexpected word {word:?}");
            }
            let count = s.split(' ').count();
            assert!((5..=20).contains(&count));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut g = TextGenerator::new(42);
            (0..20).map(|_| g.sentence()).collect()
        };
        let b: Vec<String> = {
            let mut g = TextGenerator::new(42);
            (0..20).map(|_| g.sentence()).collect()
        };
        let c: Vec<String> = {
            let mut g = TextGenerator::new(43);
            (0..20).map(|_| g.sentence()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn text_of_at_least_reaches_the_target() {
        let mut g = TextGenerator::new(1);
        let text = g.text_of_at_least(10_000);
        assert!(text.len() >= 10_000);
        assert!(text.ends_with('\n'));
        assert!(text.lines().count() > 50);
    }

    #[test]
    fn sentences_counts_lines() {
        let mut g = TextGenerator::new(9);
        let text = g.sentences(37);
        assert_eq!(text.lines().count(), 37);
    }
}
