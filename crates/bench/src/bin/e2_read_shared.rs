//! E2 — microbenchmark: concurrent clients reading *non-overlapping parts of
//! the same huge file* (map phase over one shared input, paper §IV-B).
//!
//! Runs the paper-scale sweep, then a laptop-scale real-data section with
//! the read-path instrumentation. The shared file makes this the workload
//! where the immutable-node cache matters most: every client descends the
//! same segment tree, so the upper levels are resolved once and then served
//! from the cache for everyone.

use workloads::microbench::AccessPattern;

fn main() {
    // BENCH_SMOKE=1 runs a tiny sweep (CI uses it as a does-it-run guard);
    // unset, empty, or "0" runs the full paper-scale sweep.
    let smoke = bench::smoke_mode();
    let client_counts = bench::sweep_client_counts(smoke);
    let (bsfs, hdfs, records) =
        bench::paper_sweep("E2", AccessPattern::ReadSharedFile, client_counts);
    bench::print_sweep(
        "E2",
        "concurrent reads of non-overlapping parts of one huge file",
        &bsfs,
        &hdfs,
        &records,
    );
    let (clients, bytes_per_client) = if smoke { (2, 256 * 1024) } else { (8, 4 << 20) };
    let read_path =
        bench::read_path_section(AccessPattern::ReadSharedFile, clients, bytes_per_client);

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        sweep: Vec<bench::SweepRecord>,
        read_path: Vec<bench::ReadPathRecord>,
    }
    bench::emit_bench_json(
        "E2",
        &Snapshot {
            experiment: "E2",
            smoke,
            sweep: records,
            read_path,
        },
    );
}
