//! E12 — multi-tenant job scheduling: fair-share vs FIFO vs capacity.
//!
//! Two parts:
//!
//! 1. **Slot-market simulation.** Hundreds of small mixed jobs
//!    (grep / wordcount / sort / join shapes) from three tenants — a heavy
//!    batch tenant flooding the queue early, a light ad-hoc tenant trickling
//!    tiny jobs in, and a medium service tenant — compete for one shared
//!    slot pool on deterministic virtual ticks. The *real* scheduler
//!    implementations ([`FifoScheduler`], [`FairScheduler`],
//!    [`CapacityScheduler`]) arbitrate every slot grant, the *real*
//!    [`LatePolicy`] (longest-remaining-time estimator over per-job
//!    [`RuntimeHistory`]) decides speculation on idle slots, and starved
//!    tenants preempt speculative clones exactly like the jobtracker's
//!    engine. Only the task execution itself is simulated (a task is
//!    `duration` ticks, stragglers run slower), so the experiment scales to
//!    hundreds of jobs with zero nondeterminism. Reported per scheduler:
//!    per-tenant p50/p99 job latency and mean slowdown, Jain's fairness
//!    index over per-tenant *contended slot shares* (of the ticks where
//!    outstanding work exceeded the pool, what fraction of its entitled
//!    share each tenant actually held — the quantity the scheduler
//!    arbitrates; job slowdown also reflects a tenant's own backlog, which
//!    no scheduler can remove), and preemption waste.
//!
//! 2. **Engine smoke.** A handful of real jobs submitted concurrently
//!    through [`JobTracker::submit`] over one shared BSFS deployment under
//!    the fair scheduler — the end-to-end path (admission queue, slot
//!    leases, scoped scratch, ledger) exercised for real.
//!
//! Headline claims asserted: under the batch flood the fair scheduler cuts
//! the light tenant's p99 latency vs FIFO; fair-share keeps Jain ≥ 0.8; no
//! submitted job is ever lost; the simulation is bit-deterministic.
//!
//! `BENCH_SMOKE=1` shrinks everything to a does-it-run configuration (CI).

use mapreduce::fs::DistFs;
use mapreduce::jobsched::JobView;
use mapreduce::jobtracker::JobTracker;
use mapreduce::{
    AttemptView, CapacityScheduler, FairScheduler, FifoScheduler, JobScheduler, LatePolicy,
    RuntimeHistory, SlotCaps, SlotKind, SpeculationPolicy,
};
use simcluster::metrics::{jain_fairness_index, percentile};
use std::sync::Arc;
use std::time::Duration;
use workloads::{distributed_grep_job, word_count_job, TextGenerator};

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------------

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Workload model
// ---------------------------------------------------------------------------

const TENANTS: [&str; 3] = ["batch", "adhoc", "svc"];
const STRAGGLER_FACTOR: u64 = 8;

struct SimTask {
    /// Nominal ticks on a healthy node (what a speculative clone costs).
    duration: u64,
    /// The primary attempt's slowdown (1 = healthy, STRAGGLER_FACTOR = a
    /// straggling node).
    slow: u64,
    committed: bool,
    has_clone: bool,
}

struct SimJob {
    tenant: usize,
    app: &'static str,
    arrival: u64,
    tasks: Vec<SimTask>,
    next_task: usize,
    remaining: usize,
    held: usize,
    speculative: usize,
    done_at: Option<u64>,
    history: RuntimeHistory,
}

impl SimJob {
    fn demand(&self) -> usize {
        if self.done_at.is_some() {
            0
        } else {
            self.tasks.len() - self.next_task
        }
    }

    /// Ideal serial work: the nominal tick count of all tasks.
    fn work(&self) -> u64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }
}

/// Draw the synthetic job mix: a batch flood early, light ad-hoc jobs and a
/// steady service tenant spread over the arrival horizon.
fn generate_jobs(rng: &mut SplitMix64, total: usize, horizon: u64) -> Vec<SimJob> {
    let mut jobs = Vec::with_capacity(total);
    for i in 0..total {
        let (tenant, app, ntasks, arrival) = match i % 10 {
            // 70% heavy batch jobs, flooding in during the first tenth.
            0..=6 => {
                let app = match i % 3 {
                    0 => "wordcount",
                    1 => "sort",
                    _ => "join",
                };
                (0, app, rng.range(8, 25), rng.range(0, horizon / 10 + 1))
            }
            // 20% tiny ad-hoc grep jobs across the whole horizon.
            7..=8 => (1, "grep", rng.range(1, 4), rng.range(0, horizon)),
            // 10% medium service jobs across the whole horizon.
            _ => (2, "wordcount", rng.range(2, 7), rng.range(0, horizon)),
        };
        let tasks = (0..ntasks)
            .map(|_| SimTask {
                duration: rng.range(2, 8),
                // 1 in 8 primary attempts lands on a straggling node.
                slow: if rng.next_u64().is_multiple_of(8) {
                    STRAGGLER_FACTOR
                } else {
                    1
                },
                committed: false,
                has_clone: false,
            })
            .collect();
        jobs.push(SimJob {
            tenant,
            app,
            arrival,
            tasks,
            next_task: 0,
            remaining: ntasks as usize,
            held: 0,
            speculative: 0,
            done_at: None,
            history: RuntimeHistory::new(),
        });
    }
    jobs
}

// ---------------------------------------------------------------------------
// The slot market
// ---------------------------------------------------------------------------

struct Attempt {
    job: usize,
    task: usize,
    started: u64,
    finish: u64,
    speculative: bool,
}

#[derive(serde::Serialize, Clone, PartialEq)]
struct TenantStats {
    tenant: String,
    jobs: usize,
    p50_latency: f64,
    p99_latency: f64,
    mean_slowdown: f64,
    /// Mean fraction of its entitled slot share the tenant held during
    /// contended ticks (1.0 = always fully served while the pool was tight).
    slot_share: f64,
}

#[derive(serde::Serialize, Clone, PartialEq)]
struct SchedulerStats {
    scheduler: String,
    makespan: u64,
    jobs_completed: usize,
    jain_slot_shares: f64,
    clones_launched: u64,
    clone_wins: u64,
    preempted: u64,
    wasted_ticks: u64,
    tenants: Vec<TenantStats>,
}

fn simulate(
    scheduler: &dyn JobScheduler,
    total_slots: usize,
    njobs: usize,
    horizon: u64,
    seed: u64,
) -> SchedulerStats {
    let mut rng = SplitMix64(seed);
    let mut jobs = generate_jobs(&mut rng, njobs, horizon);
    let late = LatePolicy {
        late_factor: 1.0,
        min_runtime: Duration::from_secs(2),
        min_completed: 1,
    };
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut free = total_slots;
    let mut clones_launched = 0u64;
    let mut clone_wins = 0u64;
    let mut preempted = 0u64;
    let mut wasted_ticks = 0u64;
    let mut sat_sum = [0.0f64; 3];
    let mut sat_ticks = [0u64; 3];
    let mut t = 0u64;
    let deadline = horizon * 1000;

    while jobs.iter().any(|j| j.done_at.is_none()) {
        assert!(t < deadline, "simulation failed to converge");

        // Completions at this tick. First finisher of a task commits; a
        // rival attempt of an already-committed task is waste.
        let mut i = 0;
        while i < attempts.len() {
            if attempts[i].finish != t {
                i += 1;
                continue;
            }
            let a = attempts.remove(i);
            free += 1;
            let job = &mut jobs[a.job];
            job.held -= 1;
            if a.speculative {
                job.speculative -= 1;
            }
            if job.tasks[a.task].committed {
                wasted_ticks += t - a.started;
            } else {
                job.tasks[a.task].committed = true;
                job.remaining -= 1;
                job.history.record(Duration::from_secs(t - a.started));
                if a.speculative {
                    clone_wins += 1;
                }
                if job.remaining == 0 {
                    job.done_at = Some(t);
                }
            }
        }

        // Slot allocation: the real scheduler arbitrates every grant;
        // speculation only uses slots no job has demand for; starved
        // tenants reclaim slots from speculative clones.
        loop {
            let views: Vec<JobView> = jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.arrival <= t && j.done_at.is_none())
                .map(|(id, j)| JobView {
                    seq: id as u64,
                    tenant: TENANTS[j.tenant].to_string(),
                    demand: j.demand(),
                    held: j.held,
                    speculative: j.speculative,
                })
                .collect();
            if free == 0 {
                let starved = scheduler.starved(SlotKind::Map, total_slots, &views);
                if !starved.is_empty() {
                    // Preempt the youngest clone (least sunk work), exactly
                    // the duplicate-work-first policy of the engine.
                    if let Some(pos) = attempts
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.speculative)
                        .max_by_key(|(_, a)| a.started)
                        .map(|(pos, _)| pos)
                    {
                        let a = attempts.remove(pos);
                        free += 1;
                        preempted += 1;
                        wasted_ticks += t - a.started;
                        let job = &mut jobs[a.job];
                        job.held -= 1;
                        job.speculative -= 1;
                        job.tasks[a.task].has_clone = false;
                        continue;
                    }
                }
                break;
            }
            if let Some(v) = scheduler.pick(SlotKind::Map, total_slots, &views) {
                let id = views[v].seq as usize;
                let job = &mut jobs[id];
                let task = job.next_task;
                job.next_task += 1;
                job.held += 1;
                let dur = job.tasks[task].duration * job.tasks[task].slow;
                attempts.push(Attempt {
                    job: id,
                    task,
                    started: t,
                    finish: t + dur,
                    speculative: false,
                });
                free -= 1;
                continue;
            }
            // No demand anywhere: offer idle slots to LATE speculation.
            let candidate = attempts
                .iter()
                .filter(|a| {
                    !a.speculative
                        && !jobs[a.job].tasks[a.task].committed
                        && !jobs[a.job].tasks[a.task].has_clone
                })
                .filter(|a| {
                    let total = jobs[a.job].tasks[a.task].duration * jobs[a.job].tasks[a.task].slow;
                    let view = AttemptView {
                        runtime: Duration::from_secs(t - a.started),
                        progress: ((t - a.started) as f64 / total as f64).min(0.99),
                    };
                    late.should_speculate(view, &jobs[a.job].history)
                })
                .max_by_key(|a| {
                    let total = jobs[a.job].tasks[a.task].duration * jobs[a.job].tasks[a.task].slow;
                    let view = AttemptView {
                        runtime: Duration::from_secs(t - a.started),
                        progress: ((t - a.started) as f64 / total as f64).min(0.99),
                    };
                    late.urgency(view)
                })
                .map(|a| (a.job, a.task));
            if let Some((jid, task)) = candidate {
                let job = &mut jobs[jid];
                job.tasks[task].has_clone = true;
                job.held += 1;
                job.speculative += 1;
                let dur = job.tasks[task].duration; // clone runs healthy
                attempts.push(Attempt {
                    job: jid,
                    task,
                    started: t,
                    finish: t + dur,
                    speculative: true,
                });
                clones_launched += 1;
                free -= 1;
                continue;
            }
            break;
        }

        // Fairness sample: while outstanding work exceeds the pool, how much
        // of its entitled share does each tenant actually hold? Entitlement
        // is an equal split among tenants that want slots, capped at what
        // the tenant could use — so a light tenant fully served counts as
        // 1.0 even though it holds few slots.
        let mut want = [0usize; 3];
        let mut held_by = [0usize; 3];
        for j in jobs
            .iter()
            .filter(|j| j.arrival <= t && j.done_at.is_none())
        {
            want[j.tenant] += j.held + j.demand();
            held_by[j.tenant] += j.held;
        }
        let wanting = want.iter().filter(|w| **w > 0).count();
        if wanting > 0 && want.iter().sum::<usize>() > total_slots {
            let equal_share = (total_slots / wanting).max(1);
            for ti in 0..TENANTS.len() {
                if want[ti] > 0 {
                    let target = want[ti].min(equal_share);
                    sat_sum[ti] += (held_by[ti] as f64 / target as f64).min(1.0);
                    sat_ticks[ti] += 1;
                }
            }
        }
        t += 1;
    }

    let makespan = t;
    let mut tenants = Vec::new();
    for (ti, name) in TENANTS.iter().enumerate() {
        let latencies: Vec<f64> = jobs
            .iter()
            .filter(|j| j.tenant == ti)
            .map(|j| (j.done_at.expect("all jobs completed") - j.arrival) as f64)
            .collect();
        let slowdowns: Vec<f64> = jobs
            .iter()
            .filter(|j| j.tenant == ti)
            .map(|j| (j.done_at.unwrap() - j.arrival) as f64 / (j.work() as f64).max(1.0))
            .collect();
        tenants.push(TenantStats {
            tenant: name.to_string(),
            jobs: latencies.len(),
            p50_latency: percentile(&latencies, 50.0),
            p99_latency: percentile(&latencies, 99.0),
            mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64,
            slot_share: if sat_ticks[ti] > 0 {
                sat_sum[ti] / sat_ticks[ti] as f64
            } else {
                1.0 // never wanted a slot while the pool was contended
            },
        });
    }
    let jain = jain_fairness_index(&tenants.iter().map(|s| s.slot_share).collect::<Vec<_>>());
    SchedulerStats {
        scheduler: scheduler.name().to_string(),
        makespan,
        jobs_completed: jobs.len(),
        jain_slot_shares: jain,
        clones_launched,
        clone_wins,
        preempted,
        wasted_ticks,
        tenants,
    }
}

// ---------------------------------------------------------------------------
// Engine smoke: real concurrent submissions over one BSFS deployment
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct EngineSmoke {
    scheduler: &'static str,
    jobs_submitted: usize,
    jobs_completed: u64,
    tenants: Vec<String>,
}

fn engine_smoke(lines: usize) -> EngineSmoke {
    let topo = bench::app_topology();
    let (bsfs, _) = bench::app_backends(1 << 18);
    let fs: Arc<dyn DistFs> = Arc::new(bsfs);
    let mut generator = TextGenerator::new(2026);
    fs.write_file("/in/text.txt", generator.sentences(lines).as_bytes())
        .unwrap();
    let jt = JobTracker::new(&topo)
        .with_scheduler(Arc::new(FairScheduler::new().with_weight("adhoc", 2.0)))
        .with_max_concurrent_jobs(4);
    let specs = [
        ("batch", 0usize),
        ("batch", 0),
        ("batch", 1),
        ("adhoc", 1),
        ("adhoc", 1),
        ("svc", 0),
    ];
    let handles: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, (tenant, shape))| {
            let out = format!("/out-{i}");
            let mut job = match shape {
                0 => word_count_job(vec!["/in/text.txt".into()], &out, 2, 4096),
                _ => distributed_grep_job(vec!["/in/text.txt".into()], &out, "a", 4096),
            };
            job.config.tenant = tenant.to_string();
            jt.submit(fs.clone(), job).unwrap()
        })
        .collect();
    for h in handles {
        let result = h.wait().expect("submitted job must complete");
        assert!(!result.output_files.is_empty());
    }
    let tenants: Vec<String> = ["batch", "adhoc", "svc"]
        .iter()
        .map(|t| format!("{t}: {:?}", jt.tenant_usage(t)))
        .collect();
    let completed: u64 = ["batch", "adhoc", "svc"]
        .iter()
        .map(|t| jt.tenant_usage(t).jobs_completed)
        .sum();
    assert_eq!(
        completed,
        specs.len() as u64,
        "no submitted job may be lost"
    );
    EngineSmoke {
        scheduler: "fair",
        jobs_submitted: specs.len(),
        jobs_completed: completed,
        tenants,
    }
}

fn main() {
    let smoke = bench::smoke_mode();
    let (njobs, total_slots, horizon, lines) = if smoke {
        (60, 12, 200, 300)
    } else {
        (300, 24, 1000, 2000)
    };
    let seed = 2026;

    println!(
        "== E12: multi-tenant scheduling ({njobs} jobs, {} tenants, {total_slots} slots, \
         LATE speculation, deterministic ticks) ==",
        TENANTS.len()
    );
    // The job mix all three schedulers compete over (same seed, same draw).
    let mix: std::collections::BTreeMap<&'static str, usize> = {
        let mut rng = SplitMix64(seed);
        let jobs = generate_jobs(&mut rng, njobs, horizon);
        let mut counts = std::collections::BTreeMap::new();
        for j in &jobs {
            *counts.entry(j.app).or_insert(0) += 1;
        }
        counts
    };
    println!("job mix: {mix:?}");

    let schedulers: Vec<Box<dyn JobScheduler>> = vec![
        Box::new(FifoScheduler),
        Box::new(FairScheduler::new().with_weight("adhoc", 1.0)),
        Box::new(CapacityScheduler::new().with_cap(
            "batch",
            SlotCaps {
                map: total_slots * 2 / 3,
                reduce: total_slots * 2 / 3,
            },
        )),
    ];
    let mut runs: Vec<SchedulerStats> = Vec::new();
    for s in &schedulers {
        let stats = simulate(&**s, total_slots, njobs, horizon, seed);
        // Bit-determinism: the same seed must reproduce the same metrics.
        let again = simulate(&**s, total_slots, njobs, horizon, seed);
        assert!(
            stats == again,
            "{}: simulation must be deterministic",
            stats.scheduler
        );
        println!(
            "{:<9} makespan {:>6} | jain {:.3} | clones {:>4} (wins {:>3}) | \
             preempted {:>3} | waste {:>6} ticks",
            stats.scheduler,
            stats.makespan,
            stats.jain_slot_shares,
            stats.clones_launched,
            stats.clone_wins,
            stats.preempted,
            stats.wasted_ticks
        );
        for ts in &stats.tenants {
            println!(
                "  {:<6} {:>3} jobs | p50 {:>7.1} | p99 {:>7.1} | mean slowdown {:>6.2} | \
                 slot share {:>4.2}",
                ts.tenant, ts.jobs, ts.p50_latency, ts.p99_latency, ts.mean_slowdown, ts.slot_share
            );
        }
        runs.push(stats);
    }

    let fifo = &runs[0];
    let fair = &runs[1];
    let light = |r: &SchedulerStats| {
        r.tenants
            .iter()
            .find(|t| t.tenant == "adhoc")
            .unwrap()
            .clone()
    };
    assert_eq!(fifo.jobs_completed, njobs, "FIFO must not lose jobs");
    assert!(
        runs.iter().all(|r| r.jobs_completed == njobs),
        "no scheduler may lose jobs"
    );
    assert!(
        light(fair).p99_latency < light(fifo).p99_latency,
        "fair share must cut the light tenant's p99 under the batch flood \
         (fair {:.1} vs fifo {:.1})",
        light(fair).p99_latency,
        light(fifo).p99_latency
    );
    assert!(
        fair.jain_slot_shares >= 0.8,
        "fair share must keep Jain >= 0.8, got {:.3}",
        fair.jain_slot_shares
    );
    assert!(
        fair.jain_slot_shares >= fifo.jain_slot_shares,
        "fair share must not be less fair than FIFO ({:.3} vs {:.3})",
        fair.jain_slot_shares,
        fifo.jain_slot_shares
    );
    println!(
        "\nfair vs fifo: adhoc p99 {:.1} -> {:.1} ({:+.1}%), jain {:.3} -> {:.3}",
        light(fifo).p99_latency,
        light(fair).p99_latency,
        100.0 * (light(fair).p99_latency / light(fifo).p99_latency - 1.0),
        fifo.jain_slot_shares,
        fair.jain_slot_shares
    );

    println!("\n-- engine smoke: concurrent submits over one BSFS deployment --");
    let engine = engine_smoke(lines);
    for t in &engine.tenants {
        println!("  {t}");
    }

    #[derive(serde::Serialize)]
    struct Snapshot {
        experiment: &'static str,
        smoke: bool,
        jobs: usize,
        slots: usize,
        seed: u64,
        mix: std::collections::BTreeMap<&'static str, usize>,
        sim: Vec<SchedulerStats>,
        engine: EngineSmoke,
    }
    bench::emit_bench_json(
        "E12",
        &Snapshot {
            experiment: "E12",
            smoke,
            jobs: njobs,
            slots: total_slots,
            seed,
            mix,
            sim: runs,
            engine,
        },
    );
}
