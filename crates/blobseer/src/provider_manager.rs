//! The provider manager: decides which providers store which pages.
//!
//! "The providers store the pages, as assigned by the provider manager; the
//! distribution of pages to providers aims at achieving load-balancing"
//! (paper §III-A). The evaluation section credits exactly this load-balancing
//! allocation for BSFS's throughput advantage over HDFS, whose policy always
//! writes the first replica locally. To make that comparison (and the A1
//! ablation) possible, the manager supports several interchangeable
//! strategies.

use crate::config::DataPlaneMode;
use crate::provider::Provider;
use crate::types::ProviderId;
use kvstore::PageStore;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simcluster::topology::{ClusterTopology, Proximity};
use simcluster::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// How the provider manager spreads pages over providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// BlobSeer's strategy: pick the provider with the fewest allocated
    /// pages, breaking ties round-robin. Spreads load evenly over the whole
    /// deployment regardless of where the writer runs.
    LoadBalanced,
    /// The HDFS-style strategy used as the ablation baseline: the first
    /// replica goes to a provider co-located with the writing client (or the
    /// closest one), the second to a provider in the same rack, further
    /// replicas to providers outside the rack.
    LocalFirst,
    /// Uniformly random placement (a second ablation point: load-balancing
    /// without the least-loaded feedback loop).
    Random,
}

/// A registry of providers plus the placement logic.
pub struct ProviderManager {
    providers: RwLock<Vec<Arc<Provider>>>,
    topology: ClusterTopology,
    strategy: PlacementStrategy,
    /// Pages allocated to each provider so far (allocation-time accounting,
    /// maintained even before the data lands, so that concurrent writers
    /// spread out immediately).
    allocated: Mutex<HashMap<ProviderId, u64>>,
    /// Round-robin cursor used to break ties deterministically.
    cursor: Mutex<usize>,
    /// Deterministic pseudo-random state for [`PlacementStrategy::Random`].
    rng_state: Mutex<u64>,
}

impl ProviderManager {
    /// Create a manager over in-memory providers, one per entry of `nodes`,
    /// on the default (actor) data plane.
    pub fn new_in_memory(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
    ) -> Self {
        Self::new_in_memory_mode(topology, nodes, strategy, DataPlaneMode::default())
    }

    /// Create a manager over in-memory providers on an explicit data-plane
    /// mode.
    pub fn new_in_memory_mode(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
        mode: DataPlaneMode,
    ) -> Self {
        Self::new_with_backends_mode(topology, nodes, strategy, mode, |_| {
            Arc::new(kvstore::MemStore::new())
        })
    }

    /// Create a manager over providers with custom storage backends. The
    /// `backends` iterator supplies one [`PageStore`] per node.
    pub fn new_with_backends(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
        backends: impl FnMut(usize) -> Arc<dyn PageStore>,
    ) -> Self {
        Self::new_with_backends_mode(
            topology,
            nodes,
            strategy,
            DataPlaneMode::default(),
            backends,
        )
    }

    /// Create a manager over providers with custom storage backends on an
    /// explicit data-plane mode.
    pub fn new_with_backends_mode(
        topology: &ClusterTopology,
        nodes: &[NodeId],
        strategy: PlacementStrategy,
        mode: DataPlaneMode,
        mut backends: impl FnMut(usize) -> Arc<dyn PageStore>,
    ) -> Self {
        let providers = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Arc::new(Provider::with_store_mode(
                    ProviderId(i as u32),
                    *n,
                    backends(i),
                    mode,
                ))
            })
            .collect();
        Self::with_providers(topology, providers, strategy)
    }

    /// Wrap an existing set of providers.
    pub fn with_providers(
        topology: &ClusterTopology,
        providers: Vec<Arc<Provider>>,
        strategy: PlacementStrategy,
    ) -> Self {
        assert!(!providers.is_empty(), "at least one provider is required");
        ProviderManager {
            providers: RwLock::new(providers),
            topology: topology.clone(),
            strategy,
            allocated: Mutex::new(HashMap::new()),
            cursor: Mutex::new(0),
            rng_state: Mutex::new(0x1234_5678_9ABC_DEF0),
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Number of providers (live and dead).
    pub fn len(&self) -> usize {
        self.providers.read().len()
    }

    /// True when no providers exist (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a provider by id.
    pub fn provider(&self, id: ProviderId) -> Option<Arc<Provider>> {
        self.providers.read().get(id.0 as usize).cloned()
    }

    /// All providers.
    pub fn providers(&self) -> Vec<Arc<Provider>> {
        self.providers.read().clone()
    }

    /// The cluster node a provider runs on (used by the locality primitive).
    pub fn node_of(&self, id: ProviderId) -> Option<NodeId> {
        self.provider(id).map(|p| p.node())
    }

    /// Kill a provider (failure injection).
    pub fn kill(&self, id: ProviderId) {
        if let Some(p) = self.provider(id) {
            p.kill();
        }
    }

    /// Revive a provider.
    pub fn revive(&self, id: ProviderId) {
        if let Some(p) = self.provider(id) {
            p.revive();
        }
    }

    /// Allocate storage for `pages` consecutive pages written by a client on
    /// `client_node`, with `replication` copies each. Returns, for each page,
    /// the ordered list of providers that should receive a copy (first entry
    /// is the primary).
    ///
    /// Only live providers are considered. Fails (empty result) if no live
    /// provider exists; callers translate that into
    /// [`crate::BlobSeerError::NoProviders`].
    pub fn allocate(
        &self,
        pages: u64,
        replication: usize,
        client_node: NodeId,
    ) -> Vec<Vec<ProviderId>> {
        let providers = self.providers.read();
        let live: Vec<&Arc<Provider>> = providers.iter().filter(|p| p.is_alive()).collect();
        if live.is_empty() {
            return Vec::new();
        }
        let replication = replication.min(live.len());

        let mut result = Vec::with_capacity(pages as usize);
        let mut allocated = self.allocated.lock();
        for _ in 0..pages {
            let chosen = match self.strategy {
                PlacementStrategy::LoadBalanced => {
                    self.pick_load_balanced(&live, replication, &allocated)
                }
                PlacementStrategy::LocalFirst => {
                    self.pick_local_first(&live, replication, client_node, &allocated)
                }
                PlacementStrategy::Random => self.pick_random(&live, replication),
            };
            for id in &chosen {
                *allocated.entry(*id).or_insert(0) += 1;
            }
            result.push(chosen);
        }
        result
    }

    /// Least-loaded selection with a round-robin tiebreak.
    fn pick_load_balanced(
        &self,
        live: &[&Arc<Provider>],
        replication: usize,
        allocated: &HashMap<ProviderId, u64>,
    ) -> Vec<ProviderId> {
        let mut cursor = self.cursor.lock();
        // Sort candidates by (allocated pages, distance from cursor) so that
        // equally-loaded providers are used in rotation.
        let n = live.len();
        let start = *cursor % n;
        let mut candidates: Vec<(u64, usize, ProviderId)> = live
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let load = allocated.get(&p.id()).copied().unwrap_or(0);
                let rotation = (i + n - start) % n;
                (load, rotation, p.id())
            })
            .collect();
        candidates.sort();
        *cursor = (*cursor + 1) % n;
        candidates
            .into_iter()
            .take(replication)
            .map(|(_, _, id)| id)
            .collect()
    }

    /// HDFS-style: closest provider to the writer first, then same rack, then
    /// outside the rack.
    fn pick_local_first(
        &self,
        live: &[&Arc<Provider>],
        replication: usize,
        client_node: NodeId,
        allocated: &HashMap<ProviderId, u64>,
    ) -> Vec<ProviderId> {
        // Rank by proximity class, then by load within a class so that a rack
        // does not funnel everything to one provider.
        let mut candidates: Vec<(Proximity, u64, ProviderId)> = live
            .iter()
            .map(|p| {
                let prox = self.topology.proximity(client_node, p.node());
                let load = allocated.get(&p.id()).copied().unwrap_or(0);
                (prox, load, p.id())
            })
            .collect();
        candidates.sort();

        let mut chosen: Vec<ProviderId> = Vec::with_capacity(replication);
        // First replica: the closest provider (local if one exists).
        if let Some((_, _, id)) = candidates.first() {
            chosen.push(*id);
        }
        // Second replica: same rack as the writer but a different provider.
        if replication >= 2 {
            if let Some((_, _, id)) = candidates
                .iter()
                .find(|(prox, _, id)| !chosen.contains(id) && *prox <= Proximity::SameRack)
            {
                chosen.push(*id);
            }
        }
        // Remaining replicas: prefer providers outside the writer's rack.
        while chosen.len() < replication {
            let next = candidates
                .iter()
                .find(|(prox, _, id)| !chosen.contains(id) && *prox > Proximity::SameRack)
                .or_else(|| candidates.iter().find(|(_, _, id)| !chosen.contains(id)));
            match next {
                Some((_, _, id)) => chosen.push(*id),
                None => break,
            }
        }
        chosen
    }

    /// Uniformly random selection without replacement (xorshift, seeded
    /// deterministically so experiments are reproducible).
    fn pick_random(&self, live: &[&Arc<Provider>], replication: usize) -> Vec<ProviderId> {
        let mut state = self.rng_state.lock();
        let mut pool: Vec<ProviderId> = live.iter().map(|p| p.id()).collect();
        let mut chosen = Vec::with_capacity(replication);
        for _ in 0..replication.min(pool.len()) {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let idx = (*state as usize) % pool.len();
            chosen.push(pool.swap_remove(idx));
        }
        chosen
    }

    /// Allocation-time load per provider (pages assigned so far).
    pub fn allocation_load(&self) -> HashMap<ProviderId, u64> {
        self.allocated.lock().clone()
    }

    /// Reset the allocation counters (between benchmark phases).
    pub fn reset_allocation_counters(&self) {
        self.allocated.lock().clear();
        *self.cursor.lock() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterTopology {
        // 2 racks of 4 nodes.
        ClusterTopology::builder()
            .sites(1)
            .racks_per_site(2)
            .nodes_per_rack(4)
            .build()
    }

    fn manager(strategy: PlacementStrategy) -> ProviderManager {
        let t = topo();
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        ProviderManager::new_in_memory(&t, &nodes, strategy)
    }

    #[test]
    fn load_balanced_spreads_pages_evenly() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // One client writes 80 pages: each of the 8 providers should get 10.
        let placement = m.allocate(80, 1, NodeId(0));
        assert_eq!(placement.len(), 80);
        let load = m.allocation_load();
        assert_eq!(load.len(), 8);
        for (_, count) in load {
            assert_eq!(
                count, 10,
                "load-balanced placement should be perfectly even"
            );
        }
    }

    #[test]
    fn load_balanced_spreads_across_concurrent_writers() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // Interleave allocations from different client nodes.
        for client in 0..4u32 {
            m.allocate(20, 1, NodeId(client));
        }
        let load = m.allocation_load();
        let min = load.values().min().copied().unwrap();
        let max = load.values().max().copied().unwrap();
        assert!(
            max - min <= 1,
            "imbalance should be at most one page, got min={min} max={max}"
        );
    }

    #[test]
    fn local_first_places_first_replica_on_writer_node() {
        let m = manager(PlacementStrategy::LocalFirst);
        let placement = m.allocate(10, 3, NodeId(2));
        for replicas in &placement {
            assert_eq!(replicas.len(), 3);
            // First replica is the provider on the writer's node.
            assert_eq!(m.node_of(replicas[0]).unwrap(), NodeId(2));
            // Second replica is in the same rack (nodes 0-3 are rack 0).
            let second_node = m.node_of(replicas[1]).unwrap();
            assert!(
                second_node.0 < 4,
                "second replica should stay in the writer's rack"
            );
            assert_ne!(replicas[0], replicas[1]);
            // Third replica is outside the rack.
            let third_node = m.node_of(replicas[2]).unwrap();
            assert!(
                third_node.0 >= 4,
                "third replica should leave the writer's rack"
            );
        }
    }

    #[test]
    fn local_first_concentrates_load_on_writer_nodes() {
        // This is the behaviour the paper blames for HDFS's poor write
        // scalability: every writer's pages land on its own node.
        let m = manager(PlacementStrategy::LocalFirst);
        m.allocate(50, 1, NodeId(1));
        let load = m.allocation_load();
        assert_eq!(
            load.len(),
            1,
            "all pages should go to the single local provider"
        );
        let (only_id, count) = load.iter().next().unwrap();
        assert_eq!(m.node_of(*only_id).unwrap(), NodeId(1));
        assert_eq!(*count, 50);
    }

    #[test]
    fn random_placement_uses_many_providers() {
        let m = manager(PlacementStrategy::Random);
        m.allocate(200, 1, NodeId(0));
        let load = m.allocation_load();
        assert!(
            load.len() >= 6,
            "random placement should touch most providers"
        );
        // Deterministic: a second manager produces the same placement.
        let m2 = manager(PlacementStrategy::Random);
        let p2 = m2.allocate(5, 2, NodeId(0));
        let m3 = manager(PlacementStrategy::Random);
        let p3 = m3.allocate(5, 2, NodeId(0));
        assert_eq!(p2, p3);
    }

    #[test]
    fn replication_never_repeats_a_provider_for_one_page() {
        for strategy in [
            PlacementStrategy::LoadBalanced,
            PlacementStrategy::LocalFirst,
            PlacementStrategy::Random,
        ] {
            let m = manager(strategy);
            let placement = m.allocate(30, 3, NodeId(5));
            for replicas in placement {
                let unique: std::collections::HashSet<_> = replicas.iter().collect();
                assert_eq!(
                    unique.len(),
                    replicas.len(),
                    "strategy {strategy:?} repeated a provider"
                );
            }
        }
    }

    #[test]
    fn dead_providers_are_skipped() {
        let m = manager(PlacementStrategy::LoadBalanced);
        // Kill half the providers.
        for i in 0..4 {
            m.kill(ProviderId(i));
        }
        let placement = m.allocate(40, 2, NodeId(0));
        for replicas in &placement {
            for id in replicas {
                assert!(id.0 >= 4, "dead provider {id:?} was allocated");
            }
        }
        // Revive and confirm they participate again.
        for i in 0..4 {
            m.revive(ProviderId(i));
        }
        m.reset_allocation_counters();
        m.allocate(80, 1, NodeId(0));
        assert_eq!(m.allocation_load().len(), 8);
    }

    #[test]
    fn no_live_providers_returns_empty() {
        let m = manager(PlacementStrategy::LoadBalanced);
        for i in 0..8 {
            m.kill(ProviderId(i));
        }
        assert!(m.allocate(5, 1, NodeId(0)).is_empty());
    }

    #[test]
    fn replication_is_capped_at_live_provider_count() {
        let t = ClusterTopology::flat(2);
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        let m = ProviderManager::new_in_memory(&t, &nodes, PlacementStrategy::LoadBalanced);
        let placement = m.allocate(3, 5, NodeId(0));
        for replicas in placement {
            assert_eq!(replicas.len(), 2);
        }
    }

    #[test]
    fn provider_lookup_and_registry() {
        let m = manager(PlacementStrategy::LoadBalanced);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        assert!(m.provider(ProviderId(0)).is_some());
        assert!(m.provider(ProviderId(99)).is_none());
        assert_eq!(m.providers().len(), 8);
        assert_eq!(m.strategy(), PlacementStrategy::LoadBalanced);
    }
}
