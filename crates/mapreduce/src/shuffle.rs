//! The storage-materialized shuffle: spill files, segment fetches, merges
//! and the output-commit protocol.
//!
//! The paper's methodology swaps the storage layer under an unchanged
//! framework (§IV), so the framework's *intermediate* data must flow through
//! that storage layer for the comparison to mean anything. This module is the
//! Hadoop-shaped data path that makes it so:
//!
//! * every map task **spills** its output as one sorted, partition-bucketed
//!   file `<output>/_shuffle/map-<id>` with a per-partition index header
//!   ([`write_spill`]);
//! * every reduce task **pulls** its partition's segment out of every map
//!   file with positioned reads ([`read_segment`]) and **k-way-merges** the
//!   pre-sorted runs ([`merge_runs`]);
//! * task attempts write under `<output>/_temporary/attempt-<task>-<n>`
//!   ([`attempt_path`]) and [`rename`](crate::fs::DistFs::rename) into place
//!   on commit — the jobtracker performs that rename under its phase lock so
//!   the first finished attempt of a task wins and speculative losers are
//!   discarded ([`commit_records`] is the one-shot convenience form) — so a
//!   failed, retried or duplicated attempt can never leave a partial or
//!   duplicate file behind;
//! * an optional combiner runs over each sorted bucket at spill time
//!   ([`combine_run`]), cutting the bytes the shuffle moves.
//!
//! ## Spill file layout
//!
//! ```text
//! +--------+---------+------------+----------+
//! | magic  | version | partitions | reserved |   16-byte fixed header (u32 LE)
//! +--------+---------+------------+----------+
//! | offset | len | records |  x partitions       24-byte index entries (u64 LE)
//! +--------+-----+---------+
//! | partition 0 records ... partition N records
//! +---------------------------------------------
//! ```
//!
//! Records are length-prefixed (`u32 key_len, key, u32 val_len, value`), so
//! keys and values may contain any bytes, and each partition's records are
//! key-sorted (stable, preserving emit order for equal keys) — the reducer
//! merges pre-sorted runs instead of re-sorting the world.

use crate::error::{MrError, MrResult};
use crate::fs::DistFs;
use crate::job::Reducer;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Magic number at the head of every spill file (`"SHUF"`).
pub const SPILL_MAGIC: u32 = 0x5348_5546;
/// Version of the spill layout.
pub const SPILL_VERSION: u32 = 1;
/// Bytes of the fixed header before the partition index.
pub const SPILL_HEADER_LEN: u64 = 16;
/// Bytes of one partition index entry (offset, len, records).
pub const SPILL_INDEX_ENTRY_LEN: u64 = 24;

/// The shuffle directory of a job.
pub fn shuffle_dir(output_dir: &str) -> String {
    format!("{output_dir}/_shuffle")
}

/// The committed spill file of one map task.
pub fn spill_path(output_dir: &str, map_id: usize) -> String {
    format!("{}/map-{map_id:05}", shuffle_dir(output_dir))
}

/// The committed merged run compacted from the spills of map tasks
/// `start..start + len` (a contiguous map-id range). Merged runs use the
/// spill layout unchanged, so [`read_segment`] serves them as-is.
pub fn run_path(output_dir: &str, start: usize, len: usize) -> String {
    format!("{}/run-{start:05}-{len:05}", shuffle_dir(output_dir))
}

/// The scratch directory task attempts write under before committing.
pub fn temporary_dir(output_dir: &str) -> String {
    format!("{output_dir}/_temporary")
}

/// Where attempt `attempt` of `task` (e.g. `"map-00003"`, `"reduce-00001"`)
/// writes before its rename-commit.
pub fn attempt_path(output_dir: &str, task: &str, attempt: usize) -> String {
    format!("{}/attempt-{task}-{attempt}", temporary_dir(output_dir))
}

/// Total bytes of header + index for a spill with `partitions` partitions —
/// what a reducer reads (one positioned read) to find its segment.
pub fn index_len(partitions: usize) -> u64 {
    SPILL_HEADER_LEN + partitions as u64 * SPILL_INDEX_ENTRY_LEN
}

/// The scratch namespace of one job execution: a uniquely-tagged pair of
/// shuffle and temporary directories under the job's output directory.
///
/// Before multi-tenancy, every execution used the bare `_shuffle/` and
/// `_temporary/` names — so two concurrent jobs writing into the same
/// `DistFs` (or one tenant resubmitting an identical `JobConfig` while the
/// first run was still in flight) would interleave spill files, compaction
/// runs and attempt scratch, and each job's cleanup would delete the *other*
/// job's live intermediates. Scoping every scratch path by a process-unique
/// execution tag makes the collision structurally impossible: file *names*
/// inside the directories are unchanged (delay/fault injection by filename
/// suffix still works), only the directory component carries the tag, and
/// cleanup deletes exactly this execution's directories.
#[derive(Debug, Clone)]
pub struct JobScratch {
    shuffle_dir: String,
    temporary_dir: String,
}

impl JobScratch {
    /// The scratch namespace for execution `tag` of a job writing to
    /// `output_dir`. Tags must be unique among executions that can share a
    /// `DistFs` — the jobtracker draws them from a process-wide counter.
    pub fn scoped(output_dir: &str, tag: u64) -> Self {
        JobScratch {
            shuffle_dir: format!("{output_dir}/_shuffle-{tag:06}"),
            temporary_dir: format!("{output_dir}/_temporary-{tag:06}"),
        }
    }

    /// This execution's shuffle directory (committed spills + merged runs).
    pub fn shuffle_dir(&self) -> &str {
        &self.shuffle_dir
    }

    /// This execution's scratch directory for uncommitted attempt output.
    pub fn temporary_dir(&self) -> &str {
        &self.temporary_dir
    }

    /// The committed spill file of one map task.
    pub fn spill_path(&self, map_id: usize) -> String {
        format!("{}/map-{map_id:05}", self.shuffle_dir)
    }

    /// The committed merged run compacted from the spills of map tasks
    /// `start..start + len`.
    pub fn run_path(&self, start: usize, len: usize) -> String {
        format!("{}/run-{start:05}-{len:05}", self.shuffle_dir)
    }

    /// Where attempt `attempt` of `task` writes before its rename-commit.
    pub fn attempt_path(&self, task: &str, attempt: usize) -> String {
        format!("{}/attempt-{task}-{attempt}", self.temporary_dir)
    }

    /// Create both scratch directories.
    pub fn mkdirs(&self, fs: &dyn DistFs) -> MrResult<()> {
        fs.mkdirs(&self.temporary_dir)?;
        fs.mkdirs(&self.shuffle_dir)
    }

    /// Write `records` to this execution's attempt scratch and rename into
    /// `final_path` (see [`commit_records`]).
    pub fn commit_records(
        &self,
        fs: &dyn DistFs,
        task: &str,
        attempt: usize,
        final_path: &str,
        records: &[(String, String)],
    ) -> MrResult<u64> {
        let scratch = self.attempt_path(task, attempt);
        let bytes = crate::tasktracker::write_output_file(fs, &scratch, records)?;
        fs.rename(&scratch, final_path)?;
        Ok(bytes)
    }

    /// Best-effort removal of an attempt's scratch file after a failure.
    pub fn discard_attempt(&self, fs: &dyn DistFs, task: &str, attempt: usize) {
        let _ = fs.delete(&self.attempt_path(task, attempt), false);
    }

    /// Best-effort removal of this execution's scratch directories — and
    /// only this execution's: a concurrent job's scratch under the same
    /// output directory carries a different tag and is untouched.
    pub fn cleanup(&self, fs: &dyn DistFs) {
        let _ = fs.delete(&self.temporary_dir, true);
        let _ = fs.delete(&self.shuffle_dir, true);
    }
}

/// Stable key-sort of one partition bucket: equal keys keep their emit order,
/// which the merge relies on to reproduce the in-memory shuffle's value
/// order.
pub fn sort_run(run: &mut [(String, String)]) {
    run.sort_by(|a, b| a.0.cmp(&b.0));
}

/// What a spill-time combine pass produced.
pub struct CombineOutcome {
    /// The combined bucket, re-sorted by key.
    pub records: Vec<(String, String)>,
    /// Records fed into the combiner.
    pub input_records: u64,
    /// Records the combiner emitted.
    pub output_records: u64,
}

/// Walk a key-sorted record stream, calling `f(key, values)` once per group
/// of consecutive equal keys — the grouping contract both the combiner and
/// the reduce side rely on. Takes the records by value so the values move
/// into their group instead of being cloned.
fn for_each_group(
    records: Vec<(String, String)>,
    mut f: impl FnMut(&str, &[String]) -> MrResult<()>,
) -> MrResult<()> {
    let mut it = records.into_iter().peekable();
    while let Some((key, first)) = it.next() {
        let mut values = vec![first];
        while it.peek().is_some_and(|(k, _)| *k == key) {
            values.push(it.next().expect("peeked").1);
        }
        f(&key, &values)?;
    }
    Ok(())
}

/// Run the combiner over a key-sorted bucket, Hadoop's spill-time
/// mini-reduce.
pub fn combine_run(run: Vec<(String, String)>, combiner: &dyn Reducer) -> MrResult<CombineOutcome> {
    let input_records = run.len() as u64;
    let mut out = Vec::new();
    for_each_group(run, |key, values| {
        combiner.reduce(key, values, &mut |k, v| out.push((k, v)))
    })?;
    // A well-behaved combiner emits in key order, but nothing enforces it —
    // re-sort (stable) so the spill's sorted-run contract always holds.
    sort_run(&mut out);
    Ok(CombineOutcome {
        output_records: out.len() as u64,
        records: out,
        input_records,
    })
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], at: usize) -> MrResult<u32> {
    data.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
        .ok_or_else(|| MrError::Storage("truncated shuffle data".into()))
}

fn get_u64(data: &[u8], at: usize) -> MrResult<u64> {
    data.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .ok_or_else(|| MrError::Storage("truncated shuffle data".into()))
}

/// Encode partition buckets (each already key-sorted) into the spill layout.
/// Returns the file image and the total record count.
pub fn encode_spill(partitions: &[Vec<(String, String)>]) -> (Vec<u8>, u64) {
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(partitions.len());
    let mut records_total = 0u64;
    for bucket in partitions {
        let mut payload = Vec::new();
        for (k, v) in bucket {
            put_u32(&mut payload, k.len() as u32);
            payload.extend_from_slice(k.as_bytes());
            put_u32(&mut payload, v.len() as u32);
            payload.extend_from_slice(v.as_bytes());
        }
        records_total += bucket.len() as u64;
        payloads.push(payload);
    }

    let mut file = Vec::new();
    put_u32(&mut file, SPILL_MAGIC);
    put_u32(&mut file, SPILL_VERSION);
    put_u32(&mut file, partitions.len() as u32);
    put_u32(&mut file, 0); // reserved
    let mut offset = index_len(partitions.len());
    for (bucket, payload) in partitions.iter().zip(&payloads) {
        put_u64(&mut file, offset);
        put_u64(&mut file, payload.len() as u64);
        put_u64(&mut file, bucket.len() as u64);
        offset += payload.len() as u64;
    }
    for payload in payloads {
        file.extend_from_slice(&payload);
    }
    (file, records_total)
}

/// Write a map task's partition buckets as a spill file at `path` (normally
/// an [`attempt_path`], renamed into [`spill_path`] on commit). Returns
/// `(bytes_written, records_spilled)`.
pub fn write_spill(
    fs: &dyn DistFs,
    path: &str,
    partitions: &[Vec<(String, String)>],
) -> MrResult<(u64, u64)> {
    let (image, records) = encode_spill(partitions);
    let mut writer = fs.create(path)?;
    writer.write(&image)?;
    writer.close()?;
    Ok((image.len() as u64, records))
}

/// One partition's segment pulled out of one map's spill file.
#[derive(Debug, Default, Clone)]
pub struct Segment {
    /// The segment's records, key-sorted (a merge run).
    pub records: Vec<(String, String)>,
    /// Bytes fetched from the storage layer (index + payload).
    pub bytes: u64,
    /// Positioned reads issued (1 for the index, +1 when the segment has
    /// payload).
    pub round_trips: u64,
}

/// Fetch partition `partition` of the spill at `path` with positioned reads:
/// one read for the header+index, one for the segment payload (skipped when
/// the segment is empty).
pub fn read_segment(
    fs: &dyn DistFs,
    path: &str,
    partition: usize,
    num_partitions: usize,
) -> MrResult<Segment> {
    let mut reader = fs.open(path)?;
    let header = reader.read_at(0, index_len(num_partitions))?;
    let mut segment = Segment {
        bytes: header.len() as u64,
        round_trips: 1,
        ..Segment::default()
    };
    if get_u32(&header, 0)? != SPILL_MAGIC || get_u32(&header, 4)? != SPILL_VERSION {
        return Err(MrError::Storage(format!("{path} is not a spill file")));
    }
    let partitions = get_u32(&header, 8)? as usize;
    if partitions != num_partitions || partition >= partitions {
        return Err(MrError::Storage(format!(
            "{path} holds {partitions} partitions, segment {partition} of {num_partitions} requested"
        )));
    }
    let entry = (SPILL_HEADER_LEN + partition as u64 * SPILL_INDEX_ENTRY_LEN) as usize;
    let offset = get_u64(&header, entry)?;
    let len = get_u64(&header, entry + 8)?;
    let records = get_u64(&header, entry + 16)?;
    if len == 0 {
        return Ok(segment);
    }

    let payload = reader.read_at(offset, len)?;
    segment.bytes += payload.len() as u64;
    segment.round_trips += 1;
    segment.records = decode_records(&payload, records, path)?;
    if segment.records.len() as u64 != records {
        return Err(MrError::Storage(format!(
            "segment {partition} of {path}: index promised {records} records, decoded {}",
            segment.records.len()
        )));
    }
    Ok(segment)
}

/// Decode a length-prefixed record stream (one partition's payload).
fn decode_records(payload: &[u8], expected: u64, path: &str) -> MrResult<Vec<(String, String)>> {
    let mut records = Vec::with_capacity(expected as usize);
    let mut at = 0usize;
    while at < payload.len() {
        let key_len = get_u32(payload, at)? as usize;
        at += 4;
        let key = payload
            .get(at..at + key_len)
            .ok_or_else(|| MrError::Storage(format!("corrupt segment in {path}")))?;
        at += key_len;
        let val_len = get_u32(payload, at)? as usize;
        at += 4;
        let val = payload
            .get(at..at + val_len)
            .ok_or_else(|| MrError::Storage(format!("corrupt segment in {path}")))?;
        at += val_len;
        records.push((
            String::from_utf8_lossy(key).into_owned(),
            String::from_utf8_lossy(val).into_owned(),
        ));
    }
    Ok(records)
}

/// A whole spill read back as per-partition runs, the compactor's bulk-read
/// form of [`read_segment`].
#[derive(Debug, Default)]
pub struct SpillRuns {
    /// Every partition's key-sorted bucket, in partition order.
    pub partitions: Vec<Vec<(String, String)>>,
    /// Bytes fetched from the storage layer (index + payload).
    pub bytes: u64,
    /// Positioned reads issued (1 for the index, +1 when any partition has
    /// payload).
    pub round_trips: u64,
}

/// Read an entire spill file back: one positioned read for the header+index,
/// one for the whole payload region. This is how the compactor ingests the
/// spills it merges — paying 2 reads per *spill* rather than 2 per
/// map×partition pair.
pub fn read_spill_runs(fs: &dyn DistFs, path: &str, num_partitions: usize) -> MrResult<SpillRuns> {
    let mut reader = fs.open(path)?;
    let header = reader.read_at(0, index_len(num_partitions))?;
    let mut out = SpillRuns {
        bytes: header.len() as u64,
        round_trips: 1,
        ..SpillRuns::default()
    };
    if get_u32(&header, 0)? != SPILL_MAGIC || get_u32(&header, 4)? != SPILL_VERSION {
        return Err(MrError::Storage(format!("{path} is not a spill file")));
    }
    let partitions = get_u32(&header, 8)? as usize;
    if partitions != num_partitions {
        return Err(MrError::Storage(format!(
            "{path} holds {partitions} partitions, {num_partitions} expected"
        )));
    }
    let mut entries = Vec::with_capacity(partitions);
    let mut payload_len = 0u64;
    for p in 0..partitions {
        let entry = (SPILL_HEADER_LEN + p as u64 * SPILL_INDEX_ENTRY_LEN) as usize;
        let offset = get_u64(&header, entry)?;
        let len = get_u64(&header, entry + 8)?;
        let records = get_u64(&header, entry + 16)?;
        entries.push((offset, len, records));
        payload_len += len;
    }
    if payload_len == 0 {
        out.partitions = vec![Vec::new(); partitions];
        return Ok(out);
    }
    let base = index_len(partitions);
    let payload = reader.read_at(base, payload_len)?;
    out.bytes += payload.len() as u64;
    out.round_trips += 1;
    for (p, (offset, len, records)) in entries.into_iter().enumerate() {
        let from = (offset - base) as usize;
        let slice = payload
            .get(from..from + len as usize)
            .ok_or_else(|| MrError::Storage(format!("corrupt segment in {path}")))?;
        let decoded = decode_records(slice, records, path)?;
        if decoded.len() as u64 != records {
            return Err(MrError::Storage(format!(
                "partition {p} of {path}: index promised {records} records, decoded {}",
                decoded.len()
            )));
        }
        out.partitions.push(decoded);
    }
    Ok(out)
}

/// Entry in the k-way-merge heap: `BinaryHeap` is a max-heap, so comparisons
/// are reversed; ties break toward the lower run index (map id), reproducing
/// the in-memory shuffle's value arrival order.
struct HeapEntry<'a> {
    key: &'a str,
    run: usize,
    pos: usize,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(self.key)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// K-way-merge pre-sorted runs (one per map task, in map-id order) into one
/// key-sorted record stream. Stable: for equal keys, records come out in
/// (map id, emit order) — exactly the order the in-memory shuffle's
/// concatenate-then-group produces.
pub fn merge_runs(runs: Vec<Vec<(String, String)>>) -> Vec<(String, String)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<HeapEntry<'_>> = runs
        .iter()
        .enumerate()
        .filter(|(_, run)| !run.is_empty())
        .map(|(i, run)| HeapEntry {
            key: &run[0].0,
            run: i,
            pos: 0,
        })
        .collect();
    let mut merged = Vec::with_capacity(total);
    let mut order = Vec::with_capacity(total);
    while let Some(entry) = heap.pop() {
        order.push((entry.run, entry.pos));
        let next = entry.pos + 1;
        if next < runs[entry.run].len() {
            heap.push(HeapEntry {
                key: &runs[entry.run][next].0,
                run: entry.run,
                pos: next,
            });
        }
    }
    // Materialise after the borrow of `runs` ends.
    let mut runs = runs;
    for (run, pos) in order {
        merged.push(std::mem::take(&mut runs[run][pos]));
    }
    merged
}

/// Feed a merged, key-sorted record stream through the reducer, grouping
/// consecutive equal keys. Returns the output records in emit order.
pub fn reduce_merged(
    merged: Vec<(String, String)>,
    reducer: &dyn Reducer,
) -> MrResult<Vec<(String, String)>> {
    let mut output = Vec::new();
    for_each_group(merged, |key, values| {
        reducer.reduce(key, values, &mut |k, v| output.push((k, v)))
    })?;
    Ok(output)
}

/// Output-commit a task's records in one shot: write them in text output
/// format to the attempt's scratch path, then rename into `final_path`. A
/// crash before the rename leaves only scratch under `_temporary` (cleaned
/// up at job end); after the rename the file is complete — readers can never
/// observe a partial `part-*` file. Returns the bytes written.
///
/// The jobtracker itself splits this into two steps so concurrent attempts
/// of one task can be arbitrated: the scratch write
/// ([`crate::tasktracker::write_output_file`] / [`write_spill`]) happens
/// outside the phase lock, and the rename happens *under* it, after
/// checking that no peer attempt has committed — first finished attempt
/// wins, the loser's scratch is discarded. This helper remains the
/// convenience form for callers without racing attempts, and its tests pin
/// the protocol's foundation: `rename` refuses to clobber, so a duplicate
/// commit is an error, never corruption.
pub fn commit_records(
    fs: &dyn DistFs,
    output_dir: &str,
    task: &str,
    attempt: usize,
    final_path: &str,
    records: &[(String, String)],
) -> MrResult<u64> {
    let scratch = attempt_path(output_dir, task, attempt);
    let bytes = crate::tasktracker::write_output_file(fs, &scratch, records)?;
    fs.rename(&scratch, final_path)?;
    Ok(bytes)
}

/// Best-effort removal of an attempt's scratch file after a failure, so the
/// retry starts clean.
pub fn discard_attempt(fs: &dyn DistFs, output_dir: &str, task: &str, attempt: usize) {
    let _ = fs.delete(&attempt_path(output_dir, task, attempt), false);
}

/// Best-effort removal of the job's scratch directories after success.
pub fn cleanup_job_dirs(fs: &dyn DistFs, output_dir: &str) {
    let _ = fs.delete(&temporary_dir(output_dir), true);
    let _ = fs.delete(&shuffle_dir(output_dir), true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::BsfsFs;
    use crate::job::SumReducer;
    use blobseer::{BlobSeer, BlobSeerConfig};
    use bsfs::{Bsfs, BsfsConfig};

    fn fs() -> BsfsFs {
        let storage = BlobSeer::new(BlobSeerConfig::for_tests().with_page_size(256));
        BsfsFs::new(Bsfs::new(storage, BsfsConfig::for_tests()))
    }

    fn pair(k: &str, v: &str) -> (String, String) {
        (k.to_string(), v.to_string())
    }

    #[test]
    fn scoped_scratch_namespaces_are_disjoint_and_clean_up_only_themselves() {
        let fs = fs();
        let a = JobScratch::scoped("/out", 1);
        let b = JobScratch::scoped("/out", 2);
        // Same file names, different directories: no path of one execution
        // is a path of the other.
        assert_ne!(a.spill_path(0), b.spill_path(0));
        assert_ne!(a.run_path(0, 4), b.run_path(0, 4));
        assert_ne!(
            a.attempt_path("map-00000", 0),
            b.attempt_path("map-00000", 0)
        );
        assert!(a.spill_path(3).ends_with("/map-00003"));
        assert!(a
            .attempt_path("map-00000", 1)
            .ends_with("/attempt-map-00000-1"));

        a.mkdirs(&fs).unwrap();
        b.mkdirs(&fs).unwrap();
        fs.write_file(&a.spill_path(0), b"aa").unwrap();
        fs.write_file(&b.spill_path(0), b"bb").unwrap();
        // Job A finishing must not disturb job B's live scratch.
        a.cleanup(&fs);
        assert!(!fs.exists(a.shuffle_dir()) && !fs.exists(a.temporary_dir()));
        assert_eq!(&fs.read_file(&b.spill_path(0)).unwrap()[..], b"bb");
        b.cleanup(&fs);
        assert_eq!(fs.list("/out").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn spill_roundtrip_through_storage() {
        let fs = fs();
        let buckets = vec![
            vec![pair("a", "1"), pair("b", "2")],
            Vec::new(),
            vec![pair("c", "x\ty\n"), pair("c", ""), pair("d", "3")],
        ];
        let (bytes, records) = write_spill(&fs, "/out/_shuffle/map-00000", &buckets).unwrap();
        assert_eq!(records, 5);
        assert_eq!(bytes, fs.len("/out/_shuffle/map-00000").unwrap());

        for (p, bucket) in buckets.iter().enumerate() {
            let seg = read_segment(&fs, "/out/_shuffle/map-00000", p, 3).unwrap();
            assert_eq!(&seg.records, bucket, "partition {p}");
            if bucket.is_empty() {
                assert_eq!(seg.round_trips, 1, "empty segments skip the data read");
            } else {
                assert_eq!(seg.round_trips, 2);
                assert!(seg.bytes > index_len(3));
            }
        }
    }

    #[test]
    fn whole_spill_reads_back_as_runs() {
        let fs = fs();
        let buckets = vec![
            vec![pair("a", "1"), pair("b", "2")],
            Vec::new(),
            vec![pair("c", "x\ty\n"), pair("c", ""), pair("d", "3")],
        ];
        let (bytes, _) = write_spill(&fs, "/out/_shuffle/map-00000", &buckets).unwrap();
        let runs = read_spill_runs(&fs, "/out/_shuffle/map-00000", 3).unwrap();
        assert_eq!(runs.partitions, buckets);
        assert_eq!(runs.round_trips, 2, "one index read, one bulk payload read");
        assert_eq!(runs.bytes, bytes, "the whole file is fetched");
        // Wrong partition count and non-spill files are rejected.
        assert!(read_spill_runs(&fs, "/out/_shuffle/map-00000", 2).is_err());
        fs.write_file("/junk", b"this is not a spill file at all......")
            .unwrap();
        assert!(read_spill_runs(&fs, "/junk", 3).is_err());
    }

    #[test]
    fn empty_spill_reads_back_without_a_payload_round_trip() {
        let fs = fs();
        let buckets = vec![Vec::new(), Vec::new()];
        write_spill(&fs, "/s", &buckets).unwrap();
        let runs = read_spill_runs(&fs, "/s", 2).unwrap();
        assert_eq!(runs.partitions, buckets);
        assert_eq!(runs.round_trips, 1, "no payload to read");
    }

    #[test]
    fn merged_run_uses_the_spill_layout() {
        // A compacted run is just a spill file at a run path: write the
        // merged buckets with write_spill, read them with read_segment.
        let fs = fs();
        let spills = [
            vec![
                vec![pair("a", "m0"), pair("c", "m0")],
                vec![pair("z", "m0")],
            ],
            vec![vec![pair("a", "m1")], Vec::new()],
        ];
        for (i, buckets) in spills.iter().enumerate() {
            write_spill(&fs, &spill_path("/out", i), buckets).unwrap();
        }
        let merged: Vec<Vec<(String, String)>> = (0..2)
            .map(|p| {
                merge_runs(
                    (0..2)
                        .map(|m| {
                            read_spill_runs(&fs, &spill_path("/out", m), 2)
                                .unwrap()
                                .partitions[p]
                                .clone()
                        })
                        .collect(),
                )
            })
            .collect();
        write_spill(&fs, &run_path("/out", 0, 2), &merged).unwrap();
        let seg = read_segment(&fs, &run_path("/out", 0, 2), 0, 2).unwrap();
        assert_eq!(
            seg.records,
            vec![pair("a", "m0"), pair("a", "m1"), pair("c", "m0")],
            "ties break toward the lower map id"
        );
        let seg = read_segment(&fs, &run_path("/out", 0, 2), 1, 2).unwrap();
        assert_eq!(seg.records, vec![pair("z", "m0")]);
    }

    #[test]
    fn segment_requests_are_validated() {
        let fs = fs();
        let buckets = vec![vec![pair("k", "v")]];
        write_spill(&fs, "/s", &buckets).unwrap();
        // Wrong partition count or out-of-range partition.
        assert!(read_segment(&fs, "/s", 0, 2).is_err());
        assert!(read_segment(&fs, "/s", 1, 1).is_err());
        // Not a spill file at all.
        fs.write_file("/junk", b"this is not a spill file at all......")
            .unwrap();
        assert!(read_segment(&fs, "/junk", 0, 1).is_err());
    }

    #[test]
    fn sort_run_is_stable() {
        let mut run = vec![pair("b", "1"), pair("a", "2"), pair("b", "3")];
        sort_run(&mut run);
        assert_eq!(run, vec![pair("a", "2"), pair("b", "1"), pair("b", "3")]);
    }

    #[test]
    fn combine_run_sums_and_counts() {
        let run = vec![pair("a", "1"), pair("a", "2"), pair("b", "4")];
        let combined = combine_run(run, &SumReducer).unwrap();
        assert_eq!(combined.records, vec![pair("a", "3"), pair("b", "4")]);
        assert_eq!(combined.input_records, 3);
        assert_eq!(combined.output_records, 2);
    }

    #[test]
    fn merge_matches_stable_concatenated_sort() {
        // Three sorted runs with overlapping keys; the merge must equal
        // concatenating in run order and stable-sorting by key.
        let runs = vec![
            vec![pair("a", "r0-0"), pair("c", "r0-1"), pair("c", "r0-2")],
            Vec::new(),
            vec![pair("a", "r2-0"), pair("b", "r2-1")],
            vec![pair("c", "r3-0")],
        ];
        let mut reference: Vec<(String, String)> = runs.iter().flatten().cloned().collect();
        reference.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(merge_runs(runs), reference);
    }

    #[test]
    fn reduce_merged_groups_consecutive_keys() {
        let merged = vec![pair("a", "1"), pair("a", "2"), pair("b", "5")];
        let out = reduce_merged(merged, &SumReducer).unwrap();
        assert_eq!(out, vec![pair("a", "3"), pair("b", "5")]);
    }

    #[test]
    fn commit_is_all_or_nothing() {
        let fs = fs();
        fs.mkdirs("/out").unwrap();
        let records = vec![pair("k", "v")];
        let bytes = commit_records(
            &fs,
            "/out",
            "reduce-00000",
            0,
            "/out/part-r-00000",
            &records,
        )
        .unwrap();
        assert_eq!(bytes, 4);
        assert_eq!(&fs.read_file("/out/part-r-00000").unwrap()[..], b"k\tv\n");
        // The scratch file is gone (renamed), not copied.
        assert!(!fs.exists(&attempt_path("/out", "reduce-00000", 0)));

        // A second commit of the same task must fail: the final file exists,
        // so a duplicate attempt cannot clobber committed output.
        assert!(commit_records(
            &fs,
            "/out",
            "reduce-00000",
            1,
            "/out/part-r-00000",
            &records
        )
        .is_err());
        cleanup_job_dirs(&fs, "/out");
        assert!(!fs.exists(&temporary_dir("/out")));
    }
}
